"""The perf-regression gate (repro.bench.compare + ``bench --compare``).

Document-vs-document semantics: counters are exact, timings are
tolerance-checked, calibration absorbs uniform machine-speed deltas but
still flags a slowdown concentrated in one run, and the CLI exit code
is the CI contract.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.baseline import BASELINE_FORMAT, BASELINE_VERSION
from repro.bench.compare import (
    COMPARE_FORMAT,
    compare_documents,
    load_baseline,
    render_verdict,
)
from repro.cli import main
from repro.exceptions import DataFormatError


def make_document(runs=2, elapsed=1.0):
    """A small synthetic baseline document with consistent counters."""
    rows = []
    for index in range(runs):
        rows.append({
            "algorithm": "disc-all",
            "minsup": 0.03 / (index + 1),
            "delta": 18 - index,
            "patterns": 100 + index,
            "elapsed_seconds": elapsed * (index + 1),
            "phase_seconds": {
                "mine": elapsed * (index + 1),
                "algorithm": elapsed * (index + 1) * 0.9,
                "post_filter": 0.001,
            },
            "counters": {
                "disc.comparisons": 1000 + index,
                "disc.lemma1_frequent": 600 + index,
                "disc.lemma2_prunes": 400,
            },
        })
    return {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "scale": "repro",
        "database_size": 600,
        "runs": rows,
    }


def scaled(document, factor):
    copy = json.loads(json.dumps(document))
    for run in copy["runs"]:
        run["elapsed_seconds"] *= factor
        for phase in run["phase_seconds"]:
            run["phase_seconds"][phase] *= factor
    return copy


class TestCompareDocuments:
    def test_identical_documents_pass(self):
        doc = make_document()
        verdict = compare_documents(doc, make_document())
        assert verdict["format"] == COMPARE_FORMAT
        assert verdict["verdict"] == "pass"
        assert verdict["regressions"] == 0
        assert all(run["status"] == "ok" for run in verdict["runs"])

    def test_within_tolerance_passes(self):
        verdict = compare_documents(make_document(), scaled(make_document(), 1.3))
        assert verdict["verdict"] == "pass"

    def test_uniform_slowdown_fails_uncalibrated(self):
        verdict = compare_documents(make_document(), scaled(make_document(), 3.0))
        assert verdict["verdict"] == "fail"
        assert verdict["regressions"] == len(verdict["runs"])

    def test_calibration_absorbs_uniform_machine_delta(self):
        verdict = compare_documents(
            make_document(), scaled(make_document(), 3.0), calibrate=True
        )
        assert verdict["verdict"] == "pass"
        assert verdict["calibration_ratio"] == pytest.approx(3.0)

    def test_calibration_still_catches_one_slow_run(self):
        candidate = make_document(runs=3)
        run = candidate["runs"][0]
        run["elapsed_seconds"] *= 4.0
        for phase in run["phase_seconds"]:
            run["phase_seconds"][phase] *= 4.0
        verdict = compare_documents(
            make_document(runs=3), candidate, calibrate=True
        )
        assert verdict["verdict"] == "fail"
        assert verdict["regressions"] == 1

    def test_tiny_absolute_deltas_never_regress(self):
        base = make_document(runs=1, elapsed=0.01)
        candidate = scaled(base, 4.0)  # 10ms -> 40ms: under the slack floor
        verdict = compare_documents(base, candidate)
        assert verdict["verdict"] == "pass"

    def test_counter_drift_is_a_behaviour_change(self):
        candidate = make_document()
        candidate["runs"][0]["counters"]["disc.comparisons"] += 1
        verdict = compare_documents(make_document(), candidate)
        assert verdict["verdict"] == "fail"
        findings = verdict["runs"][0]["findings"]
        assert any("disc.comparisons" in f for f in findings)
        # the +1 also broke comparisons == lemma1 + lemma2
        assert any("invariant" in f for f in findings)

    def test_pattern_count_mismatch_fails(self):
        candidate = make_document()
        candidate["runs"][1]["patterns"] += 5
        verdict = compare_documents(make_document(), candidate)
        assert verdict["verdict"] == "fail"

    def test_missing_and_extra_runs_flagged(self):
        candidate = make_document(runs=1)
        verdict = compare_documents(make_document(runs=2), candidate)
        assert verdict["verdict"] == "fail"
        assert any("missing" in f for f in verdict["structure_findings"])

    def test_scale_mismatch_raises(self):
        candidate = make_document()
        candidate["scale"] = "paper"
        with pytest.raises(DataFormatError, match="scale"):
            compare_documents(make_document(), candidate)

    def test_render_names_every_regression(self):
        candidate = scaled(make_document(), 3.0)
        verdict = compare_documents(make_document(), candidate)
        text = render_verdict(verdict)
        assert "verdict: FAIL" in text
        assert "REGRESSION" in text


class TestLoadBaseline:
    def test_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(DataFormatError):
            load_baseline(path)
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(DataFormatError):
            load_baseline(path)

    def test_round_trips_valid_document(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(make_document()), encoding="utf-8")
        assert load_baseline(path)["scale"] == "repro"


class TestCli:
    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    def test_exit_zero_on_match(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_document())
        cand = self.write(tmp_path, "cand.json", make_document())
        verdict_path = tmp_path / "verdict.json"
        code = main([
            "bench", "--compare", base, "--candidate", cand,
            "--compare-json", str(verdict_path),
        ])
        assert code == 0
        assert "verdict: PASS" in capsys.readouterr().out
        verdict = json.loads(verdict_path.read_text(encoding="utf-8"))
        assert verdict["verdict"] == "pass"

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_document())
        cand = self.write(tmp_path, "cand.json", scaled(make_document(), 3.0))
        code = main(["bench", "--compare", base, "--candidate", cand])
        assert code == 1
        assert "verdict: FAIL" in capsys.readouterr().out

    def test_calibrate_flag_reaches_the_gate(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", make_document())
        cand = self.write(tmp_path, "cand.json", scaled(make_document(), 3.0))
        code = main([
            "bench", "--compare", base, "--candidate", cand, "--calibrate",
        ])
        assert code == 0
        assert "verdict: PASS" in capsys.readouterr().out

    def test_bad_baseline_path_is_a_clean_error(self, tmp_path, capsys):
        code = main(["bench", "--compare", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
