"""Tests for the baseline miners: each must match the brute-force oracle."""

from __future__ import annotations

import random

import pytest

from repro.baselines import (
    mine_bruteforce,
    mine_gsp,
    mine_prefixspan,
    mine_pseudo_prefixspan,
    mine_spade,
    mine_spam,
)
from repro.core.sequence import parse, support_count
from tests.conftest import random_database

MINERS = {
    "gsp": mine_gsp,
    "prefixspan": mine_prefixspan,
    "pseudo": mine_pseudo_prefixspan,
    "spade": mine_spade,
    "spam": mine_spam,
}


@pytest.fixture(params=sorted(MINERS), ids=sorted(MINERS))
def miner(request):
    return MINERS[request.param]


class TestAgainstOracle:
    def test_matches_bruteforce_random(self, miner):
        rng = random.Random(81)
        for _ in range(40):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            assert miner(members, delta) == mine_bruteforce(members, delta)

    def test_table1_at_delta_two(self, miner, table1_members):
        expected = mine_bruteforce(table1_members, 2)
        assert miner(table1_members, 2) == expected

    def test_empty_database(self, miner):
        assert miner([], 1) == {}

    def test_delta_validation(self, miner):
        with pytest.raises(ValueError):
            miner([], 0)

    def test_delta_above_size(self, miner, table1_members):
        assert miner(table1_members, 99) == {}

    def test_single_customer(self, miner):
        members = [(1, parse("(a, b)(a)"))]
        result = miner(members, 1)
        assert result == mine_bruteforce(members, 1)
        assert result[parse("(a, b)")] == 1

    def test_repetitions_counted_once(self, miner):
        # <(a)> appears three times in one sequence: support 1.
        members = [(1, parse("(a)(a)(a)"))]
        assert miner(members, 1)[parse("(a)")] == 1

    def test_supports_are_exact(self, miner):
        rng = random.Random(82)
        for _ in range(15):
            db = random_database(rng)
            members = db.members()
            raws = [raw for _, raw in members]
            delta = rng.randint(1, max(1, len(members) // 2))
            for pattern, count in miner(members, delta).items():
                assert count == support_count(raws, pattern)


class TestBruteforce:
    def test_known_small_case(self):
        members = [
            (1, parse("(a)(b)")),
            (2, parse("(a)(b)")),
            (3, parse("(b)(a)")),
        ]
        patterns = mine_bruteforce(members, 2)
        assert patterns == {
            parse("(a)"): 3,
            parse("(b)"): 3,
            parse("(a)(b)"): 2,
        }

    def test_itemset_patterns(self):
        members = [(1, parse("(a, b)")), (2, parse("(a, b)"))]
        patterns = mine_bruteforce(members, 2)
        assert patterns[parse("(a, b)")] == 2


class TestGSPInternals:
    def test_candidate_join_shapes(self):
        from repro.baselines.gsp import _generate_candidates

        frequent = {parse("(a)(b)"), parse("(b)(c)")}
        candidates = _generate_candidates(frequent, 3)
        assert parse("(a)(b)(c)") in candidates

    def test_itemset_join(self):
        from repro.baselines.gsp import _generate_candidates

        frequent = {parse("(a, b)"), parse("(b, c)")}
        candidates = _generate_candidates(frequent, 3)
        assert parse("(a, b, c)") in candidates

    def test_level2_candidates(self):
        from repro.baselines.gsp import _generate_candidates

        candidates = _generate_candidates({parse("(a)"), parse("(b)")}, 2)
        assert candidates == {
            parse("(a)(a)"),
            parse("(a)(b)"),
            parse("(b)(a)"),
            parse("(b)(b)"),
            parse("(a, b)"),
        }

    def test_prune_removes_unsupported(self):
        from repro.baselines.gsp import _prune

        frequent = {parse("(a)(b)"), parse("(b)(c)")}  # <(a)(c)> missing
        kept = _prune({parse("(a)(b)(c)")}, frequent, 3)
        assert kept == set()


class TestSpamInternals:
    def test_s_transform(self, table1_members):
        from repro.baselines.spam import _BitmapIndex

        index = _BitmapIndex([(1, parse("(a)(b)(a)"))])
        a_bitmap = index.item_bitmaps[1]  # transactions 0 and 2
        assert a_bitmap == 0b101
        # After the first a (bit 0), bits 1 and 2 become reachable.
        assert index.s_transform(a_bitmap) == 0b110

    def test_support_counts_customers(self):
        from repro.baselines.spam import _BitmapIndex

        index = _BitmapIndex([(1, parse("(a)(a)")), (2, parse("(b)"))])
        assert index.support(index.item_bitmaps[1]) == 1
        assert index.support(index.item_bitmaps[2]) == 1


class TestSpadeInternals:
    def test_joins_against_definition(self, table1_members):
        """Temporal/equality joins produce exactly the ID-lists defined
        in §1.1 (checked here on random data against brute placement)."""
        from repro.baselines.spade import _vertical_format, _temporal_join

        rng = random.Random(83)
        for _ in range(20):
            db = random_database(rng, max_customers=6)
            members = db.members()
            vertical = _vertical_format(members)
            items = sorted(vertical)
            if len(items) < 2:
                continue
            x, y = rng.choice(items), rng.choice(items)
            joined = set(_temporal_join(vertical[x], vertical[y]))
            expected = set()
            for sid, raw in members:
                xs = [eid for eid, txn in enumerate(raw) if x in txn]
                for eid, txn in enumerate(raw):
                    if y in txn and xs and min(xs) < eid:
                        expected.add((sid, eid))
            assert joined == expected
