"""Tests for database representation transforms (repro.db.transform)."""

from __future__ import annotations

import random

import pytest

from repro.core.sequence import parse
from repro.db.transform import (
    as_single_items,
    horizontal_format,
    relabel_items,
    vertical_format,
)
from repro.exceptions import InvalidDatabaseError
from tests.conftest import random_database


class TestVertical:
    def test_paper_example(self, table1_members):
        vertical = vertical_format(table1_members)
        # <(a)> occurs in CID 1 txn 1 and CID 4 txn 2 (0-based: 0 and 1).
        assert vertical[1] == [(1, 0), (4, 1)]

    def test_roundtrip_random(self):
        rng = random.Random(111)
        for _ in range(30):
            members = random_database(rng).members()
            assert horizontal_format(vertical_format(members)) == members

    def test_horizontal_rejects_gaps(self):
        with pytest.raises(InvalidDatabaseError):
            horizontal_format({1: [(1, 0)], 2: [(1, 2)]})  # txn 1 missing

    def test_empty(self):
        assert vertical_format([]) == {}
        assert horizontal_format({}) == []


class TestSingleItems:
    def test_flattens_itemsets(self):
        assert as_single_items(parse("(a, b)(c)")) == parse("(a)(b)(c)")

    def test_identity_on_single_items(self):
        raw = parse("(a)(b)(c)")
        assert as_single_items(raw) == raw


class TestRelabel:
    def test_mapping(self):
        assert relabel_items(parse("(a, b)(c)"), {1: 10, 2: 20, 3: 30}) == (
            (10, 20),
            (30,),
        )

    def test_callable_and_recanonicalisation(self):
        # Reversing item order forces a re-sort.
        assert relabel_items(parse("(a, b)"), lambda i: 10 - i) == ((8, 9),)

    def test_merging_collisions_deduplicate(self):
        assert relabel_items(parse("(a, b)"), lambda _: 5) == ((5,),)
