"""Tests for the database container, vocabulary and statistics."""

from __future__ import annotations

import pytest

from repro.db.database import SequenceDatabase
from repro.db.stats import compute_stats
from repro.db.vocabulary import Vocabulary
from repro.core.sequence import parse
from repro.exceptions import InvalidDatabaseError, InvalidParameterError


class TestSequenceDatabase:
    def test_from_texts(self, table1_db):
        assert len(table1_db) == 4
        assert table1_db[1] == parse("(a, e, g)(b)(h)(f)(c)(b, f)")

    def test_cid_is_one_based(self, table1_db):
        assert table1_db[4] == parse("(f)(a, g)(b, f, h)(b, f)")
        with pytest.raises(InvalidDatabaseError):
            table1_db[0]
        with pytest.raises(InvalidDatabaseError):
            table1_db[5]

    def test_members_shape(self, table1_db):
        members = table1_db.members()
        assert members[0][0] == 1
        assert members[-1][0] == 4

    def test_rejects_empty_sequence(self):
        with pytest.raises(InvalidDatabaseError):
            SequenceDatabase([()])

    def test_rejects_malformed_sequence(self):
        from repro.exceptions import InvalidSequenceError

        with pytest.raises(InvalidSequenceError):
            SequenceDatabase([((2, 1),)])

    def test_from_raw_canonicalises(self):
        db = SequenceDatabase.from_raw([[[3, 1], [2, 2]]])
        assert db[1] == ((1, 3), (2,))

    def test_from_itemsets_builds_vocabulary(self):
        db = SequenceDatabase.from_itemsets(
            [[["milk", "bread"], ["eggs"]], [["bread"]]]
        )
        assert db.vocabulary is not None
        assert len(db.vocabulary) == 3
        decoded = db.vocabulary.decode(db[1])
        assert [sorted(t) for t in decoded] == [["bread", "milk"], ["eggs"]]

    def test_equality_and_hash(self, table1_db):
        other = SequenceDatabase.from_texts(
            ["(a, e, g)(b)(h)(f)(c)(b, f)", "(b)(d, f)(e)", "(b, f, g)", "(f)(a, g)(b, f, h)(b, f)"]
        )
        assert table1_db == other
        assert hash(table1_db) == hash(other)

    def test_repr(self, table1_db):
        assert "4 sequences" in repr(table1_db)


class TestDeltaFor:
    def test_absolute_count(self, table1_db):
        assert table1_db.delta_for(2) == 2

    def test_fraction_rounds_up(self, table1_db):
        assert table1_db.delta_for(0.5) == 2
        assert table1_db.delta_for(0.51) == 3

    def test_minimum_one(self, table1_db):
        assert table1_db.delta_for(0.01) == 1

    @pytest.mark.parametrize("bad", [0, -1, -0.5, 1.5, True])
    def test_invalid(self, table1_db, bad):
        with pytest.raises(InvalidParameterError):
            table1_db.delta_for(bad)


class TestStats:
    def test_table1_statistics(self, table1_db):
        stats = table1_db.stats
        assert stats.num_sequences == 4
        assert stats.num_distinct_items == 8
        assert stats.total_transactions == 14
        assert stats.total_items == 24
        assert stats.max_length == 9
        assert stats.avg_transactions == pytest.approx(3.5)
        assert stats.avg_items_per_transaction == pytest.approx(24 / 14)
        assert stats.avg_length == pytest.approx(6.0)

    def test_empty(self):
        stats = compute_stats([])
        assert stats.num_sequences == 0
        assert stats.avg_transactions == 0.0
        assert stats.avg_items_per_transaction == 0.0
        assert stats.avg_length == 0.0

    def test_max_sequence_length(self, table1_db):
        assert table1_db.max_sequence_length() == 9


class TestVocabulary:
    def test_sorted_ids(self):
        vocab = Vocabulary.from_items(["c", "a", "b"])
        assert vocab.id_of("a") == 1
        assert vocab.id_of("b") == 2
        assert vocab.id_of("c") == 3

    def test_unsortable_falls_back_to_insertion(self):
        vocab = Vocabulary.from_items(["a", 1])
        assert vocab.id_of("a") == 1
        assert vocab.id_of(1) == 2

    def test_add_idempotent(self):
        vocab = Vocabulary()
        assert vocab.add("x") == 1
        assert vocab.add("x") == 1
        assert len(vocab) == 1

    def test_unknown_lookups_raise(self):
        vocab = Vocabulary()
        with pytest.raises(InvalidDatabaseError):
            vocab.id_of("missing")
        with pytest.raises(InvalidDatabaseError):
            vocab.item_of(1)

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary.from_items(["x", "y", "z"])
        raw = vocab.encode([["z", "x"], ["y"]])
        assert raw == ((1, 3), (2,))
        assert vocab.decode(raw) == [["x", "z"], ["y"]]

    def test_contains_and_iter(self):
        vocab = Vocabulary.from_items(["b", "a"])
        assert "a" in vocab
        assert "q" not in vocab
        assert list(vocab) == ["a", "b"]
