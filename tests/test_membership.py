"""Unit tests for the coordinator's dynamic worker lease table.

Membership is driven with a fake clock and fake transports: reap() is
called directly, so lease expiry, suspicion, probing, retirement and
revival are all deterministic.
"""

from __future__ import annotations

import pytest

from repro.cluster.membership import LIVE, RETIRED, SUSPECT, WorkerMembership
from repro.exceptions import InjectedFaultError, InvalidParameterError
from repro.faults import FaultPlan, fault_plan
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeClient:
    """A transport whose health is a settable flag (no sockets)."""

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url
        self.alive = True
        self.probes = 0

    def healthy(self, timeout: float = 2.0) -> bool:
        self.probes += 1
        return self.alive


@pytest.fixture
def table():
    clock = FakeClock()
    membership = WorkerMembership(
        FakeClient, lease_seconds=10.0, retire_grace=5.0, clock=clock
    )
    return membership, clock


URL = "http://127.0.0.1:9001"


class TestRegistration:
    def test_register_grants_a_lease(self, table):
        membership, _clock = table
        doc = membership.register(URL)
        assert doc == {
            "worker": URL, "state": LIVE, "lease_seconds": 10.0, "joined": True,
        }
        record = membership.record(URL)
        assert record.state == LIVE and not record.static

    def test_reregistration_renews_not_rejoins(self, table):
        membership, clock = table
        membership.register(URL)
        first = membership.record(URL)
        clock.advance(8.0)
        doc = membership.register(URL)
        assert doc["joined"] is False
        assert membership.record(URL) is first  # same generation
        assert first.lease_expires == pytest.approx(18.0)

    def test_url_normalised_and_validated(self, table):
        membership, _clock = table
        membership.register(URL + "/")
        assert membership.record(URL) is not None
        with pytest.raises(InvalidParameterError, match="http"):
            membership.register("ftp://example")

    def test_static_workers_convert_to_leased(self, table):
        membership, _clock = table
        membership.register(URL, static=True)
        assert membership.record(URL).static
        membership.register(URL)  # the worker itself phoned in
        assert not membership.record(URL).static


class TestLeaseLifecycle:
    def test_heartbeat_extends_the_lease(self, table):
        membership, clock = table
        membership.register(URL)
        clock.advance(9.0)
        assert membership.heartbeat(URL)
        record = membership.record(URL)
        assert record.lease_expires == pytest.approx(19.0)
        assert record.heartbeats == 1

    def test_heartbeat_unknown_worker_demands_registration(self, table):
        membership, _clock = table
        assert not membership.heartbeat(URL)

    def test_missed_lease_suspects_then_probe_readmits(self, table):
        membership, clock = table
        membership.register(URL)
        clock.advance(11.0)
        membership.reap()
        record = membership.record(URL)
        assert record.state == LIVE  # probe passed: suspicion cleared
        assert record.client.probes == 1
        assert record.lease_expires == pytest.approx(21.0)

    def test_failed_probes_past_grace_retire(self, table):
        membership, clock = table
        membership.register(URL)
        membership.record(URL).client.alive = False
        clock.advance(11.0)
        membership.reap()
        assert membership.record(URL).state == SUSPECT  # inside retire grace
        clock.advance(5.0)
        membership.reap()
        assert membership.record(URL).state == RETIRED
        assert membership.counts() == {LIVE: 0, SUSPECT: 0, RETIRED: 1}

    def test_heartbeat_clears_suspicion(self, table):
        membership, clock = table
        membership.register(URL)
        membership.record(URL).client.alive = False
        clock.advance(11.0)
        membership.reap()
        assert membership.heartbeat(URL)
        assert membership.record(URL).state == LIVE

    def test_retired_worker_revives_with_a_fresh_breaker(self, table):
        membership, clock = table
        membership.register(URL)
        record = membership.record(URL)
        record.client.alive = False
        record.breaker.record_failure()
        clock.advance(16.0)
        membership.reap()
        assert record.state == RETIRED
        assert not membership.heartbeat(URL)  # must re-register
        doc = membership.register(URL)
        assert doc["joined"] is True
        revived = membership.record(URL)
        assert revived is not record
        assert revived.breaker.snapshot()["consecutive_failures"] == 0

    def test_static_workers_are_never_reaped(self, table):
        membership, clock = table
        membership.register(URL, static=True)
        membership.record(URL).client.alive = False
        clock.advance(1000.0)
        membership.reap()
        record = membership.record(URL)
        assert record.state == LIVE
        assert record.client.probes == 0

    def test_deregister_retires_gracefully(self, table):
        membership, _clock = table
        membership.register(URL)
        assert membership.deregister(URL)
        assert membership.record(URL).state == RETIRED
        assert not membership.deregister(URL)  # already gone

    def test_stale_probe_verdict_never_clobbers_a_rejoin(self, table):
        """A worker that re-registers mid-probe keeps its new record."""
        membership, clock = table
        membership.register(URL)
        old = membership.record(URL)
        old.client.alive = False

        class RejoiningClient(FakeClient):
            def healthy(self, timeout: float = 2.0) -> bool:
                # the worker restarts (leave + rejoin, replacing the
                # record) while the reaper is blocked on this probe of
                # the old process
                membership.deregister(URL)
                membership.register(URL)
                return False

        old.client = RejoiningClient(URL)
        clock.advance(16.0)
        membership.reap()
        current = membership.record(URL)
        assert current is not old
        assert current.state == LIVE


class TestDispatchViews:
    def test_candidates_are_live_with_willing_breakers(self, table):
        membership, clock = table
        membership.register(URL)
        other = "http://127.0.0.1:9002"
        membership.register(other)
        for _ in range(3):
            membership.record(other).breaker.record_failure()
        candidates = [record.url for record in membership.dispatch_candidates()]
        assert candidates == [URL]

    def test_dispatch_allowed_tracks_record_identity(self, table):
        membership, clock = table
        membership.register(URL)
        record = membership.record(URL)
        assert membership.dispatch_allowed(record)
        membership.deregister(URL)
        assert not membership.dispatch_allowed(record)
        membership.register(URL)  # revival replaces the record
        assert not membership.dispatch_allowed(record)

    def test_describe_rows_cover_lease_and_breaker(self, table):
        membership, _clock = table
        membership.register(URL)
        (row,) = membership.describe()
        assert row["url"] == URL and row["state"] == LIVE
        assert row["breaker"]["state"] == "closed"
        assert row["lease_expires_in_seconds"] == pytest.approx(10.0)


class TestWiring:
    def test_breaker_transitions_move_the_gauge(self, table):
        membership, _clock = table
        membership.metrics = MetricsRegistry()
        membership.register(URL)
        record = membership.record(URL)
        for _ in range(3):
            record.breaker.record_failure()
        gauge = membership.metrics.gauge("cluster.breaker_state", worker=URL)
        assert gauge.value == 2  # open

    def test_membership_fault_points_are_armed(self, table):
        membership, _clock = table
        with fault_plan(FaultPlan.from_spec("worker.register:1")):
            with pytest.raises(InjectedFaultError):
                membership.register(URL)
        membership.register(URL)
        with fault_plan(FaultPlan.from_spec("worker.heartbeat:1")):
            with pytest.raises(InjectedFaultError):
                membership.heartbeat(URL)

    def test_lease_seconds_validated(self):
        with pytest.raises(InvalidParameterError, match="lease_seconds"):
            WorkerMembership(FakeClient, lease_seconds=0.0)

    def test_reaper_thread_start_stop_idempotent(self, table):
        membership, _clock = table
        membership.start(interval=0.05)
        membership.start(interval=0.05)
        membership.stop()
        membership.stop()
