"""Tests for the project model and call graph (repro.analysis).

Runs over the dedicated multi-file fixture package under
``tests/fixtures/check/callgraph/``: module functions, methods resolved
through the MRO, aliased and re-exported imports, typed receivers, and
the documented-unresolvable dynamic calls.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.callgraph import build_call_graph
from repro.analysis.project import load_project, parse_guard_comments

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "check" / "callgraph"


@pytest.fixture(scope="module")
def graph():
    return build_call_graph(load_project([FIXTURE]))


def callees(graph, qname: str) -> list[str]:
    return sorted(
        site.callee for site in graph.calls_from(qname) if site.callee is not None
    )


class TestProjectModel:
    def test_fixture_modules_get_real_dotted_names(self, graph):
        project = graph.project
        assert "repro.app" in project.modules
        assert "repro.app.util" in project.modules
        assert project.modules["repro.app"].is_package
        assert not project.modules["repro.app.util"].is_package

    def test_rel_paths_anchor_at_the_repro_component(self, graph):
        module = graph.project.modules["repro.app.main"]
        assert module.rel_path == "app/main.py"

    def test_classes_and_methods_are_indexed(self, graph):
        project = graph.project
        cls = project.classes["repro.app.models.Child"]
        assert set(cls.methods) == {"greet", "super_greet"}
        fn = project.functions["repro.app.models.Child.greet"]
        assert fn.is_method and fn.owner is cls

    def test_guard_comment_parser(self):
        source = "class C:\n    x: int = 0  # guarded-by: _lock\n"
        assert parse_guard_comments(source) == {2: "_lock"}


class TestResolution:
    def test_module_function_calls(self, graph):
        assert callees(graph, "repro.app.util.twice") == [
            "repro.app.util.helper",
            "repro.app.util.helper",
        ]

    def test_aliased_and_reexported_imports(self, graph):
        # ``from repro.app import helper as h`` resolves through the
        # package __init__ re-export; ``import repro.app.util as u``
        # resolves the dotted u.twice() chain.
        found = callees(graph, "repro.app.main.run")
        assert "repro.app.util.helper" in found
        assert "repro.app.util.twice" in found

    def test_constructor_types_the_receiver(self, graph):
        # child = Child(); child.greet() dispatches on the inferred type
        assert "repro.app.models.Child.greet" in callees(
            graph, "repro.app.main.run"
        )

    def test_self_call_resolves_through_the_mro(self, graph):
        assert callees(graph, "repro.app.models.Base.call_greet") == [
            "repro.app.models.Base.greet"
        ]

    def test_super_dispatches_to_the_base(self, graph):
        assert "repro.app.models.Base.greet" in callees(
            graph, "repro.app.models.Child.super_greet"
        )

    def test_dynamic_dispatch_is_unresolved_with_a_reason(self, graph):
        sites = graph.calls_from("repro.app.main.dynamic")
        assert sites, "the dynamic calls must still be recorded"
        assert all(site.callee is None for site in sites)
        assert all(site.reason for site in sites)

    def test_calls_to_inverts_the_edges(self, graph):
        callers = sorted(
            site.caller.qname for site in graph.calls_to("repro.app.util.helper")
        )
        assert callers == [
            "repro.app.main.run",
            "repro.app.util.twice",
            "repro.app.util.twice",
        ]


class TestReachability:
    def test_reachable_closure(self, graph):
        reached = graph.reachable(["repro.app.main.run"])
        assert "repro.app.util.helper" in reached
        assert "repro.app.util.twice" in reached
        assert "repro.app.models.Child.greet" in reached
        # Base.call_greet is never called from run
        assert "repro.app.models.Base.call_greet" not in reached

    def test_reachable_of_nothing_is_empty(self, graph):
        assert graph.reachable([]) == set()
