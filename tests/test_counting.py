"""Unit tests for counting arrays (repro.core.counting)."""

from __future__ import annotations

import random

from repro.core.counting import CountingArray, count_frequent_items
from repro.core.sequence import flatten, k_prefix, parse, seq_length, support_count
from repro.core.sequence import all_k_subsequences
from tests.conftest import random_database


class TestCountingArray:
    def test_last_cid_deduplicates_repetitions(self):
        # <(a)(b)> occurs twice in one customer sequence: counted once.
        array = CountingArray(parse("(a)"))
        array.observe(1, parse("(a)(b)(b)"))
        assert array.support((2, 2)) == 1

    def test_separate_customers_accumulate(self):
        array = CountingArray(parse("(a)"))
        array.observe(1, parse("(a)(b)"))
        array.observe(2, parse("(a)(b)"))
        assert array.support((2, 2)) == 2
        assert array.last_cids()[(2, 2)] == 2

    def test_support_of_unseen_pair(self):
        array = CountingArray(parse("(a)"))
        assert array.support((9, 2)) == 0

    def test_frequent_materialises_patterns(self):
        array = CountingArray(parse("(a)"))
        for cid in (1, 2, 3):
            array.observe(cid, parse("(a, b)(c)"))
        frequent = dict(array.frequent(3))
        assert frequent == {parse("(a, b)"): 3, parse("(a)(c)"): 3}

    def test_counts_match_true_supports_random(self):
        """The one-scan counting array equals brute-force support counts
        for every (k+1)-extension of the prefix."""
        rng = random.Random(41)
        for _ in range(40):
            db = random_database(rng)
            members = db.members()
            # Pick a prefix present somewhere in the data.
            raws = [raw for _, raw in members]
            k = rng.randint(1, 2)
            pool = sorted(
                {sub for raw in raws for sub in all_k_subsequences(raw, k)},
                key=flatten,
            )
            if not pool:
                continue
            prefix = rng.choice(pool)
            array = CountingArray(prefix)
            array.observe_all(members)
            for pattern, count in array.frequent(1):
                assert count == support_count(raws, pattern), pattern
                assert seq_length(pattern) == k + 1
                assert k_prefix(pattern, k) == prefix

    def test_completeness_random(self):
        """Every (k+1)-sequence with the prefix and support >= 1 shows up."""
        rng = random.Random(42)
        for _ in range(30):
            db = random_database(rng, max_customers=8)
            members = db.members()
            raws = [raw for _, raw in members]
            anchor = min(item for txn in raws[0] for item in txn)
            prefix = ((anchor,),)  # 1-sequence of the first customer's min item
            array = CountingArray(prefix)
            array.observe_all(members)
            found = {p for p, _ in array.frequent(1)}
            expected = {
                sub
                for raw in raws
                for sub in all_k_subsequences(raw, 2)
                if k_prefix(sub, 1) == prefix
            }
            assert found == expected

    def test_empty_prefix_counts_items(self):
        array = CountingArray(())
        array.observe(1, parse("(a, b)"))
        array.observe(2, parse("(b)(b)"))
        assert dict(array.frequent(1)) == {
            parse("(a)"): 1,
            parse("(b)"): 2,
        }


class TestCountFrequentItems:
    def test_per_customer_dedup(self):
        members = [(1, parse("(a)(a)(a)")), (2, parse("(a, b)"))]
        assert count_frequent_items(members, 1) == {1: 2, 2: 1}

    def test_threshold(self):
        members = [(1, parse("(a)")), (2, parse("(a, b)"))]
        assert count_frequent_items(members, 2) == {1: 2}

    def test_empty_database(self):
        assert count_frequent_items([], 1) == {}
