"""Merge algebra tests: RunReport.merge and MiningResult.merge.

The cluster coordinator folds per-shard results with these operations;
correctness of the fold requires the report merge to be associative and
commutative (shards complete in arbitrary order) and the result merge to
reject overlapping — i.e. mis-built — shards loudly.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.counting import count_frequent_items
from repro.core.discall import disc_all
from repro.core.order import sort_key
from repro.exceptions import (
    DataFormatError,
    InvalidParameterError,
    ShardOverlapError,
)
from repro.mining.result import MiningResult
from repro.obs import RunReport, observation
from repro.obs.context import activated


def report_of(rng: random.Random, spans: bool = False) -> RunReport:
    """A random small report with integer-valued metrics.

    Integer values keep counter addition exactly associative, so merged
    ``to_dict()`` documents can be compared for strict equality.
    """
    with activated(observation(trace=spans)) as obs:
        for name in rng.sample(["alpha", "beta", "gamma", "delta"], rng.randint(1, 4)):
            obs.metrics.counter(name).add(rng.randint(1, 100))
        for name in rng.sample(["depth", "width"], rng.randint(0, 2)):
            obs.metrics.gauge(name).set(rng.randint(1, 50))
        for name in rng.sample(["cost", "size"], rng.randint(0, 2)):
            hist = obs.metrics.histogram(name)
            for _ in range(rng.randint(1, 5)):
                hist.record(rng.randint(1, 1000))
        if spans:
            with obs.tracer.span("outer", k=rng.randint(1, 9)):
                with obs.tracer.span("inner"):
                    pass
        return obs.report()


class TestRunReportMerge:
    def test_commutative(self):
        rng = random.Random(11)
        for _ in range(25):
            a, b = report_of(rng), report_of(rng)
            assert a.merge(b).to_dict() == b.merge(a).to_dict()

    def test_associative(self):
        rng = random.Random(13)
        for _ in range(25):
            a, b, c = report_of(rng), report_of(rng), report_of(rng)
            left = a.merge(b).merge(c).to_dict()
            right = a.merge(b.merge(c)).to_dict()
            assert left == right

    def test_commutative_with_spans(self):
        rng = random.Random(17)
        for _ in range(10):
            a = report_of(rng, spans=True)
            b = report_of(rng, spans=True)
            assert json.dumps(a.merge(b).to_dict(), sort_keys=True, default=str) \
                == json.dumps(b.merge(a).to_dict(), sort_keys=True, default=str)

    def test_counters_add(self):
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n").add(3)
            a = obs.report()
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n").add(4)
            obs.metrics.counter("only_b").add(1)
            b = obs.report()
        merged = a.merge(b)
        assert merged.counter_value("n") == 7
        assert merged.counter_value("only_b") == 1

    def test_labelled_counters_merge_per_label(self):
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n", k=1).add(2)
            a = obs.report()
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n", k=1).add(5)
            obs.metrics.counter("n", k=2).add(9)
            b = obs.report()
        merged = a.merge(b)
        assert merged.counter_value("n", k=1) == 7
        assert merged.counter_value("n", k=2) == 9
        assert merged.counter_total("n") == 16

    def test_gauges_keep_maximum(self):
        with activated(observation(trace=False)) as obs:
            obs.metrics.gauge("depth").set(10)
            obs.metrics.gauge("depth").set(4)
            a = obs.report()
        with activated(observation(trace=False)) as obs:
            obs.metrics.gauge("depth").set(7)
            b = obs.report()
        entry = a.merge(b).metrics["depth"]
        assert entry["value"] == 7  # larger of the two final values
        assert entry["max"] == 10

    def test_histograms_combine(self):
        with activated(observation(trace=False)) as obs:
            hist = obs.metrics.histogram("cost")
            hist.record(1)
            hist.record(100)
            a = obs.report()
        with activated(observation(trace=False)) as obs:
            obs.metrics.histogram("cost").record(50)
            b = obs.report()
        entry = a.merge(b).metrics["cost"]
        assert entry["count"] == 3
        assert entry["sum"] == 151
        assert entry["min"] == 1
        assert entry["max"] == 100

    def test_type_conflict_is_an_error(self):
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("x").add(1)
            a = obs.report()
        with activated(observation(trace=False)) as obs:
            obs.metrics.gauge("x").set(1)
            b = obs.report()
        with pytest.raises(DataFormatError, match="cannot merge metric"):
            a.merge(b)

    def test_inputs_not_mutated(self):
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n").add(3)
            a = obs.report()
        before = json.dumps(a.to_dict(), sort_keys=True, default=str)
        a.merge(a)
        assert json.dumps(a.to_dict(), sort_keys=True, default=str) == before


def shard_results(members, delta: int, algorithm: str = "disc-all"):
    """Per-partition MiningResults plus the 1-sequence result, as the
    coordinator would produce them."""
    size = len(members)
    frequent = count_frequent_items(members, delta)
    full = disc_all(members, delta).patterns
    ones = MiningResult(
        patterns={((item,),): count for item, count in frequent.items()},
        delta=delta, algorithm=algorithm, database_size=size,
    )
    shards = [
        MiningResult(
            patterns={
                raw: count for raw, count in full.items()
                if sum(len(txn) for txn in raw) >= 2 and raw[0][0] == lam
            },
            delta=delta, algorithm=algorithm, database_size=size,
        )
        for lam in frequent
    ]
    return ones, shards


class TestMiningResultMerge:
    def test_disjoint_shards_rebuild_single_box_result(self, table6_members):
        reference = disc_all(table6_members, 3).patterns
        ones, shards = shard_results(table6_members, 3)
        merged = ones
        for shard in shards:
            merged = merged.merge(shard)
        assert merged.patterns == reference
        # canonical comparative order, independent of merge order
        assert list(merged.patterns) == sorted(merged.patterns, key=sort_key)

    def test_merge_order_does_not_matter(self, table6_members):
        ones, shards = shard_results(table6_members, 3)
        rng = random.Random(3)
        forward = ones
        for shard in shards:
            forward = forward.merge(shard)
        shuffled = list(shards)
        rng.shuffle(shuffled)
        backward = ones
        for shard in shuffled:
            backward = backward.merge(shard)
        assert list(forward.patterns.items()) == list(backward.patterns.items())

    def test_overlap_is_an_error(self, table6_members):
        ones, _ = shard_results(table6_members, 3)
        with pytest.raises(ShardOverlapError, match="claimed by both shards"):
            ones.merge(ones)

    def test_run_mismatch_is_an_error(self):
        a = MiningResult(patterns={}, delta=2, algorithm="disc-all", database_size=4)
        for other in (
            MiningResult(patterns={}, delta=3, algorithm="disc-all", database_size=4),
            MiningResult(patterns={}, delta=2, algorithm="gsp", database_size=4),
            MiningResult(patterns={}, delta=2, algorithm="disc-all", database_size=5),
        ):
            with pytest.raises(InvalidParameterError, match="different runs"):
                a.merge(other)

    def test_reports_and_flags_combine(self):
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n").add(1)
            report_a = obs.report()
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n").add(2)
            report_b = obs.report()
        a = MiningResult(
            patterns={((1,),): 2}, delta=1, algorithm="disc-all",
            database_size=2, elapsed_seconds=0.5, complete=True, report=report_a,
        )
        b = MiningResult(
            patterns={((2,),): 2}, delta=1, algorithm="disc-all",
            database_size=2, elapsed_seconds=1.5, complete=False, report=report_b,
        )
        merged = a.merge(b)
        assert merged.elapsed_seconds == 1.5
        assert merged.complete is False
        assert merged.checkpoint is None
        assert merged.report is not None
        assert merged.report.counter_value("n") == 3

    def test_report_passes_through_when_one_side_missing(self):
        with activated(observation(trace=False)) as obs:
            obs.metrics.counter("n").add(5)
            report = obs.report()
        a = MiningResult(
            patterns={((1,),): 2}, delta=1, algorithm="disc-all", database_size=2,
        )
        b = MiningResult(
            patterns={((2,),): 2}, delta=1, algorithm="disc-all",
            database_size=2, report=report,
        )
        assert a.merge(b).report is report
        assert b.merge(a).report is report
