"""Literal assertions of every worked example in the paper.

Each test cites the table/figure/example it transcribes.  Two cells of
Figure 3 are hand-verified errata of the paper (see
``test_fig3_counting_array``); everything else matches the paper exactly.
"""

from __future__ import annotations

import pytest

from repro.core.counting import CountingArray
from repro.core.disc import discover_frequent_k
from repro.core.discall import disc_all
from repro.core.kminimum import (
    SortedFrequentList,
    apriori_ckms,
    apriori_kms,
    minimum_k_subsequence,
    minimum_k_subsequence_brute,
)
from repro.core.order import compare, differential_point
from repro.core.partition import first_level_partitions, reduce_sequence
from repro.core.sequence import flatten, format_seq, parse
from repro.core.sorted_db import KSortedDatabase
from repro.baselines.spade import mine_spade
from tests.conftest import TABLE6_TEXTS, TABLE7_TEXTS


def seq(text: str):
    return parse(text)


class TestSection1:
    def test_table1_spade_idlist_example(self, table1_members):
        """§1.1: the ID-list of <(a, g)(b)> is <(1,2), (1,6), (4,3), (4,4)>.

        SPADE's internal ID-lists use 0-based transaction indices; the
        paper's pairs are 1-based, so we compare shifted.
        """
        from repro.baselines.spade import _vertical_format, _temporal_join, _equality_join

        vertical = _vertical_format(table1_members)
        a, b, g = 1, 2, 7
        ag = _equality_join(vertical[a], vertical[g])
        agb = _temporal_join(ag, vertical[b])
        assert [(sid, eid + 1) for sid, eid in agb] == [(1, 2), (1, 6), (4, 3), (4, 4)]

    def test_table1_spade_merge_example(self, table1_members):
        """§1.1: merging <(a,g)(h)> and <(a,g)(f)> ID-lists gives support 2."""
        from repro.baselines.spade import (
            _vertical_format,
            _temporal_join,
            _equality_join,
            _support,
        )

        vertical = _vertical_format(table1_members)
        a, f, g, h = 1, 6, 7, 8
        ag = _equality_join(vertical[a], vertical[g])
        agh = _temporal_join(ag, vertical[h])
        assert [(sid, eid + 1) for sid, eid in agh] == [(1, 3), (4, 3)]
        agf = _temporal_join(ag, vertical[f])
        assert [(sid, eid + 1) for sid, eid in agf] == [(1, 4), (1, 6), (4, 3), (4, 4)]
        aghf = _temporal_join(agh, vertical[f])
        assert [(sid, eid + 1) for sid, eid in aghf] == [(1, 4), (1, 6), (4, 4)]
        assert _support(aghf) == 2

    def test_prefixspan_frequent_one_sequences(self, table1_db):
        """§1.1: at delta=2 the frequent 1-sequences of Table 1 are
        <(a)>, <(b)>, <(e)>, <(f)>, <(g)>, <(h)>."""
        from repro.mining.api import mine

        result = mine(table1_db, 2, algorithm="prefixspan")
        ones = sorted(raw[0][0] for raw in result.of_length(1))
        assert ones == [1, 2, 5, 6, 7, 8]

    def test_section12_order_examples(self):
        """§1.2: <(a)(b)(h)> < <(a)(c)(f)> and <(a,b)(c)> < <(a)(b,c)>."""
        assert compare(seq("(a)(b)(h)"), seq("(a)(c)(f)")) == -1
        assert compare(seq("(a, b)(c)"), seq("(a)(b, c)")) == -1

    def test_table3_three_minimum_subsequences(self, table1_members):
        """Table 3: the 3-minimum subsequence of each customer sequence."""
        expected = {1: "(a)(b)(b)", 2: "(b)(d)(e)", 3: "(b, f, g)", 4: "(a)(b)(b)"}
        for cid, raw in table1_members:
            assert minimum_k_subsequence(raw, 3) == seq(expected[cid])

    def test_example_11_frequency_by_comparison(self, table1_members):
        """Example 1.1: <(a)(b)(b)> is the minimum with support exactly 2."""
        threes = sorted(
            (minimum_k_subsequence(raw, 3) for _, raw in table1_members),
            key=flatten,
        )
        assert threes[0] == threes[1] == seq("(a)(b)(b)")
        assert threes[2] != seq("(a)(b)(b)")

    def test_example_12_conditional_resort(self, table1_members):
        """Example 1.2 / Table 4: at delta=3, CID 1 and 4 re-sort to
        conditional 3-minimums >= <(b)(d)(e)>."""
        from repro.core.kminimum import min_extension

        alpha_delta = seq("(b)(d)(e)")
        bound = flatten(alpha_delta)
        # Conditional 3-minimums are 3-sequences >= alpha_delta.  Table 4
        # gives <(b)(f)(b)> for CID 1 and <(b, f)(b)> for CID 4.
        expected = {1: "(b)(f)(b)", 4: "(b, f)(b)"}
        for cid, raw in table1_members:
            if cid not in expected:
                continue
            candidates = [
                cand
                for cand in _all_3_subsequences(raw)
                if flatten(cand) >= bound
            ]
            got = min(candidates, key=flatten)
            assert got == seq(expected[cid]), format_seq(got)


def _all_3_subsequences(raw):
    from repro.core.sequence import all_k_subsequences

    return all_k_subsequences(raw, 3)


class TestSection2:
    # Examples 2.1/2.2 use itemsets written in non-alphabetic order;
    # the raw tuples below transcribe them as written.
    A = ((1, 3, 4), (4, 2))  # <(a, c, d)(d, b)>
    B = ((1, 4, 5), (1,))  # <(a, d, e)(a)>
    C = ((1, 3), (4, 1))  # <(a, c)(d, a)>

    def test_example_21_differential_points(self):
        assert differential_point(self.A, self.B) == 2
        assert differential_point(self.A, self.C) == 3

    def test_example_21_orders(self):
        assert compare(self.A, self.B) == -1  # A < B by Definition 2.2(a)
        assert compare(self.A, self.C) == -1  # A < C by Definition 2.2(b)

    def test_example_22_k_minimums_of_A(self):
        expected = {
            1: ((1,),),
            2: ((1,), (2,)),
            3: ((1, 3), (2,)),
            4: ((1, 3, 4), (2,)),
            5: ((1, 3, 4), (4, 2)),
        }
        for k, want in expected.items():
            assert minimum_k_subsequence_brute(self.A, k) == want

    def test_example_22_three_minimums_of_B_and_C(self):
        assert minimum_k_subsequence_brute(self.B, 3) == ((1, 4), (1,))
        assert minimum_k_subsequence_brute(self.C, 3) == ((1, 3), (1,))

    def test_example_22_orders_of_minimums(self):
        """C <_3 A <_3 B and C =_2 B <_2 A."""
        a3 = minimum_k_subsequence_brute(self.A, 3)
        b3 = minimum_k_subsequence_brute(self.B, 3)
        c3 = minimum_k_subsequence_brute(self.C, 3)
        assert flatten(c3) < flatten(a3) < flatten(b3)
        a2 = minimum_k_subsequence_brute(self.A, 2)
        b2 = minimum_k_subsequence_brute(self.B, 2)
        c2 = minimum_k_subsequence_brute(self.C, 2)
        assert flatten(c2) == flatten(b2) < flatten(a2)


class TestSection3:
    DELTA = 3

    def test_example_31_initial_partitions(self, table6_members):
        """Example 3.1 / Table 6 column 3."""
        parts = first_level_partitions(table6_members)
        by_letter = {key: sorted(cid for cid, _ in group) for key, group in parts.items()}
        assert by_letter == {1: [1, 2, 3, 4, 5, 6, 7], 2: [8, 10], 4: [9], 5: [11]}

    def test_example_31_frequent_one_sequences(self, table6_members):
        """Example 3.1: all 1-sequences except <(d)> are frequent."""
        from repro.core.counting import count_frequent_items

        frequent = count_frequent_items(table6_members, self.DELTA)
        assert sorted(frequent) == [1, 2, 3, 5, 6, 7, 8]

    def test_example_31_reassignment(self, table6_members):
        """Example 3.1 / Table 6 rightmost column: after processing the
        <(a)>-partition, CIDs 1-7 move to their next partitions.

        CID 5 = <(a, g)> is "Removed" in the paper because its next
        minimum point sits at the very end.  We keep it in the
        <(g)>-partition one round longer (see DESIGN.md) — the paper's
        rationale still holds: no 2-sequence starting at g exists in it,
        so it contributes nothing and is dropped at the next
        reassignment.
        """
        from repro.core.kminimum import min_extension
        from repro.core.partition import next_minimum_item

        expected = {1: 3, 2: 2, 3: 3, 4: 3, 6: 5, 7: 2}
        for cid, raw in table6_members:
            if cid in expected:
                assert next_minimum_item(raw, 1) == expected[cid]
        cid5 = dict(table6_members)[5]
        g = next_minimum_item(cid5, 1)
        assert g == 7
        assert min_extension(cid5, ((g,),)) is None  # hosts no 2-sequence
        assert next_minimum_item(cid5, g) is None  # then leaves entirely

    def test_fig3_counting_array(self, table6_members):
        """Figure 3, with two hand-verified errata.

        The paper prints (_g) = 6 and (_h) = 5; direct inspection of
        Table 6 gives (_g) = 7 (every one of CIDs 1-7 has a transaction
        containing both a and g) and (_h) = 4 (CID 7 has no transaction
        containing both a and h — its h co-occurs only with g).  Both
        sides of the disagreement leave the frequent set unchanged.
        """
        parts = first_level_partitions(table6_members)
        array = CountingArray(((1,),))
        array.observe_all(parts[1])
        counts = array.counts()
        item = lambda ch: ord(ch) - 96
        # (x) row: <(a)(x)> — matches the paper exactly.
        seq_row = {ch: counts.get((item(ch), 2), 0) for ch in "abcdefgh"}
        assert seq_row == {"a": 6, "b": 0, "c": 4, "d": 1, "e": 5, "f": 1, "g": 6, "h": 5}
        # (_x) row: <(a x)> — errata at g and h, see docstring.
        item_row = {ch: counts.get((item(ch), 1), 0) for ch in "abcdefgh"}
        assert item_row == {"a": 0, "b": 1, "c": 2, "d": 1, "e": 5, "f": 3, "g": 7, "h": 4}

    def test_example_32_table7_reduction(self, table6_members):
        """Example 3.2 / Table 7: the reduced <(a)>-partition."""
        parts = first_level_partitions(table6_members)
        array = CountingArray(((1,),))
        array.observe_all(parts[1])
        frequent_items = frozenset([1, 2, 3, 5, 6, 7, 8])
        frequent_pairs = {
            pair for pair, count in array.counts().items() if count >= self.DELTA
        }
        for cid, raw in parts[1]:
            reduced = reduce_sequence(raw, 1, frequent_items, frequent_pairs)
            if cid in TABLE7_TEXTS:
                assert reduced == parse(TABLE7_TEXTS[cid]), cid
            else:
                assert cid == 5 and reduced is None

    def _aa_partition(self, table7_members):
        return [(cid, raw) for cid, raw in table7_members]

    def test_example_33_table8_sorted_list(self, table7_members):
        """Table 8: the 3-sorted list of the <(a)(a)>-partition."""
        array = CountingArray(parse("(a)(a)"))
        array.observe_all(table7_members)
        freq3 = sorted((p for p, c in array.frequent(self.DELTA)), key=flatten)
        assert [format_seq(p) for p in freq3] == [
            "<(a)(a, e)>",
            "<(a)(a, g)>",
            "<(a)(a, h)>",
        ]

    def test_example_33_table9_four_sorted_database(self, table7_members):
        """Example 3.3 / Table 9: 4-minimums and apriori pointers."""
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        sdb = KSortedDatabase(table7_members, flist)
        rows = [
            (entry.cid, format_seq(entry.kmin), entry.pointer + 1)
            for entry in sdb.entries()
        ]
        assert rows == [
            (3, "<(a)(a, e)(c)>", 1),
            (2, "<(a)(a, e, g)>", 1),
            (4, "<(a)(a, e, g)>", 1),
            (6, "<(a)(a, e, g)>", 1),
            (7, "<(a)(a, e, g)>", 1),
            (1, "<(a)(a, g)(c)>", 2),
        ]

    def test_example_33_apriori_kms_cid1(self):
        """Example 3.3: for CID 1, <(a)(a, e)> has no match; <(a)(a, g)>
        matches and item c completes <(a)(a, g)(c)>."""
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        found = apriori_kms(parse("(a)(a, g, h)(c)"), flist)
        assert found is not None
        kmin, pointer = found
        assert kmin == parse("(a)(a, g)(c)")
        assert pointer == 1  # 0-based index of <(a)(a, g)>

    def test_example_34_conditional_four_minimum(self):
        """Example 3.4 / Table 10: CID 3 advances to <(a)(a, e, g)>."""
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        found = apriori_ckms(
            parse("(a, f, g)(a, e, g, h)(c, g, h)"),
            flist,
            pointer=0,
            alpha_delta=parse("(a)(a, e, g)"),
            strict=False,
        )
        assert found is not None
        kmin, pointer = found
        assert kmin == parse("(a)(a, e, g)")
        assert pointer == 0

    def test_example_35_bilevel_virtual_partition(self, table7_members):
        """Example 3.5 / Figure 7: <(a)(a, e, g)> is frequent (support 5)
        and <(a)(a, e, g, h)> is its only frequent 5-extension."""
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        result = discover_frequent_k(table7_members, flist, self.DELTA, bilevel=True)
        assert result.frequent_k[parse("(a)(a, e, g)")] == 5
        fives = {p: c for p, c in result.frequent_k_plus_1.items()}
        assert parse("(a)(a, e, g, h)") in fives
        assert all(
            p == parse("(a)(a, e, g, h)")
            for p in fives
            if p[:1] == (parse("(a)(a, e, g)")[0],)
            and flatten(p)[:4] == flatten(parse("(a)(a, e, g)"))
        )

    def test_fig7_counting_array_over_virtual_partition(self, table7_members):
        """Figure 7 (with errata): the virtual partition of <(a)(a, e, g)>.

        The paper's snapshot "after three customer sequences" prints
        (c)=(g)=(h)=1 and (_h)=3, which no prefix-order subset of the
        supporters reproduces (CIDs 7 and 3 each contribute both (g) and
        (h)).  Counting the full virtual partition — supporters 2, 4, 6,
        7, 3 per Tables 9/10 — gives (c)=1, (g)=2, (h)=2, (_h)=3.  The
        figure's conclusion is unaffected and asserted below:
        <(a)(a, e, g, h)> is the only frequent 5-sequence with 4-prefix
        <(a)(a, e, g)>.
        """
        array = CountingArray(parse("(a)(a, e, g)"))
        supporters = {2, 4, 6, 7, 3}
        for cid, raw in table7_members:
            if cid in supporters:
                array.observe(cid, raw)
        item = lambda ch: ord(ch) - 96
        counts = array.counts()
        # The prefix spans 2 transactions: itemset extensions carry
        # transaction number 2 (the paper's (_x) row), sequence
        # extensions number 3 (the (x) row).
        assert counts.get((item("c"), 3), 0) == 1
        assert counts.get((item("g"), 3), 0) == 2
        assert counts.get((item("h"), 3), 0) == 2
        assert counts.get((item("h"), 2), 0) == 3
        frequent = [p for p, c in array.frequent(self.DELTA)]
        assert frequent == [parse("(a)(a, e, g, h)")]


class TestEndToEnd:
    def test_table6_full_mining_agreement(self, table6_members):
        """DISC-all on Table 6 at delta=3 agrees with every baseline."""
        from repro.baselines.bruteforce import mine_bruteforce

        expected = mine_bruteforce(table6_members, 3)
        assert disc_all(table6_members, 3).patterns == expected
        assert mine_spade(table6_members, 3) == expected

    def test_example_31_sample_patterns(self, table6_members):
        """Example 3.1 names <(a, e)> and <(a)(g, h)> as frequent
        sequences with first item a."""
        patterns = disc_all(table6_members, 3).patterns
        assert parse("(a, e)") in patterns
        assert parse("(a)(g, h)") in patterns


class TestTable10:
    def test_resort_after_conditional_advance(self, table7_members):
        """Table 10: after CID 3 advances to its conditional 4-minimum,
        the 4-sorted database orders CIDs 2,4,6,7,3 under <(a)(a, e, g)>
        with CID 1 last under <(a)(a, g)(c)>."""
        from repro.core.kminimum import (
            CkmsQuery,
            SortedFrequentList,
            apriori_ckms_entry,
        )
        from repro.core.sorted_db import KSortedDatabase

        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        sdb = KSortedDatabase(table7_members, flist)
        # By Lemma 2.2 the candidate <(a)(a, e)(c)> is not frequent at
        # delta=3; CID 3 (its only holder) advances non-strictly past
        # alpha_delta = <(a)(a, e, g)>.
        alpha_delta = parse("(a)(a, e, g)")
        removed = sdb.pop_below(flatten(alpha_delta))
        assert [entry.cid for entry in removed] == [3]
        query = CkmsQuery(flist, alpha_delta, strict=False)
        for entry in removed:
            advanced = apriori_ckms_entry(entry.seq, flist, entry.pointer, query)
            assert advanced is not None
            entry.key, entry.pointer = advanced
            sdb.add(entry)
        rows = [
            (entry.cid, format_seq(entry.kmin), entry.pointer + 1)
            for entry in sdb.entries()
        ]
        assert rows == [
            (2, "<(a)(a, e, g)>", 1),
            (4, "<(a)(a, e, g)>", 1),
            (6, "<(a)(a, e, g)>", 1),
            (7, "<(a)(a, e, g)>", 1),
            (3, "<(a)(a, e, g)>", 1),
            (1, "<(a)(a, g)(c)>", 2),
        ]


class TestTable4:
    def test_resort_of_table3(self, table1_members):
        """Table 4: at delta=3, CIDs 1 and 4 re-sort to conditional
        3-minimums >= <(b)(d)(e)>, giving the exact row order shown."""
        from repro.core.kminimum import minimum_k_subsequence
        from repro.core.sequence import all_k_subsequences

        alpha_delta = parse("(b)(d)(e)")
        bound = flatten(alpha_delta)
        rows = []
        for cid, raw in table1_members:
            kmin = minimum_k_subsequence(raw, 3)
            if flatten(kmin) < bound:
                candidates = [
                    sub for sub in all_k_subsequences(raw, 3)
                    if flatten(sub) >= bound
                ]
                kmin = min(candidates, key=flatten)
            rows.append((cid, kmin))
        rows.sort(key=lambda cr: flatten(cr[1]))
        assert [(cid, format_seq(k)) for cid, k in rows] == [
            (2, "<(b)(d)(e)>"),
            (4, "<(b, f)(b)>"),
            (3, "<(b, f, g)>"),
            (1, "<(b)(f)(b)>"),
        ]
