"""Tests for sequential rule generation (repro.ext.rules)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.sequence import contains, parse
from repro.exceptions import InvalidParameterError
from repro.ext.rules import generate_rules, rules_for
from tests.conftest import random_database


class TestGenerateRules:
    def test_statistics_are_true_probabilities(self):
        rng = random.Random(151)
        for _ in range(15):
            db = random_database(rng, max_customers=10)
            members = db.members()
            raws = [raw for _, raw in members]
            delta = rng.randint(1, max(1, len(members) // 2))
            patterns = mine_bruteforce(members, delta)
            rules = generate_rules(patterns, len(raws), min_confidence=0.01)
            for rule in rules:
                whole = rule.antecedent + rule.consequent
                supp_whole = sum(1 for raw in raws if contains(raw, whole))
                supp_ante = sum(
                    1 for raw in raws if contains(raw, rule.antecedent)
                )
                assert rule.support == supp_whole
                assert rule.confidence == pytest.approx(supp_whole / supp_ante)

    def test_min_confidence_filters(self, table1_members):
        patterns = mine_bruteforce(table1_members, 2)
        strict = generate_rules(patterns, 4, min_confidence=1.0)
        loose = generate_rules(patterns, 4, min_confidence=0.5)
        assert len(strict) < len(loose)
        assert all(rule.confidence == 1.0 for rule in strict)

    def test_known_rule(self, table1_members):
        # <(a, g)> occurs in CIDs 1, 4; both continue with <(b)>.
        patterns = mine_bruteforce(table1_members, 2)
        rules = generate_rules(patterns, 4, min_confidence=0.9)
        match = [
            r for r in rules
            if r.antecedent == parse("(a, g)") and r.consequent == parse("(b)")
        ]
        assert len(match) == 1
        assert match[0].confidence == 1.0
        assert match[0].support == 2
        # lift: confidence 1.0 over P(<(b)>) = 4/4 -> 1.0
        assert match[0].lift == pytest.approx(1.0)

    def test_sorted_by_confidence_then_support(self, table1_members):
        patterns = mine_bruteforce(table1_members, 2)
        rules = generate_rules(patterns, 4, min_confidence=0.3)
        keys = [(-r.confidence, -r.support) for r in rules]
        assert keys == sorted(keys)

    def test_single_transaction_patterns_make_no_rules(self):
        patterns = {parse("(a)"): 3, parse("(a, b)"): 2, parse("(b)"): 2}
        assert generate_rules(patterns, 3, 0.1) == []

    def test_truncated_map_rejected(self):
        patterns = {parse("(a)(b)"): 2}  # missing <(a)> and <(b)>
        with pytest.raises(InvalidParameterError, match="downward-closed"):
            generate_rules(patterns, 3, 0.1)

    @pytest.mark.parametrize("conf", [0, -0.5, 1.5])
    def test_confidence_validation(self, conf):
        with pytest.raises(InvalidParameterError):
            generate_rules({}, 1, conf)

    def test_database_size_validation(self):
        with pytest.raises(InvalidParameterError):
            generate_rules({}, 0, 0.5)


class TestRulesFor:
    def test_prediction_view(self, table1_members):
        patterns = mine_bruteforce(table1_members, 2)
        rules = generate_rules(patterns, 4, min_confidence=0.5)
        a = parse("(a)")
        for rule in rules_for(rules, a):
            assert rule.antecedent == a


class TestPredictNext:
    def test_prediction_ranking(self, table1_members):
        from repro.ext.rules import predict_next

        patterns = mine_bruteforce(table1_members, 2)
        rules = generate_rules(patterns, 4, min_confidence=0.3)
        history = parse("(a, g)")
        predictions = predict_next(rules, history, top=3)
        assert predictions
        confidences = [conf for _, conf in predictions]
        assert confidences == sorted(confidences, reverse=True)
        # <(a, g)> always continues with <(b)> in Table 1.
        assert predictions[0][1] == 1.0

    def test_no_applicable_rules(self, table1_members):
        from repro.ext.rules import predict_next

        patterns = mine_bruteforce(table1_members, 2)
        rules = generate_rules(patterns, 4, min_confidence=0.3)
        assert predict_next(rules, parse("(z)")) == []

    def test_best_confidence_wins_per_consequent(self):
        from repro.core.sequence import parse as p
        from repro.ext.rules import SequentialRule, predict_next

        rules = [
            SequentialRule(p("(a)"), p("(c)"), 2, 0.4, 1.0),
            SequentialRule(p("(b)"), p("(c)"), 2, 0.9, 1.0),
        ]
        predictions = predict_next(rules, p("(a)(b)"))
        assert predictions == [(p("(c)"), 0.9)]
