"""Tests for the mining API and registry (repro.mining)."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError, UnknownAlgorithmError
from repro.mining.api import mine
from repro.mining.registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
)


class TestMine:
    def test_default_algorithm_is_disc_all(self, table1_db):
        result = mine(table1_db, 2)
        assert result.algorithm == "disc-all"
        assert result.delta == 2
        assert result.database_size == 4
        assert result.elapsed_seconds >= 0

    def test_fractional_support(self, table1_db):
        result = mine(table1_db, 0.5)
        assert result.delta == 2

    def test_absolute_support(self, table1_db):
        assert mine(table1_db, 3).delta == 3

    def test_options_forwarded(self, table1_db):
        result = mine(table1_db, 2, algorithm="dynamic-disc-all", gamma=0.9)
        assert result.same_patterns(mine(table1_db, 2))

    def test_unknown_algorithm(self, table1_db):
        with pytest.raises(UnknownAlgorithmError):
            mine(table1_db, 2, algorithm="nope")

    def test_invalid_support(self, table1_db):
        with pytest.raises(InvalidParameterError):
            mine(table1_db, 0)

    def test_all_registered_algorithms_run(self, table1_db):
        reference = mine(table1_db, 2, algorithm="bruteforce")
        for name in available_algorithms():
            assert mine(table1_db, 2, algorithm=name).same_patterns(reference)


class TestRegistry:
    def test_available_contains_paper_algorithms(self):
        names = available_algorithms()
        for expected in (
            "disc-all",
            "dynamic-disc-all",
            "prefixspan",
            "pseudo",
            "gsp",
            "spade",
            "spam",
        ):
            assert expected in names

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(UnknownAlgorithmError, match="disc-all"):
            get_algorithm("unknown")

    def test_register_rejects_duplicates(self):
        def fake(members, delta):
            return {}

        register_algorithm("test-fake", fake)
        try:
            with pytest.raises(ValueError):
                register_algorithm("test-fake", fake)
            register_algorithm("test-fake", fake, replace=True)
        finally:
            from repro.mining import registry

            registry._REGISTRY.pop("test-fake", None)


class TestTable5Strategies:
    """Table 5 of the paper: the strategy matrix, encoded and asserted."""

    def test_paper_rows(self):
        from repro.mining.registry import (
            CANDIDATE_PRUNING,
            CUSTOMER_REDUCING,
            DATABASE_PARTITIONING,
            DISC,
            strategies_of,
        )

        assert strategies_of("gsp") == {CANDIDATE_PRUNING}
        assert strategies_of("spade") == {CANDIDATE_PRUNING, DATABASE_PARTITIONING}
        assert strategies_of("spam") == {CANDIDATE_PRUNING, DATABASE_PARTITIONING}
        assert strategies_of("prefixspan") == {
            CANDIDATE_PRUNING, DATABASE_PARTITIONING, CUSTOMER_REDUCING,
        }
        assert strategies_of("disc-all") == {
            CANDIDATE_PRUNING, DATABASE_PARTITIONING, CUSTOMER_REDUCING, DISC,
        }

    def test_only_disc_family_uses_disc(self):
        from repro.mining.registry import DISC, available_algorithms, strategies_of

        for name in available_algorithms():
            uses_disc = DISC in strategies_of(name)
            assert uses_disc == ("disc" in name), name

    def test_unknown_algorithm(self):
        from repro.exceptions import UnknownAlgorithmError
        from repro.mining.registry import strategies_of

        with pytest.raises(UnknownAlgorithmError):
            strategies_of("nope")


class TestMarkdownRendering:
    def test_markdown_table(self):
        from repro.bench.reporting import render_markdown

        text = render_markdown(["a", "b"], [[1, 2.5]], title="T")
        assert "### T" in text
        assert "| a | b |" in text
        assert "| 1 | 2.5 |" in text

    def test_experiment_markdown(self, capsys):
        from repro.cli import main

        assert main([
            "experiment", "table12", "--scale", "smoke", "--markdown",
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### table12")
        assert "|---" in out


class TestMineFilters:
    def test_closed_flag(self, table1_db):
        full = mine(table1_db, 2)
        closed = mine(table1_db, 2, closed=True)
        assert closed.patterns == full.closed_patterns()

    def test_maximal_flag(self, table1_db):
        full = mine(table1_db, 2)
        maximal = mine(table1_db, 2, maximal=True)
        assert maximal.patterns == full.maximal_patterns()

    def test_length_bounds(self, table1_db):
        from repro.core.sequence import seq_length

        result = mine(table1_db, 2, min_length=2, max_length=3)
        assert result.patterns
        assert all(2 <= seq_length(raw) <= 3 for raw in result.patterns)

    def test_closed_and_maximal_exclusive(self, table1_db):
        with pytest.raises(InvalidParameterError):
            mine(table1_db, 2, closed=True, maximal=True)

    def test_bad_length_bounds(self, table1_db):
        with pytest.raises(InvalidParameterError):
            mine(table1_db, 2, min_length=3, max_length=2)
        with pytest.raises(InvalidParameterError):
            mine(table1_db, 2, min_length=0)

    def test_filters_compose(self, table1_db):
        from repro.core.sequence import seq_length

        result = mine(table1_db, 2, maximal=True, min_length=4)
        full_maximal = mine(table1_db, 2).maximal_patterns()
        assert result.patterns == {
            raw: count for raw, count in full_maximal.items()
            if seq_length(raw) >= 4
        }
