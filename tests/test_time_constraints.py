"""Tests for GSP-style time constraints (repro.ext.time_constraints)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.sequence import all_k_subsequences, contains, parse, seq_length
from repro.exceptions import InvalidParameterError, InvalidSequenceError
from repro.ext.time_constraints import (
    TimeConstraints,
    TimedSequence,
    contains_timed,
    evenly_spaced_database,
    mine_timed,
)
from tests.conftest import random_database, random_sequence


class TestTimedSequence:
    def test_valid(self):
        ts = TimedSequence(parse("(a)(b)"), (0.0, 2.5))
        assert ts.times == (0.0, 2.5)

    def test_mismatched_lengths(self):
        with pytest.raises(InvalidSequenceError):
            TimedSequence(parse("(a)(b)"), (0.0,))

    def test_decreasing_times(self):
        with pytest.raises(InvalidSequenceError):
            TimedSequence(parse("(a)(b)"), (2.0, 1.0))

    def test_evenly_spaced(self):
        ts = TimedSequence.evenly_spaced(parse("(a)(b)(c)"), step=3.0)
        assert ts.times == (0.0, 3.0, 6.0)


class TestConstraintValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_size": -1},
            {"min_gap": -1},
            {"min_gap": 2, "max_gap": 2},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidParameterError):
            TimeConstraints(**kwargs).validate()


class TestContainsTimed:
    def test_defaults_equal_plain_containment(self):
        """window=0, min_gap=0 on strictly increasing times == plain."""
        rng = random.Random(171)
        for _ in range(60):
            raw = random_sequence(rng, max_transactions=5, max_itemset=2)
            ts = TimedSequence.evenly_spaced(raw)
            for k in range(1, min(4, seq_length(raw)) + 1):
                for pattern in all_k_subsequences(raw, k):
                    assert contains_timed(ts, pattern) == contains(raw, pattern)

    def test_window_merges_transactions(self):
        # (a) and (b) one time unit apart: a window of 1 hosts <(a, b)>.
        ts = TimedSequence(parse("(a)(b)"), (0.0, 1.0))
        assert not contains_timed(ts, parse("(a, b)"))
        assert contains_timed(ts, parse("(a, b)"), TimeConstraints(window_size=1.0))

    def test_window_respects_span(self):
        ts = TimedSequence(parse("(a)(c)(b)"), (0.0, 5.0, 10.0))
        assert not contains_timed(
            ts, parse("(a, b)"), TimeConstraints(window_size=9.0)
        )
        assert contains_timed(
            ts, parse("(a, b)"), TimeConstraints(window_size=10.0)
        )

    def test_min_gap_in_time_units(self):
        ts = TimedSequence(parse("(a)(b)"), (0.0, 3.0))
        assert contains_timed(ts, parse("(a)(b)"), TimeConstraints(min_gap=2.9))
        assert not contains_timed(ts, parse("(a)(b)"), TimeConstraints(min_gap=3.0))

    def test_max_gap_in_time_units(self):
        ts = TimedSequence(parse("(a)(b)(b)"), (0.0, 2.0, 9.0))
        assert contains_timed(
            ts, parse("(a)(b)"), TimeConstraints(max_gap=2.0)
        )
        # Backtracking: only the near b satisfies max_gap.
        assert not contains_timed(
            ts, parse("(a)(b)(b)"), TimeConstraints(max_gap=2.0)
        )
        assert contains_timed(
            ts, parse("(a)(b)(b)"), TimeConstraints(max_gap=9.0)
        )

    def test_gsp_max_gap_measured_start_to_end(self):
        """max_gap compares u_i against l_{i-1} — the *start* of the
        previous window — so a wide previous window tightens it."""
        # <(a, b)> needs window [0, 4]; next element at time 6:
        # u_2 - l_1 = 6 - 0 = 6 > 5 -> rejected despite 6 - 4 = 2.
        ts = TimedSequence(parse("(a)(b)(c)"), (0.0, 4.0, 6.0))
        c = TimeConstraints(window_size=4.0, max_gap=5.0)
        assert not contains_timed(ts, parse("(a, b)(c)"), c)
        assert contains_timed(
            ts, parse("(a, b)(c)"), TimeConstraints(window_size=4.0, max_gap=6.0)
        )

    def test_empty_pattern(self):
        ts = TimedSequence.evenly_spaced(parse("(a)"))
        assert contains_timed(ts, ())


class TestMineTimed:
    def test_defaults_equal_plain_mining(self):
        rng = random.Random(172)
        for _ in range(15):
            db = random_database(rng, max_customers=8)
            raws = list(db.sequences)
            delta = rng.randint(1, max(1, len(raws) // 2))
            timed = evenly_spaced_database(raws)
            assert mine_timed(timed, delta) == mine_bruteforce(
                db.members(), delta
            )

    def test_window_creates_new_patterns(self):
        # a and b never co-occur but are always 1 time unit apart.
        raws = [parse("(a)(b)")] * 3
        timed = evenly_spaced_database(raws)
        plain = mine_timed(timed, 3)
        windowed = mine_timed(timed, 3, TimeConstraints(window_size=1.0))
        assert parse("(a, b)") not in plain
        assert windowed[parse("(a, b)")] == 3

    def test_max_gap_removes_patterns(self):
        raws = [parse("(a)(c)(c)(b)")] * 3
        timed = evenly_spaced_database(raws)
        tight = mine_timed(timed, 3, TimeConstraints(max_gap=1.0))
        assert parse("(a)(b)") not in tight
        assert parse("(a)(c)") in tight

    def test_delta_validation(self):
        with pytest.raises(InvalidParameterError):
            mine_timed([], 0)
