"""Tests for the CloSpan-style closed miner (repro.ext.closed)."""

from __future__ import annotations

import random

import pytest

from repro.ext.closed import mine_closed
from repro.mining.api import mine
from repro.core.sequence import contains, parse
from repro.db.database import SequenceDatabase
from tests.conftest import random_database


class TestMineClosed:
    def test_matches_postprocessing_oracle_random(self):
        rng = random.Random(211)
        for _ in range(60):
            db = random_database(rng)
            delta = rng.randint(1, max(1, len(db)))
            oracle = mine(db, delta, closed=True).patterns
            assert mine_closed(db.members(), delta) == oracle

    def test_single_item_elements(self):
        """The dense single-item case CloSpan's pruning targets: long
        shared suffixes collapse to one closed pattern."""
        db = SequenceDatabase.from_texts(
            ["(a)(b)(c)(d)(e)"] * 4 + ["(x)(b)(c)(d)(e)"] * 4
        )
        closed = mine_closed(db.members(), 4)
        full = mine(db, 4)
        assert closed == full.closed_patterns()
        # <(b)(c)(d)(e)> is closed with support 8; its sub-patterns that
        # appear in all 8 sequences are absorbed.
        assert closed[parse("(b)(c)(d)(e)")] == 8
        assert parse("(c)(d)") not in closed

    def test_itemset_last_element_regression(self):
        """Regression for the itemset-sequence unsoundness of the naive
        CloSpan key: <(4)(3, 4)> must survive (see module docstring)."""
        db = SequenceDatabase.from_raw([
            [[4], [1, 3, 4], [2, 4], [2], [4]],
            [[1, 3, 4], [1, 3], [1], [2, 3, 4], [1]],
        ])
        closed = mine_closed(db.members(), 1)
        assert closed == mine(db, 1, closed=True).patterns
        assert parse("(d)(c, d)") in closed  # <(4)(3,4)> with a=1

    def test_closed_definition_holds(self):
        rng = random.Random(212)
        for _ in range(20):
            db = random_database(rng)
            delta = rng.randint(1, max(1, len(db) // 2))
            closed = mine_closed(db.members(), delta)
            for pattern, support in closed.items():
                assert not any(
                    other != pattern
                    and other_support == support
                    and contains(other, pattern)
                    for other, other_support in closed.items()
                )

    def test_on_quest_data(self):
        from repro.datagen import QuestParams, generate

        db = generate(
            QuestParams(ncust=100, slen=5, tlen=2.5, nitems=60, patlen=4,
                        npats=30, nlits=40, seed=26)
        )
        closed = mine_closed(db.members(), db.delta_for(0.1))
        oracle = mine(db, 0.1, closed=True)
        assert closed == oracle.patterns

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            mine_closed([], 0)

    def test_empty_database(self):
        assert mine_closed([], 2) == {}
