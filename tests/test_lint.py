"""Tests for the DISC-invariant lint engine (repro.analysis).

Covers the per-rule fixtures under ``tests/fixtures/lint/``, suppression
comments, the JSON reporter shape, the CLI exit codes — and the gate
itself: the engine must report zero findings over ``src/repro``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_sarif,
    render_text,
    rule_catalog,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint" / "repro"


def findings_of(path: Path) -> list[tuple[str, int]]:
    return [(f.rule_id, f.line) for f in lint_file(path)]


class TestGate:
    """The repo's own source must stay lint-clean (the pytest gate)."""

    def test_src_is_clean(self):
        findings, checked = lint_paths([SRC])
        assert checked > 50
        assert findings == [], "\n".join(f.render() for f in findings)


class TestRuleFixtures:
    def test_disc001_counting_in_loop(self):
        found = findings_of(FIXTURES / "core" / "disc.py")
        assert found == [("DISC001", 12), ("DISC001", 13)]

    def test_disc002_default_ordered_sorts(self):
        found = findings_of(FIXTURES / "core" / "bad_sort.py")
        assert found == [("DISC002", 9), ("DISC002", 10)]

    def test_disc003_canonical_mutation(self):
        found = findings_of(FIXTURES / "core" / "bad_mutation.py")
        assert [rule for rule, _ in found] == ["DISC003", "DISC003", "DISC003"]
        assert [line for _, line in found] == [11, 15, 16]

    def test_disc004_dataclass_slots(self):
        found = findings_of(FIXTURES / "core" / "bad_dataclass.py")
        assert found == [("DISC004", 11), ("DISC004", 16)]

    def test_disc005_silent_except(self):
        found = findings_of(FIXTURES / "mining" / "bad_except.py")
        assert [rule for rule, _ in found] == ["DISC005", "DISC005"]

    def test_service_layer_fixture(self):
        found = findings_of(FIXTURES / "service" / "bad_service.py")
        assert [rule for rule, _ in found] == ["DISC002", "DISC005"]
        assert found[0][1] == 11  # the default-ordered sort

    def test_disc006_stdout_telemetry(self):
        found = findings_of(FIXTURES / "core" / "bad_print.py")
        # the logging imports and both print() calls; the obs-API call
        # in between stays clean
        assert found == [
            ("DISC006", 8),
            ("DISC006", 9),
            ("DISC006", 13),
            ("DISC006", 17),
        ]

    def test_disc007_adhoc_fault_flags(self):
        found = findings_of(FIXTURES / "service" / "bad_faults.py")
        assert [rule for rule, _ in found] == ["DISC007"] * 5
        assert [line for _, line in found] == [9, 10, 14, 16, 18]

    def test_disc007_exempts_the_faults_module(self):
        source = (
            "import os\n"
            "TESTING = os.getenv('REPRO_FAULTS')\n"
            "if TESTING:\n"
            "    pass\n"
        )
        assert lint_source(source, path="repro/faults.py") == []
        assert lint_source(source, path="repro/core/x.py") != []

    def test_lint001_unknown_suppression_id(self):
        found = findings_of(FIXTURES / "core" / "bad_allow.py")
        # the typo'd id suppresses nothing: the sort fires AND is reported
        assert ("LINT001", 9) in found
        assert ("DISC002", 9) in found

    def test_clean_fixture(self):
        assert findings_of(FIXTURES / "core" / "clean.py") == []

    def test_suppressed_fixture(self):
        assert findings_of(FIXTURES / "core" / "suppressed.py") == []


class TestScoping:
    """Rules apply only inside their declared path scopes."""

    def test_disc002_ignores_out_of_scope_modules(self):
        source = "def f(xs):\n    return sorted(xs)\n"
        assert lint_source(source, path="repro/db/helper.py") == []
        in_scope = lint_source(source, path="repro/core/helper.py")
        assert [f.rule_id for f in in_scope] == ["DISC002"]

    def test_disc002_and_disc005_cover_the_service_layer(self):
        sort = "def f(xs):\n    return sorted(xs)\n"
        assert [f.rule_id for f in lint_source(sort, path="repro/service/x.py")] == [
            "DISC002"
        ]
        swallow = "def f(g):\n    try:\n        g()\n    except:\n        pass\n"
        found = lint_source(swallow, path="repro/service/x.py")
        assert "DISC005" in [f.rule_id for f in found]

    def test_disc001_applies_only_to_disc_modules(self):
        source = (
            "def f(entries, CountingArray):\n"
            "    while entries:\n"
            "        CountingArray(())\n"
            "        entries = entries[1:]\n"
        )
        assert lint_source(source, path="repro/core/dynamic.py") != []
        assert lint_source(source, path="repro/core/avl.py") == []

    def test_counting_outside_loop_is_sanctioned(self):
        source = (
            "def bilevel(group, CountingArray):\n"
            "    array = CountingArray(())\n"
            "    array.observe_all(group)\n"
            "    return array\n"
        )
        assert lint_source(source, path="repro/core/disc.py") == []


class TestSuppression:
    def test_same_line(self):
        source = "def f(xs):\n    return sorted(xs)  # repro: allow[DISC002]\n"
        assert lint_source(source, path="repro/core/x.py") == []

    def test_standalone_line_above(self):
        source = (
            "def f(xs):\n"
            "    # repro: allow[DISC002] — scalars\n"
            "    return sorted(xs)\n"
        )
        assert lint_source(source, path="repro/core/x.py") == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "def f(xs):\n    return sorted(xs)  # repro: allow[DISC005]\n"
        assert [f.rule_id for f in lint_source(source, path="repro/core/x.py")] == [
            "DISC002"
        ]

    def test_multiple_ids_in_one_comment(self):
        source = (
            "def f(xs):\n"
            "    return sorted(xs)  # repro: allow[DISC002, DISC005]\n"
        )
        assert lint_source(source, path="repro/core/x.py") == []

    def test_suppression_does_not_leak_to_other_lines(self):
        source = (
            "def f(xs):\n"
            "    a = sorted(xs)  # repro: allow[DISC002]\n"
            "    b = sorted(xs)\n"
            "    return a, b\n"
        )
        assert [(f.rule_id, f.line) for f in lint_source(source, path="repro/core/x.py")] == [
            ("DISC002", 3)
        ]


class TestEngineEdges:
    def test_syntax_error_is_a_finding(self):
        found = lint_source("def broken(:\n", path="repro/core/x.py")
        assert [f.rule_id for f in found] == ["LINT000"]

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            lint_source("x = 1\n", path="repro/core/x.py", rule_ids=["NOPE001"])

    def test_rule_selection_restricts_to_named_rules(self):
        source = "def f(xs):\n    return sorted(xs)\n"
        assert (
            lint_source(source, path="repro/core/x.py", rule_ids=["DISC004"]) == []
        )

    def test_catalog_has_documented_rules(self):
        catalog = rule_catalog()
        for rule_id in ("DISC001", "DISC002", "DISC003", "DISC004", "DISC005",
                        "DISC006", "DISC007", "LINT001"):
            assert rule_id in catalog
            assert catalog[rule_id].title
            assert catalog[rule_id].rationale


class TestReporters:
    def _findings(self) -> list[Finding]:
        return lint_file(FIXTURES / "core" / "bad_sort.py")

    def test_text_has_rule_id_and_position(self):
        found = self._findings()
        text = render_text(found, files_checked=1)
        assert "bad_sort.py:9:" in text
        assert "DISC002" in text
        assert "2 finding(s) in 1 file" in text

    def test_text_clean_summary(self):
        assert render_text([], files_checked=3) == "clean: 3 files, 0 findings"

    def test_json_shape(self):
        found = self._findings()
        payload = json.loads(render_json(found, files_checked=1))
        assert payload["format"] == "repro.lint-report"
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"DISC002": 2}
        assert len(payload["findings"]) == 2
        first = payload["findings"][0]
        assert set(first) == {"rule_id", "path", "line", "col", "message"}
        assert first["rule_id"] == "DISC002"
        assert first["line"] == 9

    def test_sarif_shape(self):
        found = self._findings()
        payload = json.loads(render_sarif(found, files_checked=1))
        assert payload["version"] == "2.1.0"
        assert "sarif-2.1.0" in payload["$schema"]
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rules = {rule["id"]: rule for rule in run["tool"]["driver"]["rules"]}
        assert "DISC002" in rules and "LINT000" in rules
        assert rules["DISC002"]["shortDescription"]["text"]
        result = run["results"][0]
        assert result["ruleId"] == "DISC002"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 9
        assert region["startColumn"] >= 1


class TestCli:
    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_violating_fixture_exits_nonzero(self, capsys):
        path = FIXTURES / "core" / "bad_sort.py"
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "DISC002" in out
        assert "bad_sort.py:9:" in out

    def test_every_violating_fixture_fails_the_cli(self):
        for name in ("core/disc.py", "core/bad_sort.py", "core/bad_mutation.py",
                     "core/bad_dataclass.py", "mining/bad_except.py",
                     "core/bad_allow.py", "core/bad_print.py",
                     "service/bad_service.py", "service/bad_faults.py"):
            assert main(["lint", str(FIXTURES / name)]) == 1, name

    def test_json_format(self, capsys):
        path = FIXTURES / "mining" / "bad_except.py"
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"DISC005": 2}

    def test_rules_filter(self, capsys):
        path = FIXTURES / "core" / "bad_sort.py"
        assert main(["lint", "--rules", "DISC004", str(path)]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DISC001" in out and "DISC005" in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "does/not/exist.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unparseable_file_exits_two(self, capsys):
        broken = REPO_ROOT / "tests" / "fixtures" / "check" / "broken"
        assert main(["lint", str(broken)]) == 2
        assert "LINT000" in capsys.readouterr().out

    def test_unknown_rule_id_exits_two(self, capsys):
        assert main(["lint", "--rules", "NOPE001", str(SRC)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_sarif_format(self, capsys):
        path = FIXTURES / "core" / "bad_sort.py"
        assert main(["lint", "--format", "sarif", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"][0]["ruleId"] == "DISC002"
