"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.db import io as dbio
from repro.db.database import SequenceDatabase


@pytest.fixture
def spmf_file(tmp_path, table1_db):
    path = tmp_path / "table1.spmf"
    dbio.write_spmf(table1_db, path)
    return str(path)


class TestGenerate:
    def test_writes_spmf(self, tmp_path, capsys):
        out = tmp_path / "g.spmf"
        code = main([
            "generate", "--ncust", "30", "--nitems", "20", "--npats", "10",
            "--seed", "4", "-o", str(out),
        ])
        assert code == 0
        assert "wrote 30 sequences" in capsys.readouterr().out
        assert len(dbio.read_spmf(out)) == 30

    def test_writes_paper_format(self, tmp_path):
        out = tmp_path / "g.txt"
        assert main([
            "generate", "--ncust", "10", "--nitems", "20", "--npats", "10",
            "-o", str(out),
        ]) == 0
        assert len(dbio.read_paper(out)) == 10

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.spmf", tmp_path / "b.spmf"
        args = ["generate", "--ncust", "15", "--nitems", "20", "--npats", "10",
                "--seed", "9"]
        main(args + ["-o", str(a)])
        main(args + ["-o", str(b)])
        assert a.read_text() == b.read_text()


class TestMine:
    def test_mines_and_prints(self, spmf_file, capsys):
        code = main(["mine", spmf_file, "--min-support", "0.5", "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "frequent sequences" in out
        assert "<(" in out

    def test_absolute_support(self, spmf_file, capsys):
        assert main(["mine", spmf_file, "--min-support", "2"]) == 0
        assert "delta=2" in capsys.readouterr().out

    def test_min_length_filter(self, spmf_file, capsys):
        main(["mine", spmf_file, "--min-support", "2", "--min-length", "3"])
        lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.strip().startswith(tuple("0123456789"))
        ]
        # each printed pattern has length >= 3 (count items inside <...>)
        for line in lines:
            pattern = line.split(None, 1)[1]
            n_items = pattern.count(",") + pattern.count(")(") + 1
            assert n_items >= 3

    def test_algorithm_choice(self, spmf_file, capsys):
        assert main([
            "mine", spmf_file, "--min-support", "2", "--algorithm", "spade",
        ]) == 0
        assert "spade" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["mine", "/nonexistent.spmf", "--min-support", "2"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.spmf"
        bad.write_text("1 -1\n")
        assert main(["mine", str(bad), "--min-support", "2"]) == 2
        assert "error" in capsys.readouterr().err


class TestMineObservability:
    def test_trace_prints_span_tree(self, spmf_file, capsys):
        assert main(["mine", spmf_file, "--min-support", "2", "--top", "1",
                     "--trace"]) == 0
        out = capsys.readouterr().out
        assert "phases:" in out
        assert "mine" in out
        assert "metrics:" in out

    def test_metrics_json_writes_valid_report(self, tmp_path, spmf_file, capsys):
        from repro.obs import RunReport

        target = tmp_path / "report.json"
        assert main(["mine", spmf_file, "--min-support", "2", "--top", "1",
                     "--metrics-json", str(target)]) == 0
        assert "wrote run report" in capsys.readouterr().out
        report = RunReport.from_json(target.read_text(encoding="utf-8"))
        assert report.spans[0].name == "mine"
        assert "post_filter" in report.phase_totals()

    def test_no_flags_no_report_output(self, spmf_file, capsys):
        assert main(["mine", spmf_file, "--min-support", "2", "--top", "1"]) == 0
        assert "phases:" not in capsys.readouterr().out

    def test_bench_writes_baseline_document(self, tmp_path, capsys):
        import json

        target = tmp_path / "bench.json"
        assert main(["bench", "--scale", "smoke", "-o", str(target)]) == 0
        assert "baseline runs" in capsys.readouterr().out
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["format"] == "repro.bench-baseline"
        assert payload["runs"]
        run = payload["runs"][0]
        assert {"algorithm", "minsup", "elapsed_seconds",
                "phase_seconds", "counters"} <= set(run)


class TestOtherCommands:
    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "disc-all" in out and "prefixspan" in out

    def test_stats(self, spmf_file, capsys):
        assert main(["stats", spmf_file]) == 0
        out = capsys.readouterr().out
        assert "sequences:            4" in out
        assert "max sequence length:  9" in out

    def test_paper_format_input(self, tmp_path, table1_db, capsys):
        path = tmp_path / "db.txt"
        dbio.write_paper(table1_db, path)
        assert main(["stats", str(path)]) == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCompareAndVerify:
    def test_compare_agreement(self, spmf_file, capsys):
        assert main([
            "compare", spmf_file, "--min-support", "2",
            "--algorithms", "disc-all", "spade",
        ]) == 0
        assert "agreement: OK" in capsys.readouterr().out

    def test_compare_detects_mismatch(self, spmf_file, capsys):
        from repro.mining import registry

        registry.register_algorithm(
            "test-broken", lambda members, delta: {}, replace=True
        )
        try:
            assert main([
                "compare", spmf_file, "--min-support", "2",
                "--algorithms", "test-broken",
            ]) == 1
            assert "MISMATCH" in capsys.readouterr().out
        finally:
            registry._REGISTRY.pop("test-broken", None)

    def test_verify_passes(self, spmf_file, capsys):
        assert main([
            "verify", spmf_file, "--min-support", "2", "--sample", "10",
        ]) == 0
        assert "verification OK" in capsys.readouterr().out


class TestTopkAndRules:
    def test_topk_command(self, spmf_file, capsys):
        assert main(["topk", spmf_file, "-k", "3"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert len(lines) == 3
        supports = [int(line.split()[0]) for line in lines]
        assert supports == sorted(supports, reverse=True)

    def test_topk_min_length(self, spmf_file, capsys):
        assert main(["topk", spmf_file, "-k", "5", "--min-length", "3"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            pattern = line.split(None, 1)[1]
            n_items = pattern.count(",") + pattern.count(")(") + 1
            assert n_items >= 3

    def test_rules_command(self, spmf_file, capsys):
        assert main([
            "rules", spmf_file, "--min-support", "2",
            "--min-confidence", "0.9", "--top", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "rules (conf >= 0.9)" in out
        assert "=>" in out


class TestStdinAndFormat:
    def test_mine_reads_spmf_from_stdin(self, table1_db, capsys, monkeypatch):
        import io

        buffer = io.StringIO()
        dbio.write_spmf(table1_db, buffer)
        monkeypatch.setattr("sys.stdin", io.StringIO(buffer.getvalue()))
        code = main(["mine", "-", "--format", "spmf", "--min-support", "2"])
        assert code == 0
        assert "frequent sequences" in capsys.readouterr().out

    def test_stats_reads_paper_from_stdin(self, table1_db, capsys, monkeypatch):
        import io

        buffer = io.StringIO()
        dbio.write_paper(table1_db, buffer)
        monkeypatch.setattr("sys.stdin", io.StringIO(buffer.getvalue()))
        assert main(["stats", "-", "--format", "paper"]) == 0
        assert "sequences:            4" in capsys.readouterr().out

    def test_stdin_without_format_is_an_error(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("1 -1 -2\n"))
        assert main(["mine", "-", "--min-support", "2"]) == 2
        assert "--format" in capsys.readouterr().err

    def test_format_overrides_suffix_dispatch(self, tmp_path, table1_db, capsys):
        # paper-format content under an .spmf suffix: the explicit flag
        # must win over the filename heuristic
        path = tmp_path / "mislabeled.spmf"
        dbio.write_paper(table1_db, path)
        code = main([
            "mine", str(path), "--format", "paper", "--min-support", "2",
        ])
        assert code == 0
        assert "frequent sequences" in capsys.readouterr().out

    def test_bad_format_value_is_a_usage_error(self, spmf_file):
        with pytest.raises(SystemExit):
            main(["mine", spmf_file, "--format", "csv", "--min-support", "2"])


class TestClusterCli:
    def test_mine_processes_flag(self, spmf_file, capsys):
        assert main([
            "mine", spmf_file, "--min-support", "2",
            "--algorithm", "disc-all-parallel", "--processes", "1",
        ]) == 0
        assert "disc-all-parallel" in capsys.readouterr().out

    def test_processes_requires_parallel_algorithm(self, spmf_file, capsys):
        assert main([
            "mine", spmf_file, "--min-support", "2", "--processes", "2",
        ]) == 2
        assert "disc-all-parallel" in capsys.readouterr().err

    def test_processes_must_be_positive(self, spmf_file, capsys):
        assert main([
            "mine", spmf_file, "--min-support", "2",
            "--algorithm", "disc-all-parallel", "--processes", "-3",
        ]) == 2
        assert ">= 1" in capsys.readouterr().err

    def test_coordinator_flag_requires_worker_role(self, capsys):
        assert main([
            "serve", "--role", "coordinator",
            "--coordinator", "http://127.0.0.1:1",
        ]) == 2
        assert "--role worker" in capsys.readouterr().err

    def test_advertise_requires_coordinator_flag(self, capsys):
        assert main([
            "serve", "--role", "worker",
            "--advertise", "http://127.0.0.1:1",
        ]) == 2
        assert "--coordinator" in capsys.readouterr().err

    def test_heartbeat_requires_coordinator_flag(self, capsys):
        assert main([
            "serve", "--role", "worker", "--heartbeat-seconds", "2",
        ]) == 2
        assert "--coordinator" in capsys.readouterr().err

    def test_worker_role_rejects_worker_urls(self, capsys):
        assert main([
            "serve", "--role", "worker", "--worker", "http://127.0.0.1:1",
        ]) == 2
        assert "coordinator" in capsys.readouterr().err

    def test_worker_urls_require_coordinator_role(self, capsys):
        assert main(["serve", "--worker", "http://127.0.0.1:1"]) == 2
        assert "--role coordinator" in capsys.readouterr().err

    def test_worker_role_rejects_databases(self, spmf_file, capsys):
        assert main(["serve", "--role", "worker", spmf_file]) == 2
        assert "holds no databases" in capsys.readouterr().err
