"""Tests for the mining service core (repro.service).

Covers the cooperative cancellation tokens, the content-digest database
registry, the LRU result cache (hit == fresh mine, invalidation on
re-register, budget eviction), the bounded scheduler (backpressure,
deadlines, cancellation, drain-on-close) and the MiningService that ties
them together.  The HTTP front-end has its own module
(``test_service_http.py``).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.cancel import (
    NEVER_CANCELLED,
    CancelToken,
    active_token,
    cancel_scope,
)
from repro.core.discall import disc_all
from repro.db.database import SequenceDatabase
from repro.exceptions import (
    InvalidParameterError,
    OperationCancelledError,
    UnknownAlgorithmError,
)
from repro.mining.api import mine
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    CacheKey,
    DatabaseRegistry,
    JobScheduler,
    MiningService,
    ResultCache,
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownDatabaseError,
    UnknownJobError,
    database_digest,
    freeze_options,
)

from tests.conftest import TABLE1_TEXTS


def make_db(texts: list[str]) -> SequenceDatabase:
    return SequenceDatabase.from_texts(texts)


#: Six customers sharing one long sequence: produces k>=4 patterns, so a
#: mine over it runs second-level discovery rounds (disc.rounds > 0).
DEEP_TEXTS = ["(1)(2)(3)(4)(5)(6)"] * 6


def metric_value(
    snapshot: dict[str, dict[str, object]], name: str, **labels: object
) -> object:
    for entry in snapshot.values():
        if entry["name"] == name and entry.get("labels", {}) == labels:
            return entry["value"]
    return 0


# -- cancellation tokens ------------------------------------------------------


class TestCancelToken:
    def test_fresh_token_is_live(self):
        token = CancelToken()
        assert not token.cancelled()
        token.checkpoint()  # no raise

    def test_cancel_first_reason_sticks(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled()
        assert token.reason == "first"
        with pytest.raises(OperationCancelledError, match="first"):
            token.checkpoint()

    def test_deadline_expiry_cancels(self):
        token = CancelToken.with_timeout(0.005)
        time.sleep(0.02)
        assert token.expired()
        with pytest.raises(OperationCancelledError, match="deadline"):
            token.checkpoint()
        assert "deadline" in token.reason

    def test_never_cancelled_is_inert(self):
        assert not NEVER_CANCELLED.cancelled()
        NEVER_CANCELLED.checkpoint()
        with pytest.raises(RuntimeError, match="shared default"):
            NEVER_CANCELLED.cancel()

    def test_scope_installs_and_restores(self):
        assert active_token() is NEVER_CANCELLED
        token = CancelToken()
        with cancel_scope(token):
            assert active_token() is token
        assert active_token() is NEVER_CANCELLED

    def test_disc_all_unwinds_at_checkpoint(self, table1_members):
        token = CancelToken()
        token.cancel("test abort")
        with cancel_scope(token):
            with pytest.raises(OperationCancelledError, match="test abort"):
                disc_all(table1_members, 2)

    def test_disc_all_unscoped_is_unaffected(self, table1_members):
        assert disc_all(table1_members, 2).patterns


# -- database registry --------------------------------------------------------


class TestDigestAndRegistry:
    def test_digest_depends_on_content_not_identity(self):
        a = make_db(TABLE1_TEXTS)
        b = make_db(TABLE1_TEXTS)
        assert database_digest(a) == database_digest(b)
        c = make_db(TABLE1_TEXTS[:2])
        assert database_digest(a) != database_digest(c)

    def test_digest_is_order_sensitive(self):
        a = make_db(TABLE1_TEXTS)
        b = make_db(list(reversed(TABLE1_TEXTS)))
        assert database_digest(a) != database_digest(b)

    def test_register_and_get_by_name_or_digest(self):
        registry = DatabaseRegistry()
        entry, replaced = registry.register("t1", make_db(TABLE1_TEXTS))
        assert replaced is None
        assert registry.get("t1") is entry
        assert registry.get(entry.digest) is entry
        assert len(registry) == 1

    def test_reregister_same_content_is_not_a_replace(self):
        registry = DatabaseRegistry()
        registry.register("t1", make_db(TABLE1_TEXTS))
        _, replaced = registry.register("t1", make_db(TABLE1_TEXTS))
        assert replaced is None

    def test_reregister_different_content_reports_old_digest(self):
        registry = DatabaseRegistry()
        first, _ = registry.register("t1", make_db(TABLE1_TEXTS))
        _, replaced = registry.register("t1", make_db(TABLE1_TEXTS[:2]))
        assert replaced == first.digest

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownDatabaseError):
            DatabaseRegistry().get("nope")

    def test_evict(self):
        registry = DatabaseRegistry()
        entry, _ = registry.register("t1", make_db(TABLE1_TEXTS))
        assert registry.evict("t1") is entry
        with pytest.raises(UnknownDatabaseError):
            registry.get("t1")
        with pytest.raises(UnknownDatabaseError):
            registry.evict("t1")


# -- result cache -------------------------------------------------------------


class TestResultCache:
    def key(self, n: int = 0, digest: str = "d") -> CacheKey:
        return CacheKey(digest, n, "disc-all", ())

    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(self.key()) is None
        cache.put(self.key(), "value")
        assert cache.get(self.key()) == "value"
        assert cache.misses == 1
        assert cache.hits == 1

    def test_lru_respects_budget(self):
        cache = ResultCache(2)
        cache.put(self.key(1), "a")
        cache.put(self.key(2), "b")
        cache.put(self.key(3), "c")
        assert len(cache) == 2
        assert cache.get(self.key(1)) is None  # oldest evicted
        assert cache.get(self.key(3)) == "c"

    def test_get_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put(self.key(1), "a")
        cache.put(self.key(2), "b")
        cache.get(self.key(1))  # 1 becomes most recent
        cache.put(self.key(3), "c")
        assert cache.get(self.key(2)) is None
        assert cache.get(self.key(1)) == "a"

    def test_zero_budget_disables_caching(self):
        cache = ResultCache(0)
        cache.put(self.key(), "value")
        assert cache.get(self.key()) is None
        assert len(cache) == 0

    def test_invalidate_digest_drops_only_that_digest(self):
        cache = ResultCache(8)
        cache.put(self.key(1, "aa"), "a1")
        cache.put(self.key(2, "aa"), "a2")
        cache.put(self.key(1, "bb"), "b1")
        assert cache.invalidate_digest("aa") == 2
        assert cache.get(self.key(1, "bb")) == "b1"
        assert cache.get(self.key(1, "aa")) is None

    def test_freeze_options_is_order_insensitive(self):
        assert freeze_options({"a": 1, "b": 2}) == freeze_options(
            {"b": 2, "a": 1}
        )
        assert freeze_options(None) == ()

    def test_freeze_options_rejects_unhashable(self):
        with pytest.raises(InvalidParameterError, match="hashable"):
            freeze_options({"bad": [1, 2]})


# -- scheduler ----------------------------------------------------------------


class TestScheduler:
    def test_runs_jobs_in_order(self):
        seen: list[object] = []
        scheduler = JobScheduler(
            lambda job: seen.append(job.request) or job.request,
            workers=1,
            queue_size=8,
        )
        try:
            jobs = [scheduler.submit(n) for n in range(4)]
            for job in jobs:
                scheduler.wait(job.id, timeout=10.0)
            assert seen == [0, 1, 2, 3]
            assert [job.result for job in jobs] == [0, 1, 2, 3]
            assert all(job.state == DONE for job in jobs)
        finally:
            scheduler.close()

    def test_backpressure_rejects_when_full(self):
        started = threading.Event()
        release = threading.Event()

        def runner(job):
            started.set()
            release.wait(10.0)
            return job.request

        scheduler = JobScheduler(runner, workers=1, queue_size=2)
        try:
            blocker = scheduler.submit("blocker")
            assert started.wait(10.0)
            scheduler.submit("q1")
            scheduler.submit("q2")
            with pytest.raises(ServiceOverloadedError, match="full"):
                scheduler.submit("q3")
            assert scheduler.queue_depth() == 2
        finally:
            release.set()
            scheduler.close()
        assert blocker.state == DONE

    def test_rejection_is_counted(self):
        from repro.obs import MetricsRegistry

        release = threading.Event()
        metrics = MetricsRegistry()
        scheduler = JobScheduler(
            lambda job: release.wait(10.0), workers=1, queue_size=1,
            metrics=metrics,
        )
        try:
            scheduler.submit("a")
            # the worker may or may not have popped "a" yet; fill until full
            rejected = 0
            for _ in range(3):
                try:
                    scheduler.submit("b")
                except ServiceOverloadedError:
                    rejected += 1
            assert rejected >= 1
            assert metrics.counter("service.rejected").value == rejected
        finally:
            release.set()
            scheduler.close()

    def test_deadline_cancels_running_job(self):
        def runner(job):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                time.sleep(0.005)
                active_token().checkpoint()
            return "never"

        scheduler = JobScheduler(runner, workers=1, queue_size=2)
        try:
            job = scheduler.submit("slow", deadline_seconds=0.05)
            scheduler.wait(job.id, timeout=10.0)
            assert job.state == CANCELLED
            assert job.error_code == "deadline"
        finally:
            scheduler.close()

    def test_deadline_expired_before_start(self):
        started = threading.Event()
        release = threading.Event()

        def runner(job):
            started.set()
            release.wait(10.0)
            return job.request

        scheduler = JobScheduler(runner, workers=1, queue_size=4)
        try:
            scheduler.submit("blocker")
            assert started.wait(10.0)
            doomed = scheduler.submit("late", deadline_seconds=0.01)
            time.sleep(0.05)
            release.set()
            scheduler.wait(doomed.id, timeout=10.0)
            assert doomed.state == CANCELLED
            assert doomed.error_code == "deadline"
            assert doomed.started_at is None  # never ran
        finally:
            release.set()
            scheduler.close()

    def test_cancel_queued_job(self):
        started = threading.Event()
        release = threading.Event()

        def runner(job):
            started.set()
            release.wait(10.0)
            return job.request

        scheduler = JobScheduler(runner, workers=1, queue_size=4)
        try:
            scheduler.submit("blocker")
            assert started.wait(10.0)
            queued = scheduler.submit("queued")
            assert queued.state == QUEUED
            scheduler.cancel(queued.id, "changed my mind")
            assert queued.state == CANCELLED
            assert queued.error == "changed my mind"
        finally:
            release.set()
            scheduler.close()

    def test_cancel_running_job_stops_at_checkpoint(self):
        started = threading.Event()

        def runner(job):
            started.set()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                time.sleep(0.005)
                active_token().checkpoint()
            return "never"

        scheduler = JobScheduler(runner, workers=1, queue_size=2)
        try:
            job = scheduler.submit("slow")
            assert started.wait(10.0)
            scheduler.cancel(job.id)
            scheduler.wait(job.id, timeout=10.0)
            assert job.state == CANCELLED
            assert job.error_code == "cancelled"
        finally:
            scheduler.close()

    def test_runner_errors_fail_the_job_not_the_worker(self):
        def runner(job):
            if job.request == "boom":
                raise ValueError("kaput")
            return job.request

        scheduler = JobScheduler(runner, workers=1, queue_size=4)
        try:
            bad = scheduler.submit("boom")
            good = scheduler.submit("fine")
            scheduler.wait(bad.id, timeout=10.0)
            scheduler.wait(good.id, timeout=10.0)
            assert bad.state == "failed"
            assert bad.error_code == "internal"
            assert "kaput" in bad.error
            assert good.state == DONE  # the worker survived
        finally:
            scheduler.close()

    def test_close_drains_queued_jobs(self):
        scheduler = JobScheduler(
            lambda job: job.request, workers=1, queue_size=16
        )
        jobs = [scheduler.submit(n) for n in range(8)]
        scheduler.close(drain=True, timeout=30.0)
        assert all(job.state == DONE for job in jobs)
        assert [job.result for job in jobs] == list(range(8))
        with pytest.raises(ServiceClosedError):
            scheduler.submit("late")

    def test_close_without_drain_cancels_queued(self):
        started = threading.Event()
        release = threading.Event()

        def runner(job):
            started.set()
            release.wait(10.0)
            return job.request

        scheduler = JobScheduler(runner, workers=1, queue_size=4)
        running = scheduler.submit("running")
        assert started.wait(10.0)
        queued = scheduler.submit("queued")
        scheduler.close(drain=False, timeout=0.2)
        assert queued.state == CANCELLED
        assert queued.error_code == "shutdown"
        release.set()
        scheduler.wait(running.id, timeout=10.0)
        assert running.state == DONE  # in-flight work was not lost

    def test_wait_timeout(self):
        release = threading.Event()
        scheduler = JobScheduler(
            lambda job: release.wait(10.0), workers=1, queue_size=2
        )
        try:
            job = scheduler.submit("slow")
            with pytest.raises(TimeoutError):
                scheduler.wait(job.id, timeout=0.05)
        finally:
            release.set()
            scheduler.close()

    def test_unknown_job_raises(self):
        scheduler = JobScheduler(lambda job: None, workers=1, queue_size=2)
        try:
            with pytest.raises(UnknownJobError):
                scheduler.get("j999999")
        finally:
            scheduler.close()

    def test_finished_jobs_are_pruned_beyond_history(self):
        scheduler = JobScheduler(
            lambda job: job.request, workers=1, queue_size=4, job_history=3
        )
        try:
            jobs = [scheduler.submit(n) for n in range(3)]
            for job in jobs:
                scheduler.wait(job.id, timeout=10.0)
            for n in range(3, 6):
                scheduler.wait(scheduler.submit(n).id, timeout=10.0)
            retained = scheduler.jobs()
            assert len(retained) == 3
            assert jobs[0].id not in [job.id for job in retained]
        finally:
            scheduler.close()


# -- the service --------------------------------------------------------------


@pytest.fixture
def service():
    svc = MiningService(workers=1, queue_size=8, cache_entries=16)
    yield svc
    svc.close(drain=True)


class TestMiningService:
    def test_mine_matches_direct_call(self, service):
        db = make_db(TABLE1_TEXTS)
        service.register_database("t1", db)
        job = service.submit_mine("t1", 2)
        job = service.wait(job.id, timeout=30.0)
        assert job.state == DONE
        outcome = job.result
        assert outcome.cached is False
        direct = mine(db, 2)
        assert outcome.result.patterns == direct.patterns

    def test_repeat_request_is_a_cache_hit(self, service):
        service.register_database("deep", make_db(DEEP_TEXTS))
        first = service.wait(service.submit_mine("deep", 4).id, timeout=30.0)
        snap = service.metrics_snapshot()
        rounds_before = metric_value(snap, "disc.rounds")
        assert rounds_before > 0  # the miss actually ran discovery rounds
        assert metric_value(snap, "service.cache_hits") == 0

        second = service.submit_mine("deep", 4)
        assert second.state == DONE  # finished synchronously, no queue
        assert second.result.cached is True
        assert second.result.result.patterns == first.result.result.patterns

        snap = service.metrics_snapshot()
        assert metric_value(snap, "service.cache_hits") == 1
        # served from cache: no new discovery rounds were merged in
        assert metric_value(snap, "disc.rounds") == rounds_before

    def test_distinct_thresholds_are_distinct_entries(self, service):
        service.register_database("t1", make_db(TABLE1_TEXTS))
        a = service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        b = service.wait(service.submit_mine("t1", 3).id, timeout=30.0)
        assert a.result.cached is False
        assert b.result.cached is False
        assert len(service.cache) == 2

    def test_fractional_and_absolute_support_share_the_entry(self, service):
        # 0.5 of 4 customers == absolute 2: same delta, same cache key
        service.register_database("t1", make_db(TABLE1_TEXTS))
        service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        repeat = service.submit_mine("t1", 0.5)
        assert repeat.state == DONE
        assert repeat.result.cached is True

    def test_reregister_modified_db_invalidates_cache(self, service):
        service.register_database("t1", make_db(TABLE1_TEXTS))
        service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        assert len(service.cache) == 1
        _, replaced = service.register_database("t1", make_db(TABLE1_TEXTS[:3]))
        assert replaced is True
        assert len(service.cache) == 0
        job = service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        assert job.result.cached is False
        snap = service.metrics_snapshot()
        assert metric_value(snap, "service.cache_invalidated") == 1

    def test_reregister_identical_db_keeps_cache(self, service):
        service.register_database("t1", make_db(TABLE1_TEXTS))
        service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        _, replaced = service.register_database("t1", make_db(TABLE1_TEXTS))
        assert replaced is False
        assert len(service.cache) == 1

    def test_unknown_database_and_algorithm(self, service):
        with pytest.raises(UnknownDatabaseError):
            service.submit_mine("nope", 2)
        service.register_database("t1", make_db(TABLE1_TEXTS))
        with pytest.raises(UnknownAlgorithmError):
            service.submit_mine("t1", 2, algorithm="nope")
        assert len(service.scheduler.jobs()) == 0  # nothing was queued

    def test_options_reach_the_miner(self, service):
        db = make_db(TABLE1_TEXTS)
        service.register_database("t1", db)
        job = service.wait(
            service.submit_mine(
                "t1", 2, algorithm="disc-all", options={"bilevel": False}
            ).id,
            timeout=30.0,
        )
        assert job.state == DONE
        assert job.result.result.patterns == mine(db, 2).patterns

    def test_health_reports_counts(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["databases"] == 0
        service.register_database("t1", make_db(TABLE1_TEXTS))
        service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        health = service.health()
        assert health == {
            "status": "ok",
            "role": "standalone",
            "databases": 1,
            "cache_entries": 1,
            "queue_depth": 0,
            "jobs": 1,
        }

    def test_close_reports_shutting_down(self):
        svc = MiningService(workers=1, queue_size=2, cache_entries=4)
        svc.close(drain=True)
        assert svc.health()["status"] == "shutting_down"
        with pytest.raises(ServiceClosedError):
            svc.register_database("t1", make_db(TABLE1_TEXTS))
            svc.submit_mine("t1", 2)

    def test_context_manager_drains(self):
        with MiningService(workers=1, queue_size=8, cache_entries=4) as svc:
            svc.register_database("t1", make_db(TABLE1_TEXTS))
            jobs = [svc.submit_mine("t1", n) for n in (1, 2, 3)]
        assert all(job.state == DONE for job in jobs)

    def test_partial_result_is_done_but_never_cached(self, service):
        service.register_database("deep", make_db(DEEP_TEXTS))
        job = service.submit_mine("deep", 2, deadline_seconds=0.0001)
        service.wait(job.id, timeout=30.0)
        assert job.state == DONE
        partial = job.result
        assert partial.result.complete is False
        snap = service.metrics_snapshot()
        assert metric_value(snap, "service.partial_results") == 1
        # A partial result must not poison the cache: the same request
        # without a deadline runs fresh and completes.
        again = service.wait(service.submit_mine("deep", 2).id, timeout=30.0)
        assert again.result.cached is False
        assert again.result.result.complete is True

    def test_retry_after_hint_is_bounded(self, service):
        hint = service.retry_after_hint()
        assert isinstance(hint, int)
        assert 1 <= hint <= 60
        service.register_database("t1", make_db(TABLE1_TEXTS))
        service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        assert 1 <= service.retry_after_hint() <= 60

    def test_job_latency_histogram_is_recorded(self, service):
        service.register_database("t1", make_db(TABLE1_TEXTS))
        service.wait(service.submit_mine("t1", 2).id, timeout=30.0)
        snap = service.metrics_snapshot()
        histogram = next(
            entry for entry in snap.values()
            if entry["name"] == "service.job_seconds"
        )
        assert histogram["type"] == "histogram"
        assert histogram["count"] == 1
