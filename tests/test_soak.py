"""Soak tests: moderate Quest workloads through every miner.

Heavier than the unit tests (a few seconds each) but still CI-friendly;
they exercise code paths the tiny random databases cannot reach —
multi-item flist entries, deep DISC rounds, real partition fan-out.
"""

from __future__ import annotations

import pytest

from repro.datagen import QuestParams, generate
from repro.mining.api import mine

WORKLOADS = {
    "sparse": QuestParams(
        ncust=150, slen=5, tlen=2.0, nitems=120, patlen=3, npats=60,
        nlits=80, seed=23,
    ),
    "dense": QuestParams(
        ncust=120, slen=5, tlen=3.5, nitems=60, patlen=5, npats=30,
        nlits=40, seed=24,
    ),
    "long-sequences": QuestParams(
        ncust=80, slen=10, tlen=2.0, nitems=100, patlen=4, npats=50,
        nlits=60, seed=25,
    ),
}

FAST_MINERS = (
    "disc-all", "disc-all-plain", "dynamic-disc-all", "multilevel-disc-all",
    "prefixspan", "pseudo", "spade", "spam",
)


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload(request):
    db = generate(WORKLOADS[request.param])
    minsup = 0.04 if request.param == "sparse" else 0.08
    reference = mine(db, minsup, algorithm="prefixspan")
    return db, minsup, reference


def test_reference_is_nontrivial(workload):
    _, _, reference = workload
    assert len(reference) > 50
    assert reference.max_length() >= 3


@pytest.mark.parametrize("algorithm", FAST_MINERS)
def test_all_miners_agree_on_quest_data(workload, algorithm):
    db, minsup, reference = workload
    result = mine(db, minsup, algorithm=algorithm)
    assert result.same_patterns(reference), result.difference(reference)


def test_verification_on_quest_data(workload):
    from repro.mining.verify import verify_patterns

    db, _, reference = workload
    report = verify_patterns(
        reference.patterns, list(db.sequences), reference.delta, sample=40
    )
    assert report.ok, report.errors


def test_nrr_profile_is_sane(workload):
    from repro.core.nrr import compute_nrr_profile

    db, _, reference = workload
    profile = compute_nrr_profile(reference.patterns, len(db)).averages()
    assert profile
    for level, value in profile.items():
        assert 0.0 < value <= 1.0, (level, value)
