"""Tests for NRR instrumentation (repro.core.nrr)."""

from __future__ import annotations

import pytest

from repro.core.nrr import NRRCollector, compute_nrr_profile
from repro.core.sequence import parse


class TestCollector:
    def test_record_formula(self):
        collector = NRRCollector()
        # eq. (2): mean of child/parent ratios.
        value = collector.record(1, 10, [5, 3, 2])
        assert value == pytest.approx((0.5 + 0.3 + 0.2) / 3)

    def test_no_children_not_sampled(self):
        collector = NRRCollector()
        assert collector.record(1, 10, []) is None
        assert collector.average(1) is None

    def test_zero_parent_not_sampled(self):
        collector = NRRCollector()
        assert collector.record(1, 0, [1]) is None

    def test_average_over_partitions(self):
        collector = NRRCollector()
        collector.record(2, 10, [10])  # NRR 1.0
        collector.record(2, 10, [5])  # NRR 0.5
        assert collector.average(2) == pytest.approx(0.75)

    def test_averages_and_max_level(self):
        collector = NRRCollector()
        collector.record(0, 100, [1])
        collector.record(3, 10, [10])
        assert set(collector.averages()) == {0, 3}
        assert collector.max_level == 3
        assert NRRCollector().max_level == -1


class TestProfile:
    def test_hand_computed_example(self):
        # DB of size 10; frequent: <(a)>:6, <(b)>:4, <(a)(b)>:3, <(a, b)>:2,
        # <(a)(b)(b)>:2.
        patterns = {
            parse("(a)"): 6,
            parse("(b)"): 4,
            parse("(a)(b)"): 3,
            parse("(a, b)"): 2,
            parse("(a)(b)(b)"): 2,
        }
        profile = compute_nrr_profile(patterns, 10).averages()
        # Level 0: children 6 and 4 over size 10 -> (0.6 + 0.4)/2 = 0.5
        assert profile[0] == pytest.approx(0.5)
        # Level 1: <(a)>'s children are <(a)(b)> (3) and <(a, b)> (2):
        # (0.5 + 1/3)/2; <(b)> has no children -> only one sample.
        assert profile[1] == pytest.approx((3 / 6 + 2 / 6) / 2)
        # Level 2: <(a)(b)> -> <(a)(b)(b)>: 2/3.
        assert profile[2] == pytest.approx(2 / 3)

    def test_prefix_relation_is_flat_prefix(self):
        # <(a, b)> is the parent of <(a, b)(c)> but NOT of <(a)(b)(c)>.
        patterns = {
            parse("(a)"): 5,
            parse("(a, b)"): 4,
            parse("(a, b)(c)"): 2,
        }
        profile = compute_nrr_profile(patterns, 10).averages()
        assert profile[2] == pytest.approx(0.5)

    def test_empty_patterns(self):
        profile = compute_nrr_profile({}, 10)
        assert profile.averages() == {}

    def test_deeper_levels_tend_to_one_on_rigid_data(self):
        """On data where every supporter of a pattern also supports its
        extension, deep NRR is exactly 1 (the paper's extreme case where
        partitioning is pure overhead)."""
        from repro.core.discall import disc_all

        members = [(i, parse("(a)(b)(c)(d)")) for i in range(1, 5)]
        patterns = disc_all(members, 2).patterns
        profile = compute_nrr_profile(patterns, 4).averages()
        for level in range(1, 4):
            assert profile[level] == pytest.approx(1.0)
