"""Property-based tests (hypothesis) on the core invariants.

These complement the seeded-random tests with shrinking, minimal
counterexamples, and coverage of degenerate shapes the seeded generators
rarely hit.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.avl import LocativeAVLTree
from repro.core.discall import disc_all
from repro.core.dynamic import dynamic_disc_all
from repro.core.keytable import SortedKeyTable
from repro.core.kminimum import (
    extension_pairs,
    min_extension,
    minimum_k_subsequence,
    minimum_k_subsequence_brute,
)
from repro.core.order import compare, sort_key
from repro.core.sequence import (
    all_k_subsequences,
    contains,
    flatten,
    k_prefix,
    parse,
    seq_length,
    unflatten,
)
from repro.db.database import SequenceDatabase
from repro.mining.api import mine

# -- strategies ----------------------------------------------------------------

items = st.integers(min_value=1, max_value=5)
transactions = st.frozensets(items, min_size=1, max_size=3).map(
    lambda s: tuple(sorted(s))
)
sequences = st.lists(transactions, min_size=1, max_size=4).map(tuple)
databases = st.lists(sequences, min_size=1, max_size=8)


# -- order properties ------------------------------------------------------------


@given(sequences, sequences)
def test_order_antisymmetric(a, b):
    assert compare(a, b) == -compare(b, a)


@given(sequences, sequences, sequences)
def test_order_transitive(a, b, c):
    trio = sorted([a, b, c], key=sort_key)
    assert compare(trio[0], trio[1]) <= 0
    assert compare(trio[1], trio[2]) <= 0
    assert compare(trio[0], trio[2]) <= 0


@given(sequences, sequences)
def test_order_total(a, b):
    assert compare(a, b) in (-1, 0, 1)
    assert (compare(a, b) == 0) == (flatten(a) == flatten(b))


@given(sequences)
def test_flatten_roundtrip(seq):
    assert unflatten(flatten(seq)) == seq


# -- k-minimum properties -----------------------------------------------------


@given(sequences, st.integers(min_value=1, max_value=4))
def test_kminimum_is_smallest_subsequence(seq, k):
    got = minimum_k_subsequence(seq, k)
    subs = all_k_subsequences(seq, k)
    if not subs:
        assert got is None
    else:
        assert got in subs
        assert all(flatten(got) <= flatten(sub) for sub in subs)


@given(sequences, st.integers(min_value=1, max_value=4))
def test_kminimum_fast_equals_brute(seq, k):
    assert minimum_k_subsequence(seq, k) == minimum_k_subsequence_brute(seq, k)


@given(sequences, st.integers(min_value=1, max_value=3))
def test_extension_pairs_sound_and_prefix_preserving(seq, k):
    for prefix in all_k_subsequences(seq, k):
        for pair in extension_pairs(seq, prefix):
            from repro.core.kminimum import build_extension

            grown = build_extension(prefix, pair)
            assert contains(seq, grown)
            assert k_prefix(grown, k) == prefix


@given(sequences)
def test_min_extension_is_contained(seq):
    for prefix in all_k_subsequences(seq, 1):
        grown = min_extension(seq, prefix)
        if grown is not None:
            assert contains(seq, grown)
            assert seq_length(grown) == 2


# -- miner equivalence ------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(databases, st.integers(min_value=1, max_value=4))
def test_all_miners_agree_with_oracle(raws, delta):
    members = list(enumerate(raws, start=1))
    expected = mine_bruteforce(members, delta)
    assert disc_all(members, delta).patterns == expected
    assert dynamic_disc_all(members, delta).patterns == expected
    db = SequenceDatabase(tuple(raws))
    for name in ("prefixspan", "pseudo", "gsp", "spade", "spam"):
        assert mine(db, delta, algorithm=name).patterns == expected


@settings(max_examples=30, deadline=None)
@given(databases, st.integers(min_value=1, max_value=3))
def test_monotonicity_in_delta(raws, delta):
    """Raising delta can only shrink the frequent set."""
    members = list(enumerate(raws, start=1))
    low = disc_all(members, delta).patterns
    high = disc_all(members, delta + 1).patterns
    assert set(high) <= set(low)
    for pattern, count in high.items():
        assert low[pattern] == count


@settings(max_examples=30, deadline=None)
@given(databases)
def test_every_sequence_supports_its_own_subpatterns(raws):
    """delta=1 mining finds exactly the union of all subsequences up to
    the frequency-1 threshold — in particular every single transaction's
    itemsets are present."""
    members = list(enumerate(raws, start=1))
    patterns = disc_all(members, 1).patterns
    for raw in raws:
        for txn in raw:
            assert ((txn[0],),) in patterns


# -- index structures --------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=60))
def test_index_backends_agree(ops):
    tree: LocativeAVLTree = LocativeAVLTree()
    table: SortedKeyTable = SortedKeyTable()
    for key, value in ops:
        tree.insert(key, value)
        table.insert(key, value)
    assert len(tree) == len(table)
    assert list(tree.items()) == list(table.items())
    for rank in range(1, len(table) + 1):
        assert tree.key_at_rank(rank) == table.key_at_rank(rank)
    tree.check_invariants()
    table.check_invariants()
    if ops:
        assert tree.pop_min_bucket() == table.pop_min_bucket()
        assert list(tree.items()) == list(table.items())


# -- database / generator --------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=3))
def test_quest_generator_is_deterministic_and_valid(ncust, seed):
    from repro.core.sequence import validate
    from repro.datagen import QuestParams, generate

    params = QuestParams(ncust=ncust, nitems=20, npats=10, slen=3, seed=seed)
    db1 = generate(params)
    db2 = generate(params)
    assert db1 == db2
    assert len(db1) == ncust
    for seq in db1:
        validate(seq)
