"""Unit tests for the k-sorted-database index backends.

The locative AVL tree (the paper's structure) and the array-backed
SortedKeyTable must behave identically; the parametrised tests exercise
both through the shared interface, and the AVL-specific tests check the
balance invariants.
"""

from __future__ import annotations

import random

import pytest

from repro.core.avl import LocativeAVLTree
from repro.core.keytable import SortedKeyTable

BACKENDS = [LocativeAVLTree, SortedKeyTable]


@pytest.fixture(params=BACKENDS, ids=["avl", "table"])
def index(request):
    return request.param()


class TestBasics:
    def test_empty(self, index):
        assert len(index) == 0
        assert not index
        with pytest.raises(KeyError):
            index.min_key()
        with pytest.raises(KeyError):
            index.pop_min_bucket()

    def test_insert_and_min(self, index):
        index.insert(5, "e")
        index.insert(3, "c")
        index.insert(7, "g")
        assert len(index) == 3
        assert index.min_key() == 3
        key, bucket = index.min_bucket()
        assert key == 3 and bucket == ["c"]

    def test_buckets_accumulate_in_order(self, index):
        index.insert(1, "first")
        index.insert(1, "second")
        assert len(index) == 2
        assert index.num_keys == 1
        assert index.get(1) == ["first", "second"]
        assert index.get(2) is None

    def test_iteration_sorted(self, index):
        for key in [4, 2, 9, 2, 7]:
            index.insert(key, key * 10)
        assert list(index.keys()) == [2, 4, 7, 9]
        assert list(index.entries()) == [20, 20, 40, 70, 90]
        assert [k for k, _ in index.items()] == [2, 4, 7, 9]


class TestRankSelection:
    def test_rank_counts_entries_not_keys(self, index):
        index.insert("a", 1)
        index.insert("a", 2)
        index.insert("b", 3)
        index.insert("b", 4)
        index.insert("b", 5)
        assert index.key_at_rank(1) == "a"
        assert index.key_at_rank(2) == "a"
        assert index.key_at_rank(3) == "b"
        assert index.key_at_rank(5) == "b"

    def test_rank_bounds(self, index):
        index.insert(1, "x")
        with pytest.raises(IndexError):
            index.key_at_rank(0)
        with pytest.raises(IndexError):
            index.key_at_rank(2)

    def test_rank_matches_sorted_order_random(self, index):
        rng = random.Random(31)
        entries = []
        for _ in range(300):
            key = rng.randint(0, 40)
            index.insert(key, key)
            entries.append(key)
        entries.sort()
        for rank in range(1, len(entries) + 1):
            assert index.key_at_rank(rank) == entries[rank - 1]


class TestRemoval:
    def test_pop_min_bucket(self, index):
        for key in [3, 1, 2, 1]:
            index.insert(key, key)
        key, bucket = index.pop_min_bucket()
        assert key == 1 and bucket == [1, 1]
        assert len(index) == 2
        assert index.min_key() == 2

    def test_pop_while_less(self, index):
        for key in [5, 1, 3, 7, 3]:
            index.insert(key, key)
        removed = index.pop_while_less(5)
        assert [k for k, _ in removed] == [1, 3]
        assert sum(len(b) for _, b in removed) == 3
        assert len(index) == 2
        assert index.min_key() == 5

    def test_pop_while_less_nothing(self, index):
        index.insert(5, "x")
        assert index.pop_while_less(5) == []
        assert len(index) == 1

    def test_interleaved_random_ops_match_reference(self, index):
        rng = random.Random(32)
        reference: list[tuple[int, int]] = []  # sorted (key, value)
        for step in range(400):
            op = rng.random()
            if op < 0.6 or not reference:
                key = rng.randint(0, 25)
                index.insert(key, step)
                reference.append((key, step))
                reference.sort(key=lambda kv: kv[0])
            elif op < 0.8:
                key, bucket = index.pop_min_bucket()
                expect = [v for k, v in reference if k == key]
                assert sorted(bucket) == sorted(expect)
                reference = [(k, v) for k, v in reference if k != key]
            else:
                bound = rng.randint(0, 25)
                removed = index.pop_while_less(bound)
                removed_keys = {k for k, _ in removed}
                assert removed_keys == {k for k, _ in reference if k < bound}
                reference = [(k, v) for k, v in reference if k >= bound]
            assert len(index) == len(reference)
            if reference:
                assert index.min_key() == reference[0][0]
            index.check_invariants()


class TestAVLSpecific:
    def test_balance_under_sorted_insertion(self):
        tree = LocativeAVLTree()
        for key in range(200):
            tree.insert(key, key)
        tree.check_invariants()
        # A balanced tree of 200 keys has height <= 1.44 log2(201) ~ 11.
        assert tree._root is not None and tree._root.height <= 11

    def test_balance_under_reverse_insertion(self):
        tree = LocativeAVLTree()
        for key in reversed(range(200)):
            tree.insert(key, key)
        tree.check_invariants()

    def test_invariant_checker_detects_corruption(self):
        tree = LocativeAVLTree()
        for key in [2, 1, 3]:
            tree.insert(key, key)
        tree._root.count = 99  # type: ignore[union-attr]
        with pytest.raises(AssertionError):
            tree.check_invariants()


class TestKeyTableSpecific:
    def test_invariant_checker_detects_corruption(self):
        table = SortedKeyTable()
        table.insert(1, "a")
        table._size = 5
        with pytest.raises(AssertionError):
            table.check_invariants()
