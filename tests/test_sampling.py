"""Tests for database sampling (repro.db.sampling)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.sequence import parse, support_count
from repro.db.sampling import (
    SupportEstimate,
    estimate_support,
    sample_customers,
    split_customers,
    _normal_quantile,
)
from repro.exceptions import InvalidParameterError
from tests.conftest import random_database


class TestSampleCustomers:
    def test_size_and_determinism(self, table1_db):
        sample = sample_customers(table1_db, 0.5, seed=1)
        assert len(sample) == 2
        again = sample_customers(table1_db, 0.5, seed=1)
        assert sample == again
        other = sample_customers(table1_db, 0.5, seed=2)
        # 4C2 = 6 subsets; different seeds usually differ (seed 1 vs 2 do).
        assert sample != other

    def test_full_fraction_identity(self, table1_db):
        assert sample_customers(table1_db, 1.0).sequences == table1_db.sequences

    def test_subset_of_original(self):
        rng = random.Random(201)
        for _ in range(10):
            db = random_database(rng, max_customers=10)
            sample = sample_customers(db, 0.4, seed=3)
            original = list(db.sequences)
            # Order-preserving subsequence of the originals.
            it = iter(original)
            assert all(any(seq == o for o in it) for seq in sample.sequences)

    @pytest.mark.parametrize("fraction", [0, -0.5, 1.5])
    def test_fraction_validation(self, table1_db, fraction):
        with pytest.raises(InvalidParameterError):
            sample_customers(table1_db, fraction)

    def test_vocabulary_shared(self):
        from repro.db.database import SequenceDatabase

        db = SequenceDatabase.from_itemsets([[["x"]], [["y"]], [["z"]]])
        assert sample_customers(db, 0.5).vocabulary is db.vocabulary


class TestSplitCustomers:
    def test_partition_property(self):
        rng = random.Random(202)
        for _ in range(10):
            db = random_database(rng, max_customers=12)
            if len(db) < 2:
                continue
            train, test = split_customers(db, 0.7, seed=4)
            assert len(train) + len(test) == len(db)
            assert len(train) >= 1 and len(test) >= 1
            combined = sorted(list(train.sequences) + list(test.sequences))
            assert combined == sorted(db.sequences)

    def test_determinism(self, table1_db):
        a = split_customers(table1_db, 0.5, seed=9)
        b = split_customers(table1_db, 0.5, seed=9)
        assert a[0] == b[0] and a[1] == b[1]

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -1, 2])
    def test_validation(self, table1_db, fraction):
        with pytest.raises(InvalidParameterError):
            split_customers(table1_db, fraction)


class TestEstimateSupport:
    def test_full_sample_is_exact(self, table1_db):
        pattern = parse("(a, g)(b)")
        estimate = estimate_support(table1_db, pattern, 1.0)
        true = support_count(table1_db.sequences, pattern) / len(table1_db)
        assert estimate.fraction == pytest.approx(true)
        assert estimate.low == estimate.high == estimate.fraction

    def test_interval_contains_truth_mostly(self):
        """~95% of 95% intervals must cover the true fraction."""
        rng = random.Random(203)
        from repro.db.database import SequenceDatabase

        # A 400-customer database where <(a)(b)> holds ~40% of the time.
        seqs = []
        for _ in range(400):
            seqs.append(parse("(a)(b)") if rng.random() < 0.4 else parse("(c)"))
        db = SequenceDatabase(seqs)
        pattern = parse("(a)(b)")
        truth = support_count(db.sequences, pattern) / len(db)
        covered = 0
        trials = 40
        for seed in range(trials):
            est = estimate_support(db, pattern, 0.25, seed=seed)
            if est.low <= truth <= est.high:
                covered += 1
        assert covered >= trials * 0.8  # loose: avoids flakiness

    def test_count_extrapolation(self):
        estimate = SupportEstimate(0.25, 0.2, 0.3, 100)
        assert estimate.count_in(1000) == pytest.approx(250.0)

    def test_confidence_validation(self, table1_db):
        with pytest.raises(InvalidParameterError):
            estimate_support(table1_db, parse("(a)"), 0.5, confidence=1.5)


class TestNormalQuantile:
    def test_known_values(self):
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)
        assert _normal_quantile(0.999) == pytest.approx(3.090232, abs=1e-3)

    def test_tails(self):
        assert _normal_quantile(1e-6) < -4
        assert _normal_quantile(1 - 1e-6) > 4

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            _normal_quantile(0.0)
