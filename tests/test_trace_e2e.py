"""End-to-end trace propagation and lifecycle narration.

The tentpole guarantee of the observability layer: ONE trace id follows
a job from the HTTP ``traceparent`` header through acceptance, queueing,
mining spans, checkpoints, a crash, recovery, and the resumed run — and
the structured event log replays that lifecycle in order.  Also covers
the Prometheus ``/metrics`` negotiation and the enriched job payload.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from io import StringIO

import pytest

from repro.db import io as dbio
from repro.db.database import SequenceDatabase
from repro.faults import FaultPlan, fault_plan
from repro.obs.events import EventLog, event_log, read_events, validate_event
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE
from repro.obs.trace_context import TraceContext
from repro.service import (
    JobJournal,
    MineOutcome,
    MiningService,
    RetryPolicy,
    replay_journal,
)
from repro.service.http import make_server

from tests.conftest import TABLE1_TEXTS, TABLE6_TEXTS

from tests.test_service_http import poll_job

DB_TEXTS = list(TABLE6_TEXTS.values())


def request_raw(method, url, payload=None, headers=None):
    """One round-trip returning ``(status, raw bytes, headers)``."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read(), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), exc.headers


def request_json(method, url, payload=None, headers=None):
    status, body, response_headers = request_raw(method, url, payload, headers)
    return status, json.loads(body.decode("utf-8")), response_headers


@pytest.fixture
def served():
    service = MiningService(workers=1, queue_size=8, cache_entries=16)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
        service.close(drain=False, timeout=10.0)


def register(base, name="t1", texts=TABLE1_TEXTS):
    buffer = StringIO()
    dbio.write_spmf(SequenceDatabase.from_texts(texts), buffer)
    status, body, _ = request_json(
        "POST", f"{base}/databases",
        {"name": name, "format": "spmf", "content": buffer.getvalue()},
    )
    assert status == 200, body
    return body


def assert_ordered_subsequence(names, expected):
    """Every name of *expected* occurs, in order, within *names*."""
    iterator = iter(names)
    for want in expected:
        for got in iterator:
            if got == want:
                break
        else:
            raise AssertionError(
                f"event {want!r} missing (in order) from {names}"
            )


class TestHttpTracePropagation:
    def test_traceparent_accepted_and_echoed(self, served):
        base, _ = served
        register(base)
        caller = TraceContext.mint()
        status, body, headers = request_json(
            "POST", f"{base}/mine",
            {"database": "t1", "min_support": 2},
            headers={"traceparent": caller.to_traceparent()},
        )
        assert status == 202, body
        assert body["trace_id"] == caller.trace_id
        echoed = TraceContext.from_traceparent(headers["traceparent"])
        assert echoed is not None and echoed.trace_id == caller.trace_id

        job = poll_job(base, body["job_id"])
        assert job["trace_id"] == caller.trace_id
        assert job["queue_wait_seconds"] >= 0
        assert job["run_seconds"] >= 0
        status, _, job_headers = request_json(
            "GET", f"{base}/jobs/{body['job_id']}"
        )
        assert caller.trace_id in job_headers["traceparent"]

    def test_malformed_traceparent_mints_a_fresh_trace(self, served):
        base, _ = served
        register(base)
        status, body, _ = request_json(
            "POST", f"{base}/mine",
            {"database": "t1", "min_support": 2},
            headers={"traceparent": "not-a-w3c-header"},
        )
        assert status == 202
        assert len(body["trace_id"]) == 32

    def test_cache_hit_answers_under_the_original_mining_trace(self, served):
        base, _ = served
        register(base)
        first = TraceContext.mint()
        _, submitted, _ = request_json(
            "POST", f"{base}/mine",
            {"database": "t1", "min_support": 2},
            headers={"traceparent": first.to_traceparent()},
        )
        done = poll_job(base, submitted["job_id"])
        assert done["trace_id"] == first.trace_id

        second = TraceContext.mint()
        status, hit, _ = request_json(
            "POST", f"{base}/mine",
            {"database": "t1", "min_support": 2},
            headers={"traceparent": second.to_traceparent()},
        )
        assert status == 200 and hit["cached"] is True
        # the cached result was mined under the FIRST trace; the hit
        # keeps pointing at the run that produced the bytes
        assert hit["trace_id"] == first.trace_id
        assert hit["trace_id"] != second.trace_id


class TestPrometheusNegotiation:
    def test_query_parameter_selects_prometheus(self, served):
        base, _ = served
        register(base)
        _, submitted, _ = request_json(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        poll_job(base, submitted["job_id"])
        status, body, headers = request_raw(
            "GET", f"{base}/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE service_cache_misses counter" in text
        assert "service_cache_misses 1" in text
        # labeled counters keep their labels, escaped and quoted
        assert 'service_jobs{state="done"} 1' in text
        # histograms render cumulative buckets with an +Inf terminal
        assert 'le="+Inf"' in text

    def test_accept_header_selects_prometheus(self, served):
        base, _ = served
        status, body, headers = request_raw(
            "GET", f"{base}/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert b"# TYPE" in body

    def test_default_remains_json(self, served):
        base, _ = served
        status, body, headers = request_json("GET", f"{base}/metrics")
        assert status == 200
        assert "application/json" in headers["Content-Type"]
        assert "metrics" in body

    def test_unknown_format_rejected(self, served):
        base, _ = served
        status, body, _ = request_json("GET", f"{base}/metrics?format=xml")
        assert status == 400
        assert body["error"]["code"] == "bad_parameter"


class TestRetryKeepsTrace:
    def test_injected_crash_retries_under_one_trace(self, tmp_path):
        db = SequenceDatabase.from_texts(DB_TEXTS)
        events_path = tmp_path / "events.jsonl"
        trace = TraceContext.mint()
        with event_log(EventLog(events_path)):
            service = MiningService(
                workers=1, retry_policy=RetryPolicy(max_retries=2)
            )
            service.register_database("demo", db)
            with fault_plan(FaultPlan.from_spec("worker.crash:1")):
                job = service.submit_mine("demo", 2, trace=trace)
                service.wait(job.id, timeout=60)
            assert job.state == "done"
            assert job.attempts == 2  # first attempt crashed, second won
            service.close()
        records = read_events(events_path)
        job_records = [r for r in records if r.get("job_id") == job.id]
        assert_ordered_subsequence(
            [r["event"] for r in job_records],
            ["job.accepted", "job.started", "job.retry", "job.started",
             "job.finished"],
        )
        # the injected fault is narrated under the same trace
        fault = next(r for r in records if r["event"] == "fault.injected")
        assert fault["trace_id"] == trace.trace_id
        assert all(r.get("trace_id") == trace.trace_id for r in job_records)
        assert all(validate_event(r) == [] for r in records)


class TestCrashRecoveryKeepsTrace:
    def test_one_trace_across_crash_and_resume(self, tmp_path):
        db = SequenceDatabase.from_texts(DB_TEXTS)
        journal_path = tmp_path / "jobs.jsonl"
        events_path = tmp_path / "events.jsonl"
        trace = TraceContext.mint()

        with event_log(EventLog(events_path)):
            # --- first life: accept, checkpoint, then "die" mid-job ---
            service = MiningService(workers=1, journal=JobJournal(journal_path))
            service.register_database("demo", db)
            with fault_plan(FaultPlan.from_spec("disc.partition:3+")):
                job = service.submit_mine("demo", 2, trace=trace)
                service.wait(job.id, timeout=60)
            service.close()
            # a SIGKILL never writes terminal records: erase them
            lines = [
                line
                for line in journal_path.read_text(encoding="utf-8").splitlines()
                if line.strip()
                and json.loads(line)["event"] not in ("finished",)
            ]
            journal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

            # --- second life: recover and finish under the same id ---
            service = MiningService(workers=1, journal=JobJournal(journal_path))
            service.register_database("demo", db)
            summary = service.recover()
            assert summary["resumed"] == 1
            recovered = service.job(job.id)
            assert recovered.trace is not None
            assert recovered.trace.trace_id == trace.trace_id
            service.wait(job.id, timeout=60)
            outcome = recovered.result
            assert isinstance(outcome, MineOutcome)
            assert outcome.result.complete

            # the resumed run's RunReport root span carries the trace id
            report = outcome.result.report
            assert report is not None
            assert report.spans[0].attrs["trace_id"] == trace.trace_id

            # journal replay health is exported as counters
            snapshot = service.metrics_snapshot()
            assert snapshot["service.journal_resumed"]["value"] == 1
            assert snapshot["service.journal_corrupt_lines"]["value"] == 0
            assert snapshot["service.journal_replayed_lines"]["value"] >= 2
            service.close()

        # every journal record of the job carries the one trace id
        entry = replay_journal(journal_path).entries[job.id]
        assert entry.trace_id == trace.trace_id

        # the event log replays the whole lifecycle, in order, on one trace
        records = read_events(events_path)
        assert all(validate_event(r) == [] for r in records)
        job_records = [r for r in records if r.get("job_id") == job.id]
        assert all(r.get("trace_id") == trace.trace_id for r in job_records)
        assert_ordered_subsequence(
            [r["event"] for r in job_records],
            ["job.accepted", "job.started", "job.checkpoint",
             "job.recovered", "job.accepted", "job.started", "job.finished"],
        )
        finished = [r for r in job_records if r["event"] == "job.finished"]
        assert finished[-1]["state"] == "done"
        replayed = next(r for r in records if r["event"] == "journal.replayed")
        assert replayed["resumed"] == 1
