"""Deterministic fault injection (repro.faults).

Spec parsing, hit/repeat/probability triggering, determinism under a
seed, arming scopes, and the environment entry point.
"""

from __future__ import annotations

import pytest

from repro.exceptions import InjectedFaultError, InvalidParameterError
from repro.faults import (
    ENV_SEED,
    ENV_SPEC,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    disarm,
    fault_plan,
    fault_point,
    parse_rule,
    plan_from_env,
)


class TestParseRule:
    def test_hit_count(self):
        rule = parse_rule("disc.round:3")
        assert rule == FaultRule("disc.round", hit=3)

    def test_repeat(self):
        rule = parse_rule("journal.fsync:2+")
        assert rule.hit == 2 and rule.repeat

    def test_probability(self):
        rule = parse_rule("worker.crash:p0.25")
        assert rule.probability == 0.25

    def test_whitespace_tolerated(self):
        assert parse_rule("  a.b : 1 ").site == "a.b"

    @pytest.mark.parametrize(
        "text",
        ["", "nosep", ":3", "site:", "site:zero", "site:pxyz", "site:0",
         "site:-1", "site:p0", "site:p1.5"],
    )
    def test_malformed_rules(self, text):
        with pytest.raises(InvalidParameterError):
            parse_rule(text)


class TestFaultPlan:
    def test_nth_hit_fires_once(self):
        plan = FaultPlan.from_spec("s:2")
        plan.check("s")
        with pytest.raises(InjectedFaultError, match="hit 2"):
            plan.check("s")
        plan.check("s")  # hit 3: silent again
        assert plan.hits() == {"s": 3}
        assert plan.fired() == {"s": 1}

    def test_repeat_fires_from_n_on(self):
        plan = FaultPlan.from_spec("s:2+")
        plan.check("s")
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                plan.check("s")
        assert plan.fired() == {"s": 3}

    def test_unarmed_site_is_silent(self):
        plan = FaultPlan.from_spec("other:1")
        plan.check("s")  # not armed: neither counted nor raised
        assert plan.hits() == {}
        assert plan.fired() == {}

    def test_probability_is_deterministic_per_seed(self):
        def firing_pattern(seed: int) -> list[bool]:
            plan = FaultPlan.from_spec("s:p0.5", seed=seed)
            fired = []
            for _ in range(50):
                try:
                    plan.check("s")
                    fired.append(False)
                except InjectedFaultError:
                    fired.append(True)
            return fired

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)
        assert any(firing_pattern(7)) and not all(firing_pattern(7))

    def test_duplicate_site_rejected(self):
        with pytest.raises(InvalidParameterError, match="duplicate"):
            FaultPlan.from_spec("s:1,s:2")

    def test_empty_spec_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.from_spec("  , ,")

    def test_multi_rule_spec(self):
        plan = FaultPlan.from_spec("a:1, b:p0.5, c:3+")
        assert plan.sites == ("a", "b", "c")


class TestArming:
    def test_disarmed_fault_point_is_inert(self):
        disarm()
        fault_point("anything")  # no plan, no effect

    def test_context_manager_scopes_the_plan(self):
        disarm()
        with fault_plan(FaultPlan.from_spec("s:1")) as plan:
            assert active_plan() is plan
            with pytest.raises(InjectedFaultError):
                fault_point("s")
        assert active_plan() is None
        fault_point("s")  # disarmed again

    def test_nested_plans_restore_the_outer(self):
        outer = FaultPlan.from_spec("a:1")
        inner = FaultPlan.from_spec("b:1")
        with fault_plan(outer):
            with fault_plan(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_explicit_arm_disarm(self):
        plan = FaultPlan.from_spec("s:1")
        arm(plan)
        try:
            assert active_plan() is plan
        finally:
            disarm()
        assert active_plan() is None


class TestEnvironment:
    def test_unset_means_no_plan(self):
        assert plan_from_env({}) is None
        assert plan_from_env({ENV_SPEC: "  "}) is None

    def test_spec_and_seed(self):
        plan = plan_from_env({ENV_SPEC: "s:p0.5", ENV_SEED: "42"})
        assert plan is not None
        assert plan.sites == ("s",)
        assert plan.seed == 42

    def test_bad_seed_raises(self):
        with pytest.raises(InvalidParameterError, match=ENV_SEED):
            plan_from_env({ENV_SPEC: "s:1", ENV_SEED: "many"})

    def test_bad_spec_raises(self):
        with pytest.raises(InvalidParameterError):
            plan_from_env({ENV_SPEC: "s:"})
