"""Violating fixture: silent exception handling in mining code.

Expected findings: DISC005 at the bare except and at the silent-pass
handler; the re-raising handler is clean.
"""


def count_safely(miner, members):
    try:
        return miner(members)
    except:
        return {}


def count_quietly(miner, members):
    try:
        return miner(members)
    except ValueError:
        pass
    except KeyError as exc:
        raise RuntimeError("mining failed") from exc
