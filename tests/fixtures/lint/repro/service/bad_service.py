"""Violating fixture: service-layer code breaking DISC002 and DISC005.

Expected findings: DISC002 at the default-ordered sort over cached
pattern keys, DISC005 at the silent-pass handler that would leave a job
stuck in RUNNING forever.  The keyed sort and re-raising handler below
are clean.
"""


def ranked_cache_keys(cache):
    return sorted(cache.keys())


def run_job_quietly(job, runner):
    try:
        job.result = runner(job)
    except RuntimeError:
        pass
    except ValueError as exc:
        raise RuntimeError("job failed") from exc


def ranked_cache_keys_ok(cache, sort_key):
    return sorted(cache.keys(), key=sort_key)
