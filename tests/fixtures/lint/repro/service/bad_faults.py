"""DISC007 fixture: ad-hoc failure injection instead of repro.faults.

Every branch below ships test-only control flow that repro.faults would
make deterministic, enumerable and provably inert when disarmed.
"""

import os

TESTING = bool(os.environ.get("SERVICE_TESTING"))  # line 9: env probe
ENABLE_FAULTS = os.getenv("ENABLE_FAULTS") == "1"  # line 10: env probe


def run_job(job):
    if TESTING:  # line 14: ad-hoc flag branch
        raise RuntimeError("simulated crash")
    if ENABLE_FAULTS and job.retries == 0:  # line 16: ad-hoc flag branch
        raise RuntimeError("simulated first-attempt failure")
    chaos = os.environ["CHAOS_MODE"]  # line 18: env probe
    return job.run(chaos)
