"""Violating fixture: a suppression naming an unknown rule id.

Expected findings: LINT001 at the comment line (the typo'd id
suppresses nothing).
"""


def order_levels(levels):
    return sorted(levels)  # repro: allow[DISC999]
