"""Violating fixture: support counting inside the DISC discovery loop.

Expected findings: DISC001 at the CountingArray construction and at the
.observe_all() call (both inside the while loop).  Never imported by the
tests — only parsed by the lint engine.
"""


def discover(entries, delta, CountingArray):
    supports = {}
    while len(entries) >= delta:
        array = CountingArray(())
        array.observe_all(entries)
        supports.update(array.counts())
        entries = entries[1:]
    return supports
