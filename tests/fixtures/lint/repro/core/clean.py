"""Clean fixture: idiomatic core/ code that satisfies every rule.

Expected findings: none.
"""

from dataclasses import dataclass

RawSequence = tuple


@dataclass(frozen=True, slots=True)
class Candidate:
    seq: "RawSequence"
    support: int


def rank(candidates, sort_key):
    return sorted(candidates, key=sort_key)


def extend(seq: RawSequence, item: int) -> RawSequence:
    return seq + ((item,),)
