"""Violating fixture: core/ dataclasses without slots=True.

Expected findings: DISC004 on Entry (bare decorator) and on Record
(call decorator without slots); Packed is clean.
"""

from dataclasses import dataclass


@dataclass
class Entry:
    cid: int


@dataclass(frozen=True)
class Record:
    cid: int
    count: int


@dataclass(frozen=True, slots=True)
class Packed:
    cid: int
