"""Violating fixture: stdout/logging telemetry in core/.

Expected findings: DISC006 at the logging import, at both print() calls
(the bare one and the one nested in a loop), and at the ``from logging``
import; the obs-API call below is clean.
"""

import logging
from logging import getLogger


def mine_partition(group, active):
    print("mining", len(group))
    metrics = active().metrics
    metrics.counter("partition.first_level").add(1)
    for member in group:
        print(member)
    logging.info("done")
    return getLogger(__name__)
