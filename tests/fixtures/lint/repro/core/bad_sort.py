"""Violating fixture: default-ordered sorts over sequences in core/.

Expected findings: DISC002 at the sorted() call and at the .sort() call;
the keyed sort below is clean.
"""


def order_patterns(patterns, sort_key):
    ranked = sorted(patterns)
    patterns.sort()
    keyed = sorted(patterns, key=sort_key)
    return ranked, keyed
