"""Violating fixture: in-place mutation of canonical sequence values.

Expected findings: DISC003 at the .append() call, at the item
assignment, and at the module-level item assignment below.
"""

RawSequence = tuple
FlatSequence = tuple

PATTERN: RawSequence = ((1,), (2,))
PATTERN[0] = (3,)


def grow(seq: RawSequence, flat: "FlatSequence", item: int) -> RawSequence:
    seq.append((item,))
    flat[0] = (item, 1)
    rebuilt = seq + ((item,),)
    return rebuilt
