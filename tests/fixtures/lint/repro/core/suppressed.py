"""Clean fixture: every violation carries a suppression comment.

Expected findings: none — same-line and standalone-comment suppressions
both apply, including through a multi-line comment block.
"""


def order_levels(levels, histogram):
    ranked = sorted(levels)  # repro: allow[DISC002]
    # repro: allow[DISC002] — scalar ints, not sequences
    histogram.sort()
    # repro: allow[DISC002] — suppression propagates through a
    # multi-line explanation onto the first code line below
    return sorted(histogram), ranked
