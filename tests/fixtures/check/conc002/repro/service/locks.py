"""CONC002 fixture: two lock pairs acquired in opposite orders."""

import threading


class Deadlocker:
    """a -> b lexically, b -> a through a call made under the lock."""

    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:
                return 1

    def backward(self):
        with self._b:
            return self._locked_a()

    def _locked_a(self):
        with self._a:
            return 2


class SuppressedDeadlocker:
    """The same cycle, with the reported edge suppressed."""

    def __init__(self):
        self._c = threading.Lock()
        self._d = threading.Lock()

    def forward(self):
        with self._c:
            # repro: allow[CONC002] — demonstration fixture
            with self._d:
                return 1

    def backward(self):
        with self._d:
            with self._c:
                return 2
