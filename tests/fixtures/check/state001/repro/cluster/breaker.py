"""STATE001 fixture: a breaker taking an undeclared transition."""

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    def __init__(self) -> None:
        self._state = CLOSED

    def misbehave(self) -> None:
        if self._state == CLOSED:
            self._state = HALF_OPEN

    def misbehave_quietly(self) -> None:
        if self._state == CLOSED:
            self._state = HALF_OPEN  # repro: allow[STATE001]

    def trip(self) -> None:
        if self._state == CLOSED:
            self._state = OPEN
