def broken(:
    return None
