"""Callgraph fixture: methods, inheritance and super() dispatch."""


class Base:
    def greet(self) -> str:
        return "base"

    def call_greet(self) -> str:
        return self.greet()


class Child(Base):
    def greet(self) -> str:
        return "child"

    def super_greet(self) -> str:
        return super().greet()
