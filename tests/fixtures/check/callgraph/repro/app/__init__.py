"""Callgraph fixture package: re-exports the util helper."""

from repro.app.util import helper

__all__ = ["helper"]
