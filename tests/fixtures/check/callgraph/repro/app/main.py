"""Callgraph fixture: aliased imports, typed receivers, dynamic calls."""

import repro.app.util as u
from repro.app import helper as h
from repro.app.models import Child


def run() -> int:
    child = Child()
    child.greet()
    return h() + u.twice()


def dynamic(factory):
    fn = factory()
    return fn()
