"""Callgraph fixture: module-level functions."""


def helper() -> int:
    return 1


def twice() -> int:
    return helper() + helper()
