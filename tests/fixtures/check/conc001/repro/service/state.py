"""CONC001 fixture: guarded-by discipline, good and bad."""

import threading


class Store:
    """One guarded attribute, accessed every way the rule judges."""

    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # guarded-by: _lock

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def flush(self):
        with self._lock:
            return self._drain_locked()

    def _drain_locked(self):
        drained = list(self._items)
        self._items.clear()
        return drained

    def size(self):
        return len(self._items)

    def peek(self):
        return self._items[-1]  # repro: allow[CONC001]


class Unannotated:
    """Constructs a lock but declares nothing guarded: the meta-check."""

    def __init__(self):
        self._mutex = threading.Lock()
        self._count = 0

    def bump(self):
        with self._mutex:
            self._count += 1
