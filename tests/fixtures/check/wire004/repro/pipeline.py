"""WIRE004 fixture: metric sites outside the declared registry."""

from repro.obs.metrics import MetricsRegistry


def record(registry: MetricsRegistry) -> None:
    registry.counter("made.up.metric").add(1)
    registry.counter("also.made.up").add(1)  # repro: allow[WIRE004]
    registry.counter("disc.comparisons").add(1)
