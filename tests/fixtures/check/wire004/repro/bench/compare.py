"""WIRE004 fixture: the invariant gate names an undeclared metric."""

_INVARIANT = (
    "disc.comparisons",
    "disc.lemma1_frequent",
    "disc.lemma2_prunes",
    "made.up.metric",
)
