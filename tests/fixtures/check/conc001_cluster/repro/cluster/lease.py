"""CONC001 fixture (cluster scope): a lease table with a leaky read."""

import threading


class LeaseTable:
    """Membership-style worker records guarded by one table lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._records = {}  # guarded-by: _lock
        self._generations = 0  # guarded-by: _lock

    def register(self, url):
        with self._lock:
            self._generations += 1
            self._records[url] = self._generations

    def drop(self, url):
        with self._lock:
            self._records.pop(url, None)

    def snapshot(self):
        with self._lock:
            return dict(self._records)

    def generation(self, url):
        return self._records.get(url)
