"""FLOW001 fixture: handlers raising mapped and unmapped errors."""

from repro.service.errors import (
    MappedError,
    SuppressedError,
    UnmappedError,
)

_ERROR_STATUS = (
    (MappedError, 404, "missing"),
)


class Handler:
    def do_GET(self):
        self._lookup()
        self._explode()
        self._quiet()

    def _lookup(self):
        raise MappedError("mapped: has a status row")

    def _explode(self):
        raise UnmappedError("no status row: surfaces as a bare 500")

    def _quiet(self):
        raise SuppressedError("acknowledged")  # repro: allow[FLOW001]


def unreachable_helper():
    raise UnmappedError("not reachable from any do_* handler")
