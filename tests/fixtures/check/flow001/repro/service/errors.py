"""FLOW001 fixture: a mini Repro error hierarchy."""


class ReproError(Exception):
    """Base of every service-visible error."""


class MappedError(ReproError):
    """Has an _ERROR_STATUS row."""


class UnmappedError(ReproError):
    """Reachable from a handler, no status mapping: the violation."""


class SuppressedError(ReproError):
    """Unmapped too, but its raise carries an allow comment."""
