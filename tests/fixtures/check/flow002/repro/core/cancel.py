"""FLOW002 fixture: the cancel-token vocabulary."""


class CancelToken:
    def checkpoint(self) -> None:
        return None


def active_token() -> CancelToken:
    return CancelToken()
