"""FLOW002 fixture: loops with and without a reachable checkpoint."""

from repro.core.cancel import CancelToken, active_token


def polite(items: list[int]) -> int:
    token = active_token()
    total = 0
    for item in items:
        token.checkpoint()
        total += item
    return total


def indirect(items: list[int]) -> int:
    token = active_token()
    total = 0
    for item in items:
        total += _step(token, item)
    return total


def _step(token: CancelToken, item: int) -> int:
    token.checkpoint()
    return item


def rude(items: list[int]) -> int:
    total = 0
    for item in items:
        total += item
    return total


def acknowledged(items: list[int]) -> int:
    total = 0
    # repro: allow[FLOW002] — demonstration fixture
    for item in items:
        total += item
    return total
