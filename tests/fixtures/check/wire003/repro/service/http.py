"""WIRE003 fixture: an _ERROR_STATUS table drifted from the taxonomy."""

_ERROR_STATUS = (
    (ServiceOverloadedError, 429, "overloaded"),
    (ServiceClosedError, 503, "shutting_down"),
    (UnknownDatabaseError, 404, "unknown_database"),
    (UnknownJobError, 404, "unknown_job"),
    (UnknownWorkerError, 404, "unknown_worker"),
    (UnknownAlgorithmError, 400, "unknown_algorithm"),
    (DataFormatError, 500, "bad_database"),
    (InvalidParameterError, 400, "bad_parameter"),
    (ReproError, 400, "error"),
    (TeapotError, 418, "teapot"),  # repro: allow[WIRE003]
)
