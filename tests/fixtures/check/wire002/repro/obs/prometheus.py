"""WIRE002 fixture: a renderer reading keys outside the metrics schema."""


def render_prometheus(snapshot):
    lines = []
    for entry in snapshot.get("metrics", []):
        kind = entry.get("type")
        lines.append((kind, entry.get("name"), entry.get("valuex")))
        lines.append(entry.get("countx"))  # repro: allow[WIRE002]
    return lines
