"""Manifest marker: opts this fixture tree into the WIRE rule gates."""
