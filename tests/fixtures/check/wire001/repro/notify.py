"""WIRE001 fixture: emit sites checked against the event vocabulary."""

from repro.obs.events import emit


def announce(job_id: str) -> None:
    emit("job.acceptedx", job_id=job_id)
    emit("job.accepted", job_id=job_id, flavour="vanilla")
    emit("job.acceptedx", job_id=job_id)  # repro: allow[WIRE001]


def well_formed(job_id: str) -> None:
    emit("job.accepted", job_id=job_id, database="synthetic")
