"""HOT001 fixture: discovery loops, hygienic and not."""

from repro.obs.metrics import MetricsRegistry


def hot_loop(items: list[int], registry: MetricsRegistry) -> int:
    total = 0
    handle = registry.counter("disc.rounds")
    while items:
        handle.add(1)
        registry.counter("disc.steps").add(1)
        total += items.pop()
    return total


def acknowledged_loop(items: list[int], registry: MetricsRegistry) -> int:
    total = 0
    while items:
        registry.counter("disc.steps").add(1)  # repro: allow[HOT001]
        total += items.pop()
    return total
