"""HOT001 fixture: a mini metrics vocabulary (handles + registry)."""


class Counter:
    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class MetricsRegistry:
    def __init__(self) -> None:
        self._metrics: dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name)
            self._metrics[name] = metric
        return metric
