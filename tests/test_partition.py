"""Unit tests for multi-level partitioning (repro.core.partition)."""

from __future__ import annotations

import random

import pytest

from repro.core.counting import CountingArray, count_frequent_items
from repro.core.partition import (
    PartitionQueue,
    first_level_partitions,
    iterate_first_level,
    iterate_second_level,
    minimum_item,
    minimum_point,
    next_minimum_item,
    reduce_sequence,
)
from repro.core.sequence import contains, parse, seq_length
from repro.baselines.bruteforce import mine_bruteforce
from tests.conftest import random_database


class TestMinimumHelpers:
    def test_minimum_item(self):
        assert minimum_item(parse("(c)(b, d)")) == 2

    def test_next_minimum_item(self):
        raw = parse("(c)(b, d)")
        assert next_minimum_item(raw, 2) == 3
        assert next_minimum_item(raw, 3) == 4
        assert next_minimum_item(raw, 4) is None

    def test_minimum_point(self):
        raw = parse("(c)(b, d)(b)")
        assert minimum_point(raw, 2) == 1
        assert minimum_point(raw, 3) == 0
        with pytest.raises(ValueError):
            minimum_point(raw, 9)


class TestPartitionQueue:
    def test_ascending_iteration_with_reassignment(self):
        queue = PartitionQueue()
        queue.add(1, (1, "x"))
        queue.add(3, (2, "y"))
        seen = []
        for key, members in queue:
            seen.append((key, list(members)))
            if key == 1:
                queue.add(2, (1, "x"))  # reassign forward
        assert [key for key, _ in seen] == [1, 2, 3]

    def test_rejects_backward_reassignment(self):
        queue = PartitionQueue()
        queue.add(2, (1, "x"))
        for key, _ in queue:
            with pytest.raises(ValueError):
                queue.add(key, (9, "z"))
            with pytest.raises(ValueError):
                queue.add(key - 1, (9, "z"))

    def test_keys_merge(self):
        queue = PartitionQueue()
        queue.add(1, "a")
        queue.add(1, "b")
        assert next(iter(queue)) == (1, ["a", "b"])


class TestFirstLevel:
    def test_every_sequence_lands_on_its_minimum(self):
        rng = random.Random(61)
        for _ in range(30):
            db = random_database(rng)
            parts = first_level_partitions(db.members())
            for key, group in parts.items():
                for _, raw in group:
                    assert minimum_item(raw) == key

    def test_iterate_visits_each_key_with_all_containing_sequences(self):
        """The reassignment invariant: when partition lam is processed it
        holds exactly the sequences containing lam."""
        rng = random.Random(62)
        for _ in range(30):
            db = random_database(rng)
            members = db.members()
            for lam, group in iterate_first_level(members):
                containing = {
                    cid
                    for cid, raw in members
                    if any(lam in txn for txn in raw)
                }
                assert {cid for cid, _ in group} == containing

    def test_empty_database(self):
        assert list(iterate_first_level([])) == []


class TestSecondLevel:
    def test_iterate_visits_every_anchored_2_subsequence(self):
        """When partition K is processed it holds exactly the reduced
        sequences containing K."""
        rng = random.Random(63)
        for _ in range(25):
            db = random_database(rng)
            members = db.members()
            # Use unreduced members anchored at the global min item.
            lam = min(minimum_item(raw) for _, raw in db.members())
            group = [
                (cid, raw)
                for cid, raw in members
                if any(lam in txn for txn in raw) and seq_length(raw) >= 3
            ]
            for key, sp in iterate_second_level(group, lam):
                containing = {cid for cid, raw in group if contains(raw, key)}
                assert {cid for cid, _ in sp} == containing
                assert key[0][0] == lam


class TestReduction:
    def _reduce_all(self, members, lam, delta):
        frequent_items = frozenset(count_frequent_items(members, delta))
        array = CountingArray(((lam,),))
        array.observe_all(members)
        pairs = {p for p, c in array.counts().items() if c >= delta}
        return [
            (cid, reduced)
            for cid, raw in members
            if (reduced := reduce_sequence(raw, lam, frequent_items, pairs))
            is not None
        ], frequent_items

    def test_reduction_preserves_frequent_patterns(self):
        """No frequent pattern starting with lam loses support."""
        rng = random.Random(64)
        for _ in range(25):
            db = random_database(rng, max_customers=10)
            members = db.members()
            delta = rng.randint(1, max(1, len(members) // 2))
            patterns = mine_bruteforce(members, delta)
            lam = min(minimum_item(raw) for _, raw in members)
            group = [
                (cid, raw)
                for cid, raw in members
                if any(lam in txn for txn in raw)
            ]
            reduced, _ = self._reduce_all(group, lam, delta)
            reduced_by_cid = dict(reduced)
            for pattern, _count in patterns.items():
                if pattern[0][0] != lam or seq_length(pattern) < 3:
                    continue
                for cid, raw in group:
                    if contains(raw, pattern):
                        assert cid in reduced_by_cid
                        assert contains(reduced_by_cid[cid], pattern), (
                            pattern,
                            raw,
                            reduced_by_cid[cid],
                        )

    def test_reduction_never_removes_lambda(self):
        rng = random.Random(65)
        for _ in range(25):
            db = random_database(rng)
            members = db.members()
            lam = min(minimum_item(raw) for _, raw in members)
            group = [
                (cid, raw) for cid, raw in members if any(lam in txn for txn in raw)
            ]
            reduced, _ = self._reduce_all(group, lam, 1)
            originals = dict(group)
            for cid, short in reduced:
                lam_count = sum(txn.count(lam) for txn in originals[cid])
                kept = sum(txn.count(lam) for txn in short)
                assert kept == lam_count

    def test_short_results_dropped(self):
        # Reduced sequences shorter than 3 return None.
        assert reduce_sequence(parse("(a, g)"), 1, frozenset([1, 7]), {(7, 1)}) is None

    def test_infrequent_items_removed_everywhere(self):
        reduced = reduce_sequence(
            parse("(z)(a)(z)(b)(c)"),
            1,
            frozenset([1, 2, 3]),
            {(2, 2), (3, 2)},
        )
        assert reduced == parse("(a)(b)(c)")


class TestIterateExtensionPartitions:
    def test_filtered_exactness(self):
        """With a frequent-pair filter, each yielded partition still holds
        exactly the members containing its key."""
        import random as _random

        from repro.core.kminimum import extension_pairs
        from repro.core.partition import iterate_extension_partitions

        rng = _random.Random(66)
        for _ in range(25):
            db = random_database(rng)
            members = db.members()
            prefix = ((min(minimum_item(raw) for _, raw in members),),)
            group = [
                (cid, raw) for cid, raw in members
                if contains(raw, prefix)
            ]
            all_pairs = set()
            for _, raw in group:
                all_pairs |= extension_pairs(raw, prefix)
            if not all_pairs:
                continue
            allowed = set(rng.sample(sorted(all_pairs),
                                     rng.randint(1, len(all_pairs))))
            seen_keys = []
            for key, sp in iterate_extension_partitions(group, prefix, allowed):
                seen_keys.append(key)
                containing = {cid for cid, raw in group if contains(raw, key)}
                assert {cid for cid, _ in sp} == containing
            # Every allowed pair realised by some member is visited.
            from repro.core.kminimum import build_extension

            expected_keys = {
                build_extension(prefix, pair)
                for pair in allowed
                if any(pair in extension_pairs(raw, prefix) for _, raw in group)
            }
            assert set(seen_keys) == expected_keys

    def test_ascending_key_order(self):
        import random as _random

        from repro.core.partition import iterate_extension_partitions
        from repro.core.sequence import flatten

        rng = _random.Random(67)
        for _ in range(15):
            db = random_database(rng)
            members = db.members()
            lam = min(minimum_item(raw) for _, raw in members)
            group = [
                (cid, raw) for cid, raw in members
                if any(lam in txn for txn in raw)
            ]
            keys = [flatten(key) for key, _ in
                    iterate_extension_partitions(group, ((lam,),))]
            assert keys == sorted(keys)
