"""Tests for top-k mining (repro.ext.topk)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.sequence import flatten, parse, seq_length
from repro.exceptions import InvalidParameterError
from repro.ext.topk import mine_topk
from tests.conftest import random_database


def oracle_topk(members, k, min_length=1):
    """Ground truth: full delta=1 mining, sort, cut."""
    patterns = mine_bruteforce(members, 1)
    ranked = sorted(
        (
            (pattern, count)
            for pattern, count in patterns.items()
            if seq_length(pattern) >= min_length
        ),
        key=lambda pc: (-pc[1], flatten(pc[0])),
    )
    return ranked[:k]


class TestTopK:
    def test_matches_oracle_random(self):
        rng = random.Random(131)
        for _ in range(25):
            db = random_database(rng, max_customers=8, max_transactions=4)
            members = db.members()
            k = rng.randint(1, 12)
            assert mine_topk(members, k) == oracle_topk(members, k)

    def test_min_length_filter(self):
        rng = random.Random(132)
        for _ in range(15):
            db = random_database(rng, max_customers=8, max_transactions=4)
            members = db.members()
            got = mine_topk(members, 5, min_length=2)
            assert got == oracle_topk(members, 5, min_length=2)
            assert all(seq_length(p) >= 2 for p, _ in got)

    def test_descending_support_order(self, table1_members):
        results = mine_topk(table1_members, 10)
        supports = [count for _, count in results]
        assert supports == sorted(supports, reverse=True)

    def test_fewer_patterns_than_k(self):
        members = [(1, parse("(a)"))]
        assert mine_topk(members, 10) == [(parse("(a)"), 1)]

    def test_k_one_is_most_frequent(self, table1_members):
        [(pattern, count)] = mine_topk(table1_members, 1)
        # b and f both appear in all four sequences; b is smaller.
        assert pattern == parse("(b)")
        assert count == 4

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            mine_topk([], 0)
        with pytest.raises(InvalidParameterError):
            mine_topk([], 1, min_length=0)

    def test_empty_database(self):
        assert mine_topk([], 3) == []
