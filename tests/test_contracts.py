"""Tests for the contract manifest (:mod:`repro.contracts`).

The manifest is the single source of truth for the event vocabulary,
wire schemas, error taxonomy, metrics registry and state machines.
These tests pin the round-trips: every runtime module that re-exports or
verifies a table must agree with the manifest, and every helper must
behave as the WIRE/STATE rules assume.
"""

from __future__ import annotations

import pytest

from repro import contracts, exceptions
from repro.cluster import breaker, membership
from repro.obs import events
from repro.service import errors, http, scheduler, supervise


def _all_repro_errors() -> list[type]:
    """Every ReproError subclass importable from the two error modules."""
    assert errors.ServiceError is not None  # force the import
    seen: set[type] = set()
    stack: list[type] = [exceptions.ReproError]
    while stack:
        klass = stack.pop()
        if klass in seen:
            continue
        seen.add(klass)
        stack.extend(klass.__subclasses__())
    return sorted(seen, key=lambda k: k.__name__)


class TestEventVocabulary:
    def test_events_module_reexports_the_manifest(self):
        assert events.EVENT_VOCABULARY is contracts.EVENT_VOCABULARY

    def test_every_declared_event_round_trips(self):
        for spec in contracts.EVENTS.values():
            record = {field: "x" for field in spec.required + spec.optional}
            assert contracts.validate_event_fields(spec.name, record) == []

    def test_unknown_missing_and_undeclared_fields_are_problems(self):
        assert contracts.validate_event_fields("no.such.event", {}) == [
            "unknown event 'no.such.event'"
        ]
        problems = contracts.validate_event_fields("job.accepted", {"flavour": 1})
        assert any("missing" in p for p in problems)
        assert any("undeclared" in p for p in problems)

    def test_validate_event_rejects_undeclared_extras(self):
        record = {
            "schema": events.EVENT_SCHEMA,
            "version": events.EVENT_VERSION,
            "ts": 0.0,
            "level": "info",
            "event": "job.accepted",
            "trace_id": "t",
            "job_id": "j",
        }
        assert events.validate_event(record) == []
        assert any(
            "undeclared" in p
            for p in events.validate_event({**record, "bogus": 1})
        )

    def test_breaker_and_membership_events_are_declared(self):
        table = contracts.BREAKER_EVENT_BY_STATE
        assert set(table.values()) == set(contracts.BREAKER_EVENTS)
        assert set(table) == set(contracts.STATE_MACHINES["breaker"].states)
        for name in contracts.BREAKER_EVENTS + contracts.MEMBERSHIP_EVENTS:
            assert name in contracts.EVENTS


class TestErrorTaxonomy:
    def test_http_status_table_matches_the_taxonomy(self):
        contracts.verify_error_status(http._ERROR_STATUS)

    def test_verify_error_status_raises_on_drift(self):
        rows = list(http._ERROR_STATUS)
        klass, _status, code = rows[0]
        rows[0] = (klass, 500, code)
        with pytest.raises(RuntimeError, match="drifted"):
            contracts.verify_error_status(rows)

    def test_every_repro_error_has_a_declared_row(self):
        # no subclass may fall through to the generic internal row
        for klass in _all_repro_errors():
            exc = klass.__new__(klass)
            rule = contracts.error_rule_for(exc)
            assert rule in contracts.ERROR_TAXONOMY, klass.__name__
            assert contracts.wire_code_for(exc) == rule.code
            assert contracts.status_for(exc) == rule.status

    def test_foreign_exceptions_fall_back_to_internal(self):
        exc = RuntimeError("boom")
        assert contracts.error_rule_for(exc) is contracts.INTERNAL_ERROR
        assert contracts.wire_code_for(exc) == "internal"
        assert contracts.status_for(exc) == 500
        assert contracts.is_retryable(exc)

    def test_classify_agrees_with_the_manifest(self):
        cancelled = exceptions.OperationCancelledError("stop")
        injected = exceptions.InjectedFaultError("fault")
        bad = exceptions.InvalidParameterError("delta")
        assert supervise.classify(cancelled) == supervise.TERMINAL
        assert supervise.classify(injected) == supervise.RETRYABLE
        assert supervise.classify(bad) == supervise.TERMINAL
        assert supervise.classify(RuntimeError("io")) == supervise.RETRYABLE
        assert not contracts.is_retryable(cancelled)
        assert contracts.is_retryable(injected)

    def test_worker_codes_agree_with_status_defaults(self):
        # a coordinator that only sees the status must reach the same
        # retry verdict the worker's error body would have carried
        for code, (status, retryable) in contracts.WORKER_ERROR_CODES.items():
            assert retryable == contracts.retryable_for_status(status), code

    def test_validate_error_body(self):
        good = {"error": {"code": "bad_payload", "message": "no", "retryable": False}}
        assert contracts.validate_error_body(good, require_retryable=True) == []
        assert contracts.validate_error_body([]) == [
            "error body is not a JSON object"
        ]
        assert contracts.validate_error_body({"oops": 1}) == [
            "error body has no 'error' object"
        ]
        undeclared = {"error": {"code": "x", "message": "m", "surprise": 1}}
        assert any(
            "undeclared" in p for p in contracts.validate_error_body(undeclared)
        )
        bare = {"error": {"code": "x", "message": "m"}}
        assert contracts.validate_error_body(bare) == []
        assert contracts.validate_error_body(bare, require_retryable=True) != []


class TestStateMachines:
    def test_runtime_constants_verify_against_the_manifest(self):
        contracts.verify_states(
            "breaker", (breaker.CLOSED, breaker.OPEN, breaker.HALF_OPEN),
            breaker.CLOSED,
        )
        contracts.verify_states(
            "membership",
            (membership.LIVE, membership.SUSPECT, membership.RETIRED),
            membership.LIVE,
        )
        contracts.verify_states(
            "job",
            (scheduler.QUEUED, scheduler.RUNNING, scheduler.DONE,
             scheduler.FAILED, scheduler.CANCELLED),
            scheduler.QUEUED,
        )

    def test_verify_states_raises_on_drift(self):
        with pytest.raises(RuntimeError, match="drifted"):
            contracts.verify_states("breaker", ("closed", "open"), "closed")
        with pytest.raises(RuntimeError, match="drifted"):
            contracts.verify_states(
                "breaker", ("closed", "open", "half_open"), "open"
            )

    def test_transition_tables_are_internally_consistent(self):
        for machine in contracts.STATE_MACHINES.values():
            assert machine.initial in machine.states
            for source, target in machine.transitions:
                assert source in machine.states, machine.name
                assert target in machine.states, machine.name

    def test_check_transition(self):
        assert contracts.check_transition("breaker", "closed", "open")
        assert contracts.check_transition("breaker", "open", "open")  # self-loop
        assert not contracts.check_transition("breaker", "closed", "half_open")
        assert not contracts.check_transition("job", "done", "running")
        assert not contracts.check_transition("job", "done", "limbo")

    def test_breaker_gauge_codes_cover_every_state(self):
        states = set(contracts.STATE_MACHINES["breaker"].states)
        assert set(contracts.BREAKER_STATE_CODES) == states
        assert breaker.BREAKER_STATE_CODES == dict(contracts.BREAKER_STATE_CODES)


class TestWireSchemasAndMetrics:
    def test_read_keys_are_declared(self):
        for schema in contracts.WIRE_SCHEMAS.values():
            legal = set(schema.keys) | set(schema.accepted)
            assert set(schema.read) <= legal, schema.name

    def test_metric_kinds_are_legal(self):
        for spec in contracts.METRICS.values():
            assert spec.kind in contracts.METRIC_KINDS, spec.name

    def test_compare_invariants_are_declared_counters(self):
        gated = [
            spec for spec in contracts.METRICS.values()
            if "bench/compare.py" in spec.consumers
        ]
        assert gated, "compare.py gates on no metrics?"
        for spec in gated:
            assert spec.kind == "counter", spec.name
