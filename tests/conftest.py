"""Shared fixtures: the paper's example databases and random-db helpers."""

from __future__ import annotations

import random

import pytest

from repro.core.sequence import RawSequence, parse
from repro.db.database import SequenceDatabase

#: Table 1: the running example database of Sections 1-2.
TABLE1_TEXTS = [
    "(a, e, g)(b)(h)(f)(c)(b, f)",
    "(b)(d, f)(e)",
    "(b, f, g)",
    "(f)(a, g)(b, f, h)(b, f)",
]

#: Table 6: the example database of Section 3 (delta = 3).
TABLE6_TEXTS = {
    1: "(a, d)(d)(a, g, h)(c)",
    2: "(b)(a)(f)(a, c, e, g)",
    3: "(a, f, g)(a, e, g, h)(c, g, h)",
    4: "(f)(a, c, f)(a, c, e, g, h)",
    5: "(a, g)",
    6: "(a, f)(a, e, g, h)",
    7: "(a, b, g)(a, e, g)(g, h)",
    8: "(b, f)(b, e)(e, f, h)",
    9: "(d, f)(d, f, g, h)",
    10: "(b, f, g)(c, e, h)",
    11: "(e, g)(f)(e, f)",
}

#: Table 7: the <(a)>-partition of Table 6 after customer sequence reducing.
TABLE7_TEXTS = {
    1: "(a)(a, g, h)(c)",
    2: "(b)(a)(a, c, e, g)",
    3: "(a, f, g)(a, e, g, h)(c, g, h)",
    4: "(f)(a, f)(a, c, e, g, h)",
    6: "(a, f)(a, e, g, h)",
    7: "(a, g)(a, e, g)(g, h)",
}


@pytest.fixture
def table1_db() -> SequenceDatabase:
    return SequenceDatabase.from_texts(TABLE1_TEXTS)


@pytest.fixture
def table1_members() -> list[tuple[int, RawSequence]]:
    return [(cid, parse(t)) for cid, t in enumerate(TABLE1_TEXTS, start=1)]


@pytest.fixture
def table6_members() -> list[tuple[int, RawSequence]]:
    return [(cid, parse(t)) for cid, t in TABLE6_TEXTS.items()]


@pytest.fixture
def table7_members() -> list[tuple[int, RawSequence]]:
    return [(cid, parse(t)) for cid, t in TABLE7_TEXTS.items()]


def random_database(
    rng: random.Random,
    max_customers: int = 12,
    max_items: int = 6,
    max_transactions: int = 5,
    max_itemset: int = 3,
) -> SequenceDatabase:
    """A small random database for cross-algorithm checks."""
    n_items = rng.randint(2, max_items)
    customers = []
    for _ in range(rng.randint(1, max_customers)):
        customers.append(
            [
                rng.sample(range(1, n_items + 1), rng.randint(1, min(max_itemset, n_items)))
                for _ in range(rng.randint(1, max_transactions))
            ]
        )
    return SequenceDatabase.from_raw(customers)


def random_sequence(
    rng: random.Random,
    max_items: int = 6,
    max_transactions: int = 5,
    max_itemset: int = 3,
) -> RawSequence:
    """A single small random canonical sequence."""
    n_items = rng.randint(2, max_items)
    return tuple(
        tuple(sorted(rng.sample(range(1, n_items + 1), rng.randint(1, min(max_itemset, n_items)))))
        for _ in range(rng.randint(1, max_transactions))
    )
