"""End-to-end integration: generator -> miners -> verify -> post-process.

One moderate Quest database flows through the whole public surface, the
way a downstream user would drive it.
"""

from __future__ import annotations

import io

import pytest

from repro.core.nrr import compute_nrr_profile
from repro.datagen import QuestParams, generate
from repro.db import io as dbio
from repro.ext.features import PatternFeaturizer, select_features
from repro.ext.rules import generate_rules
from repro.ext.topk import mine_topk
from repro.mining.api import mine
from repro.mining.serialize import load_result, save_result
from repro.mining.verify import verify_patterns


@pytest.fixture(scope="module")
def quest_db():
    return generate(
        QuestParams(ncust=120, slen=5, tlen=2.5, nitems=80, patlen=4,
                    npats=40, seed=17)
    )


@pytest.fixture(scope="module")
def mined(quest_db):
    return mine(quest_db, 0.05, algorithm="disc-all")


class TestFullPipeline:
    def test_all_algorithms_agree(self, quest_db, mined):
        for algo in ("dynamic-disc-all", "multilevel-disc-all",
                     "prefixspan", "pseudo", "spade", "spam"):
            assert mine(quest_db, 0.05, algorithm=algo).same_patterns(mined)

    def test_verification_passes(self, quest_db, mined):
        report = verify_patterns(
            mined.patterns, list(quest_db.sequences), mined.delta, sample=60
        )
        assert report.ok, report.errors

    def test_io_roundtrip_preserves_mining(self, quest_db):
        buffer = io.StringIO()
        dbio.write_spmf(quest_db, buffer)
        buffer.seek(0)
        again = dbio.read_spmf(buffer)
        assert mine(again, 0.05).same_patterns(mine(quest_db, 0.05))

    def test_result_serialisation(self, mined, tmp_path):
        path = tmp_path / "result.json"
        save_result(mined, path)
        assert load_result(path).same_patterns(mined)

    def test_topk_is_prefix_of_full_ranking(self, quest_db, mined):
        from repro.core.sequence import flatten

        top = mine_topk(quest_db.members(), 15)
        ranked = sorted(
            mined.patterns.items(), key=lambda pc: (-pc[1], flatten(pc[0]))
        )
        # Every top-k entry above the mining threshold must appear in the
        # same position of the full ranking.
        for (got_p, got_c), (want_p, want_c) in zip(top, ranked):
            if got_c < mined.delta:
                break
            assert (got_p, got_c) == (want_p, want_c)

    def test_rules_from_result(self, quest_db, mined):
        rules = generate_rules(mined.patterns, len(quest_db), 0.6)
        for rule in rules[:20]:
            whole = rule.antecedent + rule.consequent
            assert rule.support == mined.patterns[whole]

    def test_features_matrix_shape(self, quest_db, mined):
        raws = list(quest_db.sequences)
        features = select_features(
            mined.patterns, raws, min_length=2, max_features=20
        )
        matrix = PatternFeaturizer(features).transform(raws)
        assert matrix.shape == (len(raws), len(features))
        # Feature frequency must match the mined supports.
        for j, pattern in enumerate(features):
            assert int(matrix[:, j].sum()) == mined.patterns[pattern]

    def test_nrr_profile_shape(self, quest_db, mined):
        profile = compute_nrr_profile(mined.patterns, len(quest_db)).averages()
        assert 0 in profile
        assert profile[0] < 0.5
        if 2 in profile and 1 in profile:
            assert profile[2] >= profile[1] * 0.5  # deeper ~ larger, loosely

    def test_closed_and_maximal_consistency(self, mined):
        closed = mined.closed_patterns()
        maximal = mined.maximal_patterns()
        assert set(maximal) <= set(closed) <= set(mined.patterns)
