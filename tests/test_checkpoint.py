"""Checkpoint/resume (repro.core.checkpoint + mine integration).

Serialization round-trips, identity validation, recorder watermark
semantics — and the acceptance criterion of the fault-tolerance layer:
kill a run at *every* checkpoint boundary in turn, resume each time, and
require the final pattern set to be byte-identical to an uninterrupted
run.
"""

from __future__ import annotations

import pytest

from repro.core.cancel import CancelToken, cancel_scope
from repro.core.checkpoint import (
    CheckpointIdentity,
    CheckpointRecorder,
    MiningCheckpoint,
    NOOP_RECORDER,
    active_recorder,
    options_fingerprint,
    recording_scope,
)
from repro.db.database import SequenceDatabase
from repro.exceptions import (
    CheckpointMismatchError,
    DataFormatError,
    InjectedFaultError,
    InvalidParameterError,
    OperationCancelledError,
)
from repro.faults import FaultPlan, fault_plan
from repro.mining.api import mine, run_identity
from repro.mining.registry import RESUMABLE_ALGORITHMS, supports_resume

from tests.conftest import TABLE1_TEXTS, TABLE6_TEXTS


@pytest.fixture
def table6_db() -> SequenceDatabase:
    return SequenceDatabase.from_texts(list(TABLE6_TEXTS.values()))


def identity_of(db: SequenceDatabase, delta: int = 2) -> CheckpointIdentity:
    return run_identity(db, delta, "disc-all", {})


class TestIdentity:
    def test_options_fingerprint_ignores_key_order(self):
        assert options_fingerprint({"a": 1, "b": 2}) == options_fingerprint(
            {"b": 2, "a": 1}
        )
        assert options_fingerprint({"a": 1}) != options_fingerprint({"a": 2})

    def test_mismatch_reports_first_differing_field(self, table1_db):
        base = identity_of(table1_db)
        assert base.mismatch(base) is None
        other = CheckpointIdentity(
            "0" * 64, base.delta, base.algorithm, base.options_fingerprint
        )
        assert "digest" in (other.mismatch(base) or "")
        wrong_delta = CheckpointIdentity(
            base.database_digest, 99, base.algorithm, base.options_fingerprint
        )
        assert "delta" in (wrong_delta.mismatch(base) or "")
        wrong_algo = CheckpointIdentity(
            base.database_digest, base.delta, "spade", base.options_fingerprint
        )
        assert "algorithm" in (wrong_algo.mismatch(base) or "")

    def test_database_digest_tracks_content(self, table1_db):
        same = SequenceDatabase.from_texts(TABLE1_TEXTS)
        changed = SequenceDatabase.from_texts(TABLE1_TEXTS[:-1])
        assert table1_db.content_digest() == same.content_digest()
        assert table1_db.content_digest() != changed.content_digest()


class TestSerialization:
    def test_round_trip(self, table1_db):
        checkpoint = MiningCheckpoint(
            identity=identity_of(table1_db),
            completed_partitions=(2, 6),
            completed_k=4,
            patterns={((1,), (2,)): 3, ((2, 6),): 2},
        )
        restored = MiningCheckpoint.from_json(checkpoint.to_json())
        assert restored == checkpoint

    def test_wrong_format_rejected(self):
        with pytest.raises(DataFormatError, match="not a mining checkpoint"):
            MiningCheckpoint.from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, table1_db):
        payload = MiningCheckpoint(identity=identity_of(table1_db)).to_dict()
        payload["version"] = 99
        with pytest.raises(DataFormatError, match="version"):
            MiningCheckpoint.from_dict(payload)

    def test_malformed_payload_rejected(self, table1_db):
        payload = MiningCheckpoint(identity=identity_of(table1_db)).to_dict()
        del payload["delta"]
        with pytest.raises(DataFormatError, match="malformed"):
            MiningCheckpoint.from_dict(payload)

    def test_garbage_json_rejected(self):
        with pytest.raises(DataFormatError):
            MiningCheckpoint.from_json("{truncated")

    def test_validate_for_raises_on_mismatch(self, table1_db):
        checkpoint = MiningCheckpoint(identity=identity_of(table1_db))
        other = CheckpointIdentity("f" * 64, 2, "disc-all", checkpoint.identity.options_fingerprint)
        with pytest.raises(CheckpointMismatchError, match="cannot resume"):
            checkpoint.validate_for(other)
        checkpoint.validate_for(identity_of(table1_db))  # no raise


class TestRecorder:
    def test_watermark_advances_only_at_boundaries(self, table1_db):
        recorder = CheckpointRecorder()
        out: dict = {}
        recorder.attach(out)
        out[((1,),)] = 4
        out[((2,),)] = 3
        # Not yet committed: capture sees nothing.
        assert recorder.capture(identity_of(table1_db)).patterns == {}
        recorder.round_done(2)
        snapshot = recorder.capture(identity_of(table1_db))
        assert snapshot.patterns == {((1,),): 4, ((2,),): 3}
        assert snapshot.completed_k == 2
        out[((1,), (2,))] = 2  # uncommitted again
        assert recorder.capture(identity_of(table1_db)).patterns == snapshot.patterns

    def test_partition_done_resets_round_counter(self, table1_db):
        recorder = CheckpointRecorder()
        recorder.attach({})
        recorder.round_done(4)
        assert recorder.completed_k == 4
        recorder.partition_done(1)
        assert recorder.completed_k == 0
        assert recorder.completed_partitions == (1,)
        assert recorder.should_skip(1) and not recorder.should_skip(2)

    def test_attach_seeds_resumed_patterns_first(self, table1_db):
        resumed = MiningCheckpoint(
            identity=identity_of(table1_db),
            completed_partitions=(1,),
            patterns={((1,),): 4},
        )
        recorder = CheckpointRecorder(resume_from=resumed)
        out = {((2,),): 3}  # the fresh run's own 1-sequences
        recorder.attach(out)
        assert list(out) == [((1,),), ((2,),)]  # resumed entries lead
        assert recorder.should_skip(1)

    def test_sink_fires_at_each_boundary(self, table1_db):
        seen: list[MiningCheckpoint] = []
        recorder = CheckpointRecorder(sink=seen.append)
        recorder.bind_identity(identity_of(table1_db))
        recorder.attach({})
        recorder.round_done(4)
        recorder.partition_done(1)
        assert len(seen) == 2
        assert seen[1].completed_partitions == (1,)

    def test_noop_recorder_is_ambient_default(self):
        assert active_recorder() is NOOP_RECORDER
        real = CheckpointRecorder()
        with recording_scope(real):
            assert active_recorder() is real
        assert active_recorder() is NOOP_RECORDER


class TestMineIntegration:
    def test_cancellation_yields_partial_result(self, table6_db):
        token = CancelToken()
        emitted: list[MiningCheckpoint] = []

        def sink(checkpoint: MiningCheckpoint) -> None:
            emitted.append(checkpoint)
            if len(emitted) == 2:
                token.cancel("test stop")

        with cancel_scope(token):
            result = mine(table6_db, 2, checkpoint_to=sink)
        assert not result.complete
        assert result.checkpoint is not None
        assert len(result.patterns) == len(result.checkpoint.patterns)

    def test_resume_from_partial_equals_uninterrupted(self, table6_db):
        reference = mine(table6_db, 2)
        token = CancelToken()

        def sink(checkpoint: MiningCheckpoint) -> None:
            token.cancel("test stop")

        with cancel_scope(token):
            partial = mine(table6_db, 2, checkpoint_to=sink)
        assert not partial.complete
        resumed = mine(table6_db, 2, resume_from=partial.checkpoint)
        assert resumed.complete
        assert resumed.patterns == reference.patterns

    def test_kill_at_every_fault_site_then_resume(self, table6_db):
        """The acceptance criterion: crash anywhere, resume, equal output."""
        reference = mine(table6_db, 2)
        for site in ("disc.partition", "disc.round"):
            hit = 1
            while True:
                checkpoints: list[MiningCheckpoint] = []
                try:
                    with fault_plan(FaultPlan.from_spec(f"{site}:{hit}")):
                        mine(table6_db, 2, checkpoint_to=checkpoints.append)
                    break  # hit number beyond the run's sites: clean finish
                except InjectedFaultError:
                    pass
                resume = checkpoints[-1] if checkpoints else None
                resumed = mine(table6_db, 2, resume_from=resume)
                assert resumed.complete
                assert resumed.patterns == reference.patterns, (site, hit)
                hit += 1
            assert hit > 1, f"fault site {site} never hit"

    def test_resume_checkpoint_mismatch_raises(self, table6_db, table1_db):
        token = CancelToken()

        def sink(checkpoint: MiningCheckpoint) -> None:
            token.cancel()

        with cancel_scope(token):
            partial = mine(table6_db, 2, checkpoint_to=sink)
        with pytest.raises(CheckpointMismatchError):
            mine(table1_db, 2, resume_from=partial.checkpoint)
        with pytest.raises(CheckpointMismatchError):
            mine(table6_db, 3, resume_from=partial.checkpoint)

    def test_non_resumable_algorithm_rejects_checkpointing(self, table1_db):
        assert not supports_resume("spade")
        with pytest.raises(InvalidParameterError, match="does not support"):
            mine(table1_db, 2, algorithm="spade", resume_from=None,
                 checkpoint_to=lambda c: None)

    def test_resumable_registry(self):
        assert "disc-all" in RESUMABLE_ALGORITHMS
        assert "disc-all-parallel" in RESUMABLE_ALGORITHMS
        assert not supports_resume("dynamic-disc-all")

    def test_cancel_before_first_partition_keeps_one_sequences(self, table1_db):
        # A pre-cancelled token stops at the first partition boundary;
        # the 1-sequences (whose supports are already final) survive.
        token = CancelToken()
        token.cancel("immediately")
        with cancel_scope(token):
            result = mine(table1_db, 2)
        assert not result.complete
        assert result.checkpoint is not None
        assert result.checkpoint.completed_partitions == ()
        assert all(len(seq) == 1 and len(seq[0]) == 1 for seq in result.patterns)


    def test_complete_run_has_no_checkpoint(self, table1_db):
        result = mine(table1_db, 2)
        assert result.complete
        assert result.checkpoint is None
        assert result.completed_k == 0
