"""Tests for the Quest-style synthetic generator (repro.datagen.quest)."""

from __future__ import annotations

import pytest

from repro.datagen import QuestParams, generate
from repro.exceptions import InvalidParameterError


class TestDeterminism:
    def test_same_seed_same_database(self):
        params = QuestParams(ncust=50, nitems=40, npats=30, seed=7)
        assert generate(params) == generate(params)

    def test_different_seed_different_database(self):
        base = QuestParams(ncust=50, nitems=40, npats=30, seed=7)
        assert generate(base) != generate(base.scaled(seed=8))


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"ncust": 0},
            {"nitems": 0},
            {"npats": 0},
            {"slen": 0},
            {"tlen": -1},
            {"patlen": 0},
            {"litlen": 0},
            {"corr": 1.5},
            {"corrupt_mean": -0.1},
        ],
    )
    def test_bad_parameters(self, overrides):
        with pytest.raises(InvalidParameterError):
            generate(QuestParams().scaled(**overrides))

    def test_scaled_returns_copy(self):
        base = QuestParams()
        other = base.scaled(ncust=7)
        assert other.ncust == 7
        assert base.ncust == 1000


class TestShape:
    def test_row_count(self):
        db = generate(QuestParams(ncust=120, nitems=50, npats=30, seed=1))
        assert len(db) == 120

    def test_items_in_range(self):
        params = QuestParams(ncust=60, nitems=25, npats=20, seed=2)
        db = generate(params)
        for seq in db:
            for txn in seq:
                for item in txn:
                    assert 1 <= item <= params.nitems

    def test_slen_controls_transactions(self):
        small = generate(QuestParams(ncust=150, slen=3, nitems=60, npats=40, seed=3))
        large = generate(QuestParams(ncust=150, slen=9, nitems=60, npats=40, seed=3))
        assert large.stats.avg_transactions > small.stats.avg_transactions * 1.8

    def test_tlen_controls_itemset_size(self):
        small = generate(QuestParams(ncust=150, tlen=1.5, nitems=60, npats=40, seed=4))
        large = generate(QuestParams(ncust=150, tlen=5.0, nitems=60, npats=40, seed=4))
        assert (
            large.stats.avg_items_per_transaction
            > small.stats.avg_items_per_transaction
        )

    def test_sequences_are_canonical(self):
        from repro.core.sequence import validate

        db = generate(QuestParams(ncust=80, nitems=40, npats=25, seed=5))
        for seq in db:
            validate(seq)
            assert seq  # non-empty

    def test_embedded_patterns_create_frequent_sequences(self):
        """The point of Quest data: patterns recur, so mining at a
        moderate threshold finds multi-item sequences."""
        from repro.mining.api import mine

        db = generate(QuestParams(ncust=200, slen=5, nitems=80, npats=25, seed=6))
        result = mine(db, 0.05, algorithm="prefixspan")
        assert result.max_length() >= 2


class TestTwoPhaseTables:
    def test_itemset_table_shapes(self):
        import random

        from repro.datagen.quest import QuestParams, _itemset_table

        params = QuestParams(nitems=50, nlits=40, litlen=2.0, seed=3)
        table, weights = _itemset_table(params, random.Random(3))
        assert len(table) == len(weights) == 40
        assert abs(sum(weights) - 1.0) < 1e-9
        for itemset in table:
            assert itemset == tuple(sorted(set(itemset)))
            assert all(1 <= item <= 50 for item in itemset)

    def test_pattern_elements_come_from_itemset_table(self):
        import random

        from repro.datagen.quest import (
            QuestParams,
            _itemset_table,
            _pattern_table,
        )

        params = QuestParams(nitems=50, nlits=30, npats=25, corr=0.0, seed=4)
        rng = random.Random(4)
        table, weights = _itemset_table(params, rng)
        entries = set(table)
        patterns = _pattern_table(params, rng, table, weights)
        assert len(patterns) == 25
        for elements, weight, corruption in patterns:
            assert 0.0 <= corruption <= 1.0
            assert weight > 0
            for element in elements:
                assert element in entries

    def test_nlits_validation(self):
        import pytest as _pytest

        from repro.datagen.quest import QuestParams

        with _pytest.raises(Exception):
            QuestParams(nlits=0).validate()

    def test_corrupt_sd_validation(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            QuestParams(corrupt_sd=-0.1).validate()
