"""The structured event log (repro.obs.events).

Record shape and vocabulary validation, level filtering, ambient
trace-id auto-fill, the module-global install discipline (the hot path
must stay free when nothing is installed), and the forgiving JSONL
reader.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import DataFormatError, InvalidParameterError
from repro.obs import events as obs_events
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_VERSION,
    EVENT_VOCABULARY,
    NOOP_EVENT_LOG,
    EventLog,
    event_log,
    read_events,
    validate_event,
)
from repro.obs.trace_context import TraceContext, trace_scope


def emitted(buffer: io.StringIO) -> list[dict]:
    return [
        json.loads(line) for line in buffer.getvalue().splitlines() if line.strip()
    ]


class TestEventLog:
    def test_record_envelope(self):
        buffer = io.StringIO()
        log = EventLog(buffer)
        log.emit("job.started", job_id="j1", attempt=1)
        [record] = emitted(buffer)
        assert record["schema"] == EVENT_SCHEMA
        assert record["version"] == EVENT_VERSION
        assert record["event"] == "job.started"
        assert record["level"] == "info"
        assert record["job_id"] == "j1"
        assert record["attempt"] == 1
        assert isinstance(record["ts"], float)
        assert validate_event(record) == []

    def test_min_level_filters(self):
        buffer = io.StringIO()
        log = EventLog(buffer, min_level="warn")
        log.emit("job.started", level="info", job_id="j1", attempt=1)
        log.emit("job.retry", level="warn", job_id="j1", attempt=2)
        records = emitted(buffer)
        assert [r["event"] for r in records] == ["job.retry"]

    def test_unknown_level_rejected(self):
        log = EventLog(io.StringIO())
        with pytest.raises(InvalidParameterError):
            log.emit("job.started", level="loud", job_id="j1", attempt=1)
        with pytest.raises(InvalidParameterError):
            EventLog(io.StringIO(), min_level="loud")

    def test_ambient_trace_id_autofill(self):
        buffer = io.StringIO()
        log = EventLog(buffer)
        ctx = TraceContext.mint()
        with trace_scope(ctx):
            log.emit("job.started", job_id="j1", attempt=1)
        log.emit("job.started", job_id="j2", attempt=1)
        ambient, outside = emitted(buffer)
        assert ambient["trace_id"] == ctx.trace_id
        assert "trace_id" not in outside

    def test_explicit_trace_id_wins(self):
        buffer = io.StringIO()
        log = EventLog(buffer)
        with trace_scope(TraceContext.mint()):
            log.emit("job.started", trace_id="f" * 32, job_id="j1", attempt=1)
        [record] = emitted(buffer)
        assert record["trace_id"] == "f" * 32

    def test_file_target_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("mine.phase", phase="algorithm", seconds=0.5)
        log.close()
        log = EventLog(path)
        log.emit("mine.phase", phase="partition", seconds=0.25)
        log.close()
        records = read_events(path)
        assert [r["phase"] for r in records] == ["algorithm", "partition"]

    def test_emit_after_close_is_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.close()
        log.emit("mine.phase", phase="algorithm", seconds=0.5)  # no raise
        assert read_events(path) == []


class TestInstallDiscipline:
    def test_default_is_noop(self):
        assert obs_events.installed() is NOOP_EVENT_LOG
        assert not obs_events.enabled()
        obs_events.emit("job.started", job_id="j1", attempt=1)  # free no-op

    def test_event_log_scope_installs_and_restores(self):
        buffer = io.StringIO()
        with event_log(EventLog(buffer)) as log:
            assert obs_events.enabled()
            assert obs_events.installed() is log
            obs_events.emit("job.cancelled", job_id="j1", reason="test")
        assert not obs_events.enabled()
        obs_events.emit("job.cancelled", job_id="j2", reason="dropped")
        records = emitted(buffer)
        assert [r["job_id"] for r in records] == ["j1"]


class TestValidation:
    def test_vocabulary_field_enforcement(self):
        record = {
            "schema": EVENT_SCHEMA, "version": EVENT_VERSION, "ts": 1.0,
            "level": "info", "event": "job.checkpoint", "job_id": "j1",
        }
        problems = validate_event(record)
        assert any("partitions" in p for p in problems)
        record["partitions"] = 3
        assert validate_event(record) == []

    def test_unknown_event_flagged(self):
        record = {
            "schema": EVENT_SCHEMA, "version": EVENT_VERSION, "ts": 1.0,
            "level": "info", "event": "job.imaginary",
        }
        assert any("unknown event" in p for p in validate_event(record))

    def test_envelope_problems_reported(self):
        assert validate_event("not a dict") == ["record is not a JSON object"]
        problems = validate_event({"schema": "other", "version": 99,
                                   "ts": "late", "level": "loud", "event": 7})
        assert len(problems) == 5

    def test_every_vocabulary_event_names_fields(self):
        for name, fields in EVENT_VOCABULARY.items():
            assert isinstance(fields, tuple)
            assert "." in name


class TestReader:
    def test_torn_tail_forgiven(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("mine.phase", phase="algorithm", seconds=0.5)
        log.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro.eve')  # crash mid-write
        records = read_events(path)
        assert len(records) == 1

    def test_all_garbage_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("not json at all\n{{{\n", encoding="utf-8")
        with pytest.raises(DataFormatError):
            read_events(path)

    def test_missing_or_empty_is_empty(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("", encoding="utf-8")
        assert read_events(path) == []
