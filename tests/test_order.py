"""Unit tests for the comparative order (repro.core.order).

The key obligation: ``sort_key`` (lexicographic flattened pairs) realises
exactly the literal transcription of Definitions 2.1/2.2, and the order
is total.
"""

from __future__ import annotations

import random

import pytest

from repro.core.order import compare, differential_point, seq_max, seq_min, sort_key
from repro.core.sequence import parse
from tests.conftest import random_sequence


class TestDifferentialPoint:
    def test_equal_sequences_have_none(self):
        assert differential_point(parse("(a)(b)"), parse("(a)(b)")) is None

    def test_item_difference(self):
        # <(a)(b)(h)> vs <(a)(c)(f)>: position 2 (items b vs c).
        assert differential_point(parse("(a)(b)(h)"), parse("(a)(c)(f)")) == 2

    def test_transaction_number_difference(self):
        # <(a, b)(c)> vs <(a)(b, c)>: position 2 (numbers 1 vs 2).
        assert differential_point(parse("(a, b)(c)"), parse("(a)(b, c)")) == 2

    def test_prefix_padding(self):
        # Shorter flat-prefix: differential point just past it.
        assert differential_point(parse("(a)"), parse("(a)(b)")) == 2
        assert differential_point(parse("(a, b)"), parse("(a)")) == 2

    def test_symmetric(self):
        a, b = parse("(a)(b)"), parse("(a, b)")
        assert differential_point(a, b) == differential_point(b, a)


class TestCompare:
    def test_item_beats_transaction_number(self):
        # Definition 2.2(a): items decide first even when the numbers
        # lean the other way.
        a = parse("(a)(b)")  # (b, 2)
        b = parse("(a, c)")  # (c, 1)
        assert compare(a, b) == -1

    def test_equal(self):
        assert compare(parse("(a, b)(c)"), parse("(a, b)(c)")) == 0

    def test_prefix_is_smaller(self):
        assert compare(parse("(a)"), parse("(a)(a)")) == -1
        assert compare(parse("(a)(a)"), parse("(a)")) == 1

    def test_antisymmetry_random(self):
        rng = random.Random(11)
        for _ in range(200):
            a, b = random_sequence(rng), random_sequence(rng)
            assert compare(a, b) == -compare(b, a)

    def test_transitivity_random(self):
        rng = random.Random(12)
        for _ in range(200):
            seqs = sorted(
                (random_sequence(rng) for _ in range(3)), key=sort_key
            )
            assert compare(seqs[0], seqs[1]) <= 0
            assert compare(seqs[1], seqs[2]) <= 0
            assert compare(seqs[0], seqs[2]) <= 0


class TestSortKeyEquivalence:
    def test_sort_key_matches_compare(self):
        """The central equivalence: lexicographic flat pairs == Def 2.2."""
        rng = random.Random(13)
        for _ in range(500):
            a, b = random_sequence(rng), random_sequence(rng)
            by_compare = compare(a, b)
            by_key = (sort_key(a) > sort_key(b)) - (sort_key(a) < sort_key(b))
            assert by_compare == by_key, (a, b)

    def test_differential_point_consistency(self):
        """compare() != 0 iff a differential point exists."""
        rng = random.Random(14)
        for _ in range(300):
            a, b = random_sequence(rng), random_sequence(rng)
            point = differential_point(a, b)
            assert (point is None) == (compare(a, b) == 0)


class TestMinMax:
    def test_seq_min_max(self):
        seqs = [parse("(b)"), parse("(a)(z)"), parse("(a, b)")]
        assert seq_min(*seqs) == parse("(a, b)")  # (b, 1) < (z, 2) at pos 2
        assert seq_max(*seqs) == parse("(b)")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            seq_min()
        with pytest.raises(ValueError):
            seq_max()
