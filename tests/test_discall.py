"""Integration tests for DISC-all and Dynamic DISC-all."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.discall import disc_all
from repro.core.dynamic import dynamic_disc_all
from repro.core.sequence import parse, seq_length
from tests.conftest import random_database


class TestDiscAll:
    def test_matches_bruteforce_random(self):
        rng = random.Random(71)
        for _ in range(50):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            expected = mine_bruteforce(members, delta)
            assert disc_all(members, delta).patterns == expected

    @pytest.mark.parametrize(
        "options",
        [
            {"bilevel": False},
            {"reduce": False},
            {"backend": "avl"},
            {"bilevel": False, "reduce": False},
        ],
        ids=["plain", "no-reduce", "avl", "plain-no-reduce"],
    )
    def test_variants_agree(self, options):
        rng = random.Random(72)
        for _ in range(25):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            assert (
                disc_all(members, delta, **options).patterns
                == disc_all(members, delta).patterns
            )

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            disc_all([], 0)

    def test_empty_database(self):
        assert disc_all([], 3).patterns == {}

    def test_delta_above_database_size(self, table1_members):
        assert disc_all(table1_members, 99).patterns == {}

    def test_single_customer_delta_one(self):
        members = [(1, parse("(a, b)(a)"))]
        patterns = disc_all(members, 1).patterns
        assert patterns == mine_bruteforce(members, 1)
        assert patterns[parse("(a)(a)")] == 1
        assert patterns[parse("(a, b)(a)")] == 1

    def test_single_item_alphabet(self):
        members = [(1, parse("(a)(a)(a)")), (2, parse("(a)(a)"))]
        patterns = disc_all(members, 2).patterns
        assert patterns == {
            parse("(a)"): 2,
            parse("(a)(a)"): 2,
        }

    def test_stats_populated(self, table6_members):
        out = disc_all(table6_members, 3)
        assert out.stats.first_level_partitions >= 4
        assert out.stats.second_level_partitions >= 1

    def test_supports_are_exact(self):
        rng = random.Random(73)
        for _ in range(20):
            db = random_database(rng)
            members = db.members()
            raws = [raw for _, raw in members]
            delta = rng.randint(1, max(1, len(members) // 2))
            from repro.core.sequence import support_count

            for pattern, count in disc_all(members, delta).patterns.items():
                assert count == support_count(raws, pattern)


class TestDynamicDiscAll:
    def test_matches_bruteforce_random(self):
        rng = random.Random(74)
        for _ in range(40):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            expected = mine_bruteforce(members, delta)
            assert dynamic_disc_all(members, delta).patterns == expected

    @pytest.mark.parametrize("gamma", [0.0, 0.3, 0.7, 1.0])
    def test_gamma_never_changes_results(self, gamma):
        rng = random.Random(75)
        for _ in range(20):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            assert (
                dynamic_disc_all(members, delta, gamma=gamma).patterns
                == mine_bruteforce(members, delta)
            )

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            dynamic_disc_all([], 1, gamma=1.5)
        with pytest.raises(ValueError):
            dynamic_disc_all([], 1, gamma=-0.1)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            dynamic_disc_all([], 0)

    def test_gamma_zero_uses_disc_immediately(self, table6_members):
        out = dynamic_disc_all(table6_members, 3, gamma=0.0)
        assert out.stats.disc_rounds > 0
        assert out.stats.first_level_partitions == 0

    def test_gamma_one_partitions_deep(self, table6_members):
        out = dynamic_disc_all(table6_members, 3, gamma=1.0)
        assert out.stats.first_level_partitions > 0

    def test_agrees_with_static(self):
        rng = random.Random(76)
        for _ in range(20):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            assert (
                dynamic_disc_all(members, delta).patterns
                == disc_all(members, delta).patterns
            )


class TestPatternProperties:
    def test_all_patterns_contained_in_some_sequence(self):
        rng = random.Random(77)
        from repro.core.sequence import contains

        for _ in range(15):
            db = random_database(rng)
            members = db.members()
            raws = [raw for _, raw in members]
            for pattern in disc_all(members, 1).patterns:
                assert any(contains(raw, pattern) for raw in raws)

    def test_downward_closure_of_result(self):
        """Every (k-1)-prefix of a frequent k-sequence is frequent."""
        from repro.core.sequence import k_prefix

        rng = random.Random(78)
        for _ in range(15):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members) // 2))
            patterns = disc_all(members, delta).patterns
            for pattern in patterns:
                length = seq_length(pattern)
                if length > 1:
                    assert k_prefix(pattern, length - 1) in patterns


class TestMultilevelDiscAll:
    def test_matches_bruteforce_at_every_depth(self):
        import random as _random

        from repro.core.dynamic import multilevel_disc_all

        rng = _random.Random(79)
        for _ in range(20):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            expected = mine_bruteforce(members, delta)
            for levels in (1, 2, 3, 5):
                got = multilevel_disc_all(members, delta, levels=levels)
                assert got.patterns == expected, levels

    def test_levels_validation(self):
        from repro.core.dynamic import multilevel_disc_all

        with pytest.raises(ValueError):
            multilevel_disc_all([], 1, levels=0)

    def test_two_level_matches_figure2_implementation(self):
        """levels=2 re-derives DISC-all through the generic recursion."""
        import random as _random

        from repro.core.dynamic import multilevel_disc_all

        rng = _random.Random(80)
        for _ in range(15):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            assert (
                multilevel_disc_all(members, delta, levels=2).patterns
                == disc_all(members, delta).patterns
            )
