"""Tests for result serialization (repro.mining.serialize)."""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.exceptions import DataFormatError
from repro.mining.api import mine
from repro.mining.serialize import load_result, save_result
from tests.conftest import random_database


class TestRoundtrip:
    def test_memory_roundtrip(self, table1_db):
        result = mine(table1_db, 2)
        buffer = io.StringIO()
        save_result(result, buffer)
        buffer.seek(0)
        loaded = load_result(buffer)
        assert loaded.same_patterns(result)
        assert loaded.delta == result.delta
        assert loaded.algorithm == result.algorithm
        assert loaded.database_size == result.database_size

    def test_file_roundtrip(self, tmp_path, table1_db):
        result = mine(table1_db, 2)
        path = tmp_path / "result.json"
        save_result(result, path)
        assert load_result(path).same_patterns(result)

    def test_random_roundtrips(self):
        rng = random.Random(181)
        for _ in range(10):
            db = random_database(rng)
            result = mine(db, 1)
            buffer = io.StringIO()
            save_result(result, buffer)
            buffer.seek(0)
            assert load_result(buffer).same_patterns(result)


class TestBadInput:
    def test_wrong_format_marker(self):
        with pytest.raises(DataFormatError):
            load_result(io.StringIO(json.dumps({"format": "other"})))

    def test_not_a_document(self):
        with pytest.raises(DataFormatError):
            load_result(io.StringIO("[1, 2, 3]"))

    def test_wrong_version(self):
        payload = {"format": "repro.mining-result", "version": 99}
        with pytest.raises(DataFormatError):
            load_result(io.StringIO(json.dumps(payload)))

    def test_missing_fields(self):
        payload = {"format": "repro.mining-result", "version": 1}
        with pytest.raises(DataFormatError):
            load_result(io.StringIO(json.dumps(payload)))


class TestCliSave:
    def test_mine_save_flag(self, tmp_path, table1_db, capsys):
        from repro.cli import main
        from repro.db.io import write_spmf

        db_path = tmp_path / "db.spmf"
        write_spmf(table1_db, db_path)
        out_path = tmp_path / "patterns.json"
        assert main([
            "mine", str(db_path), "--min-support", "2",
            "--save", str(out_path), "--top", "1",
        ]) == 0
        assert "saved" in capsys.readouterr().out
        loaded = load_result(out_path)
        assert len(loaded) == 56
