"""Failure injection: malformed inputs must fail loudly and precisely.

Every public entry point is probed with the kinds of broken input a
downstream user actually produces: wrong types, empty containers,
out-of-range parameters, corrupt files.
"""

from __future__ import annotations

import io

import pytest

from repro.core.sequence import Sequence, parse
from repro.db import io as dbio
from repro.db.database import SequenceDatabase
from repro.exceptions import (
    DataFormatError,
    InvalidDatabaseError,
    InvalidParameterError,
    InvalidSequenceError,
    ReproError,
    UnknownAlgorithmError,
)
from repro.mining.api import mine


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidSequenceError,
            InvalidDatabaseError,
            InvalidParameterError,
            UnknownAlgorithmError,
            DataFormatError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Users catching ValueError keep working.
        assert issubclass(InvalidSequenceError, ValueError)
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(UnknownAlgorithmError, KeyError)


class TestSequenceInputs:
    @pytest.mark.parametrize(
        "text", ["(", ")", "((a))", "(a,,b)", "(a b)", "hello", "(a)~(b)"]
    )
    def test_malformed_text(self, text):
        with pytest.raises(InvalidSequenceError):
            parse(text)

    def test_sequence_class_rejects_junk(self):
        with pytest.raises(InvalidSequenceError):
            Sequence([[1, "x"]])  # type: ignore[list-item]
        with pytest.raises(InvalidSequenceError):
            Sequence([[]])

    def test_comparison_with_foreign_types(self):
        s = Sequence.of("(a)")
        assert (s == "not a sequence") is False
        with pytest.raises(TypeError):
            _ = s < "not a sequence"  # type: ignore[operator]


class TestDatabaseInputs:
    def test_empty_database_mines_to_nothing(self):
        db = SequenceDatabase([])
        assert len(mine(db, 1)) == 0

    def test_boolean_min_support_rejected(self, table1_db):
        with pytest.raises(InvalidParameterError):
            mine(table1_db, True)

    @pytest.mark.parametrize("support", [0, -2, -0.5, 1.0001])
    def test_out_of_range_min_support(self, table1_db, support):
        with pytest.raises(InvalidParameterError):
            mine(table1_db, support)

    def test_delta_above_size_yields_empty(self, table1_db):
        assert len(mine(table1_db, 1000)) == 0


class TestFileInputs:
    def test_truncated_spmf(self):
        with pytest.raises(DataFormatError):
            dbio.read_spmf(io.StringIO("1 2 -1 3"))

    def test_binary_garbage_tokens(self):
        with pytest.raises(DataFormatError):
            dbio.read_spmf(io.StringIO("\x00\x01 -2"))

    def test_csv_with_missing_columns(self):
        with pytest.raises(DataFormatError):
            dbio.read_transaction_log(io.StringIO("h\nonlyone\n"))

    def test_paper_format_with_bad_line(self):
        with pytest.raises(InvalidSequenceError):
            dbio.read_paper(io.StringIO("(a)(b)\n(((\n"))


class TestAlgorithmOptions:
    def test_unknown_backend(self, table1_db):
        with pytest.raises(KeyError):
            mine(table1_db, 2, algorithm="disc-all", backend="btree")

    def test_unknown_option_raises_type_error(self, table1_db):
        with pytest.raises(TypeError):
            mine(table1_db, 2, algorithm="disc-all", bogus_option=1)

    def test_gamma_out_of_range(self, table1_db):
        with pytest.raises(ValueError):
            mine(table1_db, 2, algorithm="dynamic-disc-all", gamma=2.0)


class TestDegenerateShapes:
    def test_all_identical_sequences(self):
        db = SequenceDatabase.from_texts(["(a)(b)"] * 5)
        result = mine(db, 5)
        assert result.support("(a)(b)") == 5

    def test_single_long_customer(self):
        db = SequenceDatabase.from_texts(["(a)" * 30])
        result = mine(db, 1)
        # Longest pattern is the sequence itself.
        assert result.max_length() == 30

    def test_wide_single_transaction(self):
        db = SequenceDatabase.from_raw([[list(range(1, 13))]] * 2)
        result = mine(db, 2)
        # All 2^12 - 1 itemset subsets are frequent.
        assert len(result) == 4095

    def test_disjoint_alphabets(self):
        db = SequenceDatabase.from_texts(["(a)(b)", "(c)(d)"])
        result = mine(db, 2)
        assert len(result) == 0
