"""Tests for mining-result verification (repro.mining.verify)."""

from __future__ import annotations

import random

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.sequence import parse
from repro.mining.verify import verify_patterns
from tests.conftest import random_database


class TestVerifyPatterns:
    def test_correct_results_pass(self):
        rng = random.Random(121)
        for _ in range(10):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members) // 2))
            patterns = mine_bruteforce(members, delta)
            report = verify_patterns(patterns, list(db.sequences), delta)
            assert report.ok, report.errors
            assert report.checked_supports == len(patterns)

    def test_detects_wrong_support(self, table1_db):
        patterns = mine_bruteforce(table1_db.members(), 2)
        patterns[parse("(a)")] = 99
        report = verify_patterns(patterns, list(table1_db.sequences), 2)
        assert not report.ok
        assert any("support mismatch" in error for error in report.errors)

    def test_detects_below_threshold(self, table1_db):
        patterns = mine_bruteforce(table1_db.members(), 2)
        patterns[parse("(d)")] = 1  # support 1 < delta 2
        report = verify_patterns(patterns, list(table1_db.sequences), 2)
        assert any("below threshold" in error for error in report.errors)

    def test_detects_missing_prefix(self, table1_db):
        patterns = mine_bruteforce(table1_db.members(), 2)
        del patterns[parse("(a)")]
        report = verify_patterns(patterns, list(table1_db.sequences), 2)
        assert any("missing prefix" in error for error in report.errors)

    def test_detects_missing_extension(self, table1_db):
        patterns = mine_bruteforce(table1_db.members(), 2)
        del patterns[parse("(a)(b)(b)")]
        # Removing a maximal-ish pattern also leaves its prefix dangling;
        # the extension probe finds the hole from below.
        report = verify_patterns(patterns, list(table1_db.sequences), 2)
        assert any(
            "missing frequent extension" in error or "missing prefix" in error
            for error in report.errors
        )

    def test_sampling_bounds_work(self, table1_db):
        patterns = mine_bruteforce(table1_db.members(), 2)
        report = verify_patterns(
            patterns, list(table1_db.sequences), 2, sample=5
        )
        assert report.checked_supports == 5
        assert report.ok

    def test_max_errors_caps_messages(self, table1_db):
        patterns = mine_bruteforce(table1_db.members(), 2)
        broken = {pattern: 999 for pattern in patterns}
        report = verify_patterns(
            broken, list(table1_db.sequences), 2, max_errors=3
        )
        assert len(report.errors) == 3

    def test_summary_format(self, table1_db):
        patterns = mine_bruteforce(table1_db.members(), 2)
        report = verify_patterns(patterns, list(table1_db.sequences), 2)
        assert "verification OK" in report.summary()
