"""Test suite for the repro package (run with ``pytest tests/``)."""
