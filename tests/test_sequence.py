"""Unit tests for the sequence data model (repro.core.sequence)."""

from __future__ import annotations

import random

import pytest

from repro.core.sequence import (
    EMPTY,
    Sequence,
    all_k_subsequences,
    canonical,
    contains,
    flatten,
    format_seq,
    itemset_extension,
    k_prefix,
    leftmost_match,
    parse,
    seq_length,
    sequence_extension,
    support_count,
    unflatten,
    validate,
)
from repro.exceptions import InvalidSequenceError
from tests.conftest import random_sequence


class TestCanonical:
    def test_sorts_and_dedups(self):
        assert canonical([[3, 1, 3], [2]]) == ((1, 3), (2,))

    def test_rejects_empty_itemset(self):
        with pytest.raises(InvalidSequenceError):
            canonical([[1], []])

    def test_rejects_non_integer(self):
        with pytest.raises(InvalidSequenceError):
            canonical([["a"]])

    def test_empty_sequence_allowed(self):
        assert canonical([]) == EMPTY


class TestValidate:
    def test_accepts_canonical(self):
        validate(((1, 2), (3,)))

    @pytest.mark.parametrize(
        "bad",
        [
            ((2, 1),),  # unsorted
            ((1, 1),),  # duplicate
            ((),),  # empty transaction
            [[1]],  # wrong container type
            (("a",),),  # non-integer
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(InvalidSequenceError):
            validate(bad)  # type: ignore[arg-type]


class TestFlatten:
    def test_numbers_transactions_from_one(self):
        assert flatten(((1,), (2, 3), (4,))) == ((1, 1), (2, 2), (3, 2), (4, 3))

    def test_roundtrip(self):
        rng = random.Random(5)
        for _ in range(100):
            raw = random_sequence(rng)
            assert unflatten(flatten(raw)) == raw

    def test_unflatten_rejects_decreasing_numbers(self):
        with pytest.raises(InvalidSequenceError):
            unflatten(((1, 2), (2, 1)))

    def test_unflatten_compacts_gaps(self):
        # Flat prefixes of sequences can skip transaction numbers.
        assert unflatten(((1, 1), (2, 3))) == ((1,), (2,))


class TestLength:
    def test_paper_definition(self):
        # Length = total item occurrences, Section 1.
        assert seq_length(parse("(a)(b)(c, d)(e)")) == 5
        assert seq_length(EMPTY) == 0


class TestKPrefix:
    def test_paper_example(self):
        # Section 3.2: the 3-prefix of <(a)(a, g, h)(c)> is <(a)(a, g)>.
        assert k_prefix(parse("(a)(a, g, h)(c)"), 3) == parse("(a)(a, g)")

    def test_full_prefix_is_identity(self):
        raw = parse("(a, b)(c)")
        assert k_prefix(raw, 3) == raw

    def test_zero_prefix(self):
        assert k_prefix(parse("(a)"), 0) == EMPTY

    def test_too_long_raises(self):
        with pytest.raises(InvalidSequenceError):
            k_prefix(parse("(a)"), 2)

    def test_negative_raises(self):
        with pytest.raises(InvalidSequenceError):
            k_prefix(parse("(a)"), -1)


class TestContainment:
    def test_paper_definition_examples(self, table1_members):
        big = dict(table1_members)[1]  # (a, e, g)(b)(h)(f)(c)(b, f)
        assert contains(big, parse("(a)(b)(b)"))
        assert contains(big, parse("(a, e)(b, f)"))
        assert not contains(big, parse("(b)(a)"))
        assert not contains(big, parse("(a, b)"))

    def test_empty_contained_everywhere(self):
        assert contains(parse("(a)"), EMPTY)

    def test_leftmost_match_indices(self):
        big = parse("(c)(a, b)(a)(b)")
        assert leftmost_match(big, parse("(a)(b)")) == (1, 3)
        assert leftmost_match(big, parse("(a, b)")) == (1,)
        assert leftmost_match(big, parse("(b)(c)")) is None

    def test_self_containment(self):
        rng = random.Random(6)
        for _ in range(50):
            raw = random_sequence(rng)
            assert contains(raw, raw)

    def test_containment_via_subsequence_enumeration(self):
        rng = random.Random(7)
        for _ in range(30):
            raw = random_sequence(rng, max_transactions=4, max_itemset=2)
            for k in range(1, min(4, seq_length(raw)) + 1):
                for sub in all_k_subsequences(raw, k):
                    assert contains(raw, sub)

    def test_support_count(self, table1_members):
        db = [raw for _, raw in table1_members]
        assert support_count(db, parse("(a, g)(b)")) == 2
        assert support_count(db, parse("(z)")) == 0


class TestSubsequenceEnumeration:
    def test_counts_for_single_transaction(self):
        # k-subsequences of one n-itemset are the C(n, k) combinations.
        raw = parse("(a, b, c, d)")
        assert len(all_k_subsequences(raw, 2)) == 6
        assert len(all_k_subsequences(raw, 4)) == 1

    def test_k_zero_and_too_large(self):
        raw = parse("(a)(b)")
        assert all_k_subsequences(raw, 0) == set()
        assert all_k_subsequences(raw, 3) == set()

    def test_distinctness(self):
        # <(a)(a)> has the 1-subsequence <(a)> once, not twice.
        assert all_k_subsequences(parse("(a)(a)"), 1) == {((1,),)}


class TestExtensions:
    def test_itemset_extension(self):
        assert itemset_extension(parse("(a)(b)"), 3) == parse("(a)(b, c)")

    def test_itemset_extension_must_grow(self):
        with pytest.raises(InvalidSequenceError):
            itemset_extension(parse("(a)(c)"), 2)

    def test_itemset_extension_of_empty(self):
        with pytest.raises(InvalidSequenceError):
            itemset_extension(EMPTY, 1)

    def test_sequence_extension(self):
        assert sequence_extension(parse("(a)"), 1) == parse("(a)(a)")


class TestParseFormat:
    def test_roundtrip_letters(self):
        for text in ["(a, e, g)(b)(h)", "(a)", "(a, b)(a, b)"]:
            assert format_seq(parse(text)) == f"<{text}>"

    def test_numeric_tokens(self):
        assert parse("(10, 2)(30)") == ((2, 10), (30,))

    def test_angle_brackets_accepted(self):
        assert parse("<(a)(b)>") == parse("(a)(b)")

    def test_empty_text(self):
        assert parse("") == EMPTY
        assert parse("<>") == EMPTY

    @pytest.mark.parametrize("bad", ["a)(b", "(a,)(b)", "(ab!)", "(a)(b", "x"])
    def test_malformed_raises(self, bad):
        with pytest.raises(InvalidSequenceError):
            parse(bad)

    def test_format_large_items_numeric(self):
        assert format_seq(((27, 100),)) == "<(27, 100)>"


class TestSequenceClass:
    def test_of_and_properties(self):
        s = Sequence.of("(a, b)(c)")
        assert s.length == 3
        assert s.size == 2
        assert s.raw == ((1, 2), (3,))
        assert s.flat == ((1, 1), (2, 1), (3, 2))

    def test_ordering_operators(self):
        assert Sequence.of("(a, b)(c)") < Sequence.of("(a)(b, c)")
        assert Sequence.of("(a)") <= Sequence.of("(a)")
        assert Sequence.of("(b)") > Sequence.of("(a)(z)")

    def test_contains_operator(self):
        assert Sequence.of("(a)(b)") in Sequence.of("(a, e, g)(b)")
        assert Sequence.of("(b)(a)") not in Sequence.of("(a, e, g)(b)")

    def test_hash_and_equality(self):
        s1 = Sequence.of("(a)(b)")
        s2 = Sequence([[1], [2]])
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert len({s1, s2}) == 1

    def test_iteration_and_indexing(self):
        s = Sequence.of("(a, b)(c)")
        assert list(s) == [(1, 2), (3,)]
        assert s[1] == (3,)
        assert len(s) == 2

    def test_repr_and_str(self):
        s = Sequence.of("(a)(b)")
        assert str(s) == "<(a)(b)>"
        assert "Sequence.of" in repr(s)

    def test_from_raw_validates(self):
        with pytest.raises(InvalidSequenceError):
            Sequence.from_raw(((2, 1),))

    def test_k_prefix_method(self):
        assert Sequence.of("(a)(a, g, h)(c)").k_prefix(3) == Sequence.of("(a)(a, g)")
