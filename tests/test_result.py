"""Tests for MiningResult (repro.mining.result)."""

from __future__ import annotations

import pytest

from repro.core.sequence import Sequence, parse
from repro.mining.api import mine
from repro.mining.result import MiningResult


@pytest.fixture
def result(table1_db):
    return mine(table1_db, 2, algorithm="disc-all")


class TestLookups:
    def test_support_accepts_three_forms(self, result):
        assert result.support("(a, g)(b)") == 2
        assert result.support(Sequence.of("(a, g)(b)")) == 2
        assert result.support(parse("(a, g)(b)")) == 2

    def test_support_of_infrequent_is_zero(self, result):
        assert result.support("(z)") == 0

    def test_contains(self, result):
        assert "(a)(b)" in result
        assert Sequence.of("(a)(b)") in result
        assert "(z)" not in result
        assert "garbage((" not in result

    def test_len_and_iter(self, result):
        patterns = list(result)
        assert len(patterns) == len(result) > 0
        assert all(isinstance(p, Sequence) for p in patterns)


class TestViews:
    def test_sorted_patterns_order(self, result):
        ordered = result.sorted_patterns()
        from repro.core.sequence import flatten, seq_length

        keys = [(seq_length(r), flatten(r)) for r in ordered]
        assert keys == sorted(keys)

    def test_of_length(self, result):
        ones = result.of_length(1)
        assert all(len(r) == 1 and len(r[0]) == 1 for r in ones)
        assert set(ones) == {((i,),) for i in (1, 2, 5, 6, 7, 8)}

    def test_max_length_and_histogram(self, result):
        histogram = result.length_histogram()
        assert sum(histogram.values()) == len(result)
        assert max(histogram) == result.max_length()

    def test_maximal_patterns(self, result):
        from repro.core.sequence import contains

        maximal = result.maximal_patterns()
        maximal_list = list(maximal)
        for raw in maximal_list:
            assert not any(
                contains(other, raw) for other in maximal_list if other != raw
            )
        # Every frequent pattern is contained in some maximal one.
        for raw in result.patterns:
            assert any(contains(m, raw) for m in maximal_list)

    def test_decoded_without_vocabulary(self, result):
        rows = result.decoded()
        assert rows[0][1] >= 2  # support attached

    def test_decoded_with_vocabulary(self):
        from repro.db.database import SequenceDatabase

        db = SequenceDatabase.from_itemsets(
            [[["x"], ["y"]], [["x"], ["y"]]]
        )
        res = mine(db, 2)
        decoded = dict(
            (tuple(tuple(t) for t in pat), sup) for pat, sup in res.decoded()
        )
        assert decoded[(("x",), ("y",))] == 2


class TestComparison:
    def test_same_patterns(self, table1_db):
        a = mine(table1_db, 2, algorithm="disc-all")
        b = mine(table1_db, 2, algorithm="spade")
        assert a.same_patterns(b)

    def test_difference_reports_mismatches(self, result):
        other = MiningResult(
            patterns={parse("(a)"): 99, parse("(z)"): 1},
            delta=2,
            algorithm="fake",
            database_size=4,
        )
        diff = result.difference(other)
        assert "<(z)>" in diff["only_there"]
        assert any("<(a)>" in line for line in diff["support_mismatch"])
        assert diff["only_here"]  # plenty of real patterns missing from fake

    def test_summary_mentions_algorithm_and_counts(self, result):
        text = result.summary()
        assert "disc-all" in text
        assert "frequent sequences" in text
        assert "L1: 6" in text


class TestClosedPatterns:
    def test_closed_definition(self, result):
        """No closed pattern has a frequent super-pattern of equal support,
        and every frequent pattern has a closed super-pattern (or itself)
        of the same support."""
        from repro.core.sequence import contains

        closed = result.closed_patterns()
        for raw, count in closed.items():
            assert not any(
                contains(other, raw) and other != raw
                for other, other_count in result.patterns.items()
                if other_count == count
            )
        for raw, count in result.patterns.items():
            assert any(
                c_count == count and contains(c_raw, raw)
                for c_raw, c_count in closed.items()
            )

    def test_closed_supersets_of_maximal(self, result):
        # maximal subset-of closed always holds.
        assert set(result.maximal_patterns()) <= set(result.closed_patterns())


class TestRenderTree:
    def test_nesting_structure(self, result):
        text = result.render_tree(max_depth=2)
        lines = text.splitlines()
        assert any(line.startswith("<(a)>") for line in lines)
        # Level-2 patterns are indented under their 1-prefix.
        roots = [l for l in lines if not l.startswith(" ")]
        nested = [l for l in lines if l.startswith("  ")]
        assert len(roots) == 6  # frequent 1-sequences of Table 1
        assert nested

    def test_supports_shown(self, result):
        text = result.render_tree(max_depth=1)
        assert "<(b)>: 4" in text

    def test_min_support_filter(self, result):
        strong = result.render_tree(min_support=4)
        assert "<(b)>: 4" in strong
        assert "<(a)>" not in strong  # support 2

    def test_all_patterns_appear_without_filters(self, result):
        text = result.render_tree()
        assert len(text.splitlines()) == len(result)
