"""Unit tests for the per-worker circuit breaker state machine.

Driven entirely by a fake clock, so open→half-open backoffs are tested
exactly — no sleeps, no wall-clock flake.
"""

from __future__ import annotations

import pytest

from repro.cluster.breaker import (
    BREAKER_STATE_CODES,
    BreakerConfig,
    CircuitBreaker,
)
from repro.exceptions import InvalidParameterError


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(threshold: int = 3, reset: float = 5.0, **kwargs):
    clock = FakeClock()
    config = BreakerConfig(
        failure_threshold=threshold, reset_seconds=reset, **kwargs
    )
    return CircuitBreaker(config, clock=clock), clock


class TestConfigValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(InvalidParameterError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)

    def test_reset_must_be_positive(self):
        with pytest.raises(InvalidParameterError, match="reset_seconds"):
            BreakerConfig(reset_seconds=0.0)

    def test_backoff_factor_at_least_one(self):
        with pytest.raises(InvalidParameterError, match="backoff_factor"):
            BreakerConfig(backoff_factor=0.5)

    def test_max_reset_covers_reset(self):
        with pytest.raises(InvalidParameterError, match="max_reset_seconds"):
            BreakerConfig(reset_seconds=10.0, max_reset_seconds=5.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _clock = make()
        assert breaker.state == "closed"
        assert breaker.ready()
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _clock = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert not breaker.ready()

    def test_success_resets_the_failure_streak(self):
        breaker, _clock = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_admits_one_probe_after_backoff(self):
        breaker, clock = make(threshold=1, reset=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.ready()
        clock.advance(0.2)
        assert breaker.ready()
        assert breaker.allow()  # takes the probe slot
        assert breaker.state == "half_open"
        assert not breaker.allow()  # second caller refused

    def test_probe_success_closes(self):
        breaker, clock = make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_with_doubled_backoff(self):
        breaker, clock = make(threshold=1, reset=5.0, backoff_factor=2.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed: backoff now 10s
        assert breaker.state == "open"
        clock.advance(5.0)
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()

    def test_backoff_is_capped(self):
        breaker, clock = make(
            threshold=1, reset=5.0, backoff_factor=10.0, max_reset_seconds=20.0
        )
        for _ in range(4):  # each failed probe multiplies, capped at 20s
            breaker.record_failure()
            clock.advance(60.0)
            assert breaker.allow()
        breaker.record_failure()
        clock.advance(20.0)
        assert breaker.allow()

    def test_cancel_probe_releases_the_slot(self):
        breaker, clock = make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        assert not breaker.allow()
        breaker.cancel_probe()
        assert breaker.allow()  # slot available again

    def test_straggling_failure_while_open_changes_nothing(self):
        breaker, clock = make(threshold=1, reset=5.0)
        breaker.record_failure()
        breaker.record_failure()  # late failure from an in-flight request
        clock.advance(5.0)
        assert breaker.allow()  # backoff was not extended


class TestObservability:
    def test_snapshot_shows_state_and_retry_window(self):
        breaker, clock = make(threshold=1, reset=5.0)
        assert breaker.snapshot() == {
            "state": "closed", "consecutive_failures": 0,
        }
        breaker.record_failure()
        clock.advance(2.0)
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["retry_in_seconds"] == pytest.approx(3.0)

    def test_listener_sees_each_transition_in_order(self):
        transitions = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, reset_seconds=5.0),
            clock=clock, listener=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert transitions == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]

    def test_state_codes_rise_with_severity(self):
        assert BREAKER_STATE_CODES == {"closed": 0, "half_open": 1, "open": 2}
