"""Tests for database text IO (repro.db.io)."""

from __future__ import annotations

import io
import random

import pytest

from repro.db import io as dbio
from repro.db.database import SequenceDatabase
from repro.exceptions import DataFormatError
from tests.conftest import random_database


class TestSpmf:
    def test_roundtrip_table1(self, table1_db):
        assert dbio.roundtrip_equal(table1_db, "spmf")

    def test_roundtrip_random(self):
        rng = random.Random(91)
        for _ in range(20):
            assert dbio.roundtrip_equal(random_database(rng), "spmf")

    def test_exact_format(self):
        db = SequenceDatabase.from_texts(["(a, b)(c)"])
        buffer = io.StringIO()
        dbio.write_spmf(db, buffer)
        assert buffer.getvalue() == "1 2 -1 3 -1 -2\n"

    def test_reads_comments_and_blanks(self):
        text = "# header\n\n1 -1 -2\n"
        assert len(dbio.read_spmf(io.StringIO(text))) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "1 -1",  # missing -2
            "1 -2",  # itemset not closed
            "-1 -2",  # empty itemset
            "-2",  # empty sequence
            "x -1 -2",  # bad token
            "0 -1 -2",  # non-positive item
        ],
    )
    def test_malformed_lines(self, line):
        with pytest.raises(DataFormatError):
            dbio.read_spmf(io.StringIO(line + "\n"))

    def test_file_roundtrip(self, tmp_path, table1_db):
        path = tmp_path / "db.spmf"
        dbio.write_spmf(table1_db, path)
        assert dbio.read_spmf(path) == table1_db


class TestPaperFormat:
    def test_roundtrip(self, table1_db):
        assert dbio.roundtrip_equal(table1_db, "paper")

    def test_file_roundtrip(self, tmp_path, table1_db):
        path = tmp_path / "db.txt"
        dbio.write_paper(table1_db, path)
        assert dbio.read_paper(path) == table1_db

    def test_unknown_roundtrip_format(self, table1_db):
        with pytest.raises(DataFormatError):
            dbio.roundtrip_equal(table1_db, "json")


class TestTransactionLog:
    CSV = (
        "customer,ts,item\n"
        "alice,2024-01-01,milk\n"
        "alice,2024-01-01,bread\n"
        "alice,2024-01-05,eggs\n"
        "bob,2024-02-01,milk\n"
    )

    def test_groups_and_orders(self):
        db = dbio.read_transaction_log(io.StringIO(self.CSV))
        assert len(db) == 2
        vocab = db.vocabulary
        assert vocab is not None
        alice = vocab.decode(db[1])
        assert [sorted(t) for t in alice] == [["bread", "milk"], ["eggs"]]
        bob = vocab.decode(db[2])
        assert bob == [["milk"]]

    def test_duplicate_rows_merge(self):
        csv_text = "c,t,i\n1,a,x\n1,a,x\n"
        db = dbio.read_transaction_log(io.StringIO(csv_text))
        assert db[1] == ((1,),)

    def test_short_row_raises(self):
        with pytest.raises(DataFormatError):
            dbio.read_transaction_log(io.StringIO("c,t,i\n1,a\n"))

    def test_no_header(self):
        db = dbio.read_transaction_log(
            io.StringIO("1,a,x\n1,b,y\n"), has_header=False
        )
        assert len(db) == 1
        assert len(db[1]) == 2

    def test_file_input(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(self.CSV)
        db = dbio.read_transaction_log(path)
        assert len(db) == 2


class TestTimedTransactionLog:
    CSV = (
        "customer,ts,item\n"
        "alice,1.5,milk\n"
        "alice,1.5,bread\n"
        "alice,9,eggs\n"
        "bob,2,milk\n"
    )

    def test_times_preserved(self):
        timed, vocab = dbio.read_timed_transaction_log(io.StringIO(self.CSV))
        assert len(timed) == 2
        alice = timed[0]
        assert alice.times == (1.5, 9.0)
        decoded = [
            sorted(vocab.item_of(i) for i in txn) for txn in alice.raw
        ]
        assert decoded == [["bread", "milk"], ["eggs"]]

    def test_usable_by_mine_timed(self):
        from repro.ext.time_constraints import TimeConstraints, mine_timed

        timed, vocab = dbio.read_timed_transaction_log(io.StringIO(self.CSV))
        patterns = mine_timed(timed, 2)
        assert ((vocab.id_of("milk"),),) in patterns

    def test_non_numeric_time_rejected(self):
        bad = "c,t,i\n1,notatime,x\n"
        with pytest.raises(DataFormatError):
            dbio.read_timed_transaction_log(io.StringIO(bad))

    def test_short_row_rejected(self):
        with pytest.raises(DataFormatError):
            dbio.read_timed_transaction_log(io.StringIO("c,t,i\n1,2\n"))
