"""Tests for the feature-extraction pipeline (repro.ext.features)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.sequence import contains, parse
from repro.exceptions import InvalidParameterError
from repro.ext.features import PatternFeaturizer, select_features
from tests.conftest import random_database


class TestSelectFeatures:
    def test_length_bounds(self, table1_members):
        raws = [raw for _, raw in table1_members]
        patterns = mine_bruteforce(table1_members, 2)
        features = select_features(patterns, raws, min_length=2, max_length=3)
        from repro.core.sequence import seq_length

        assert features
        assert all(2 <= seq_length(f) <= 3 for f in features)

    def test_max_features_cap(self, table1_members):
        raws = [raw for _, raw in table1_members]
        patterns = mine_bruteforce(table1_members, 2)
        assert len(select_features(patterns, raws, max_features=5)) == 5

    def test_redundancy_pruning(self):
        # Two patterns with identical supporter sets: only one survives.
        raws = [parse("(a)(b)"), parse("(a)(b)"), parse("(c)")]
        patterns = mine_bruteforce(list(enumerate(raws, 1)), 2)
        features = select_features(patterns, raws)
        # <(a)>, <(b)>, <(a)(b)> all match exactly customers 1-2.
        signatures = set()
        for f in features:
            signatures.add(
                frozenset(i for i, raw in enumerate(raws) if contains(raw, f))
            )
        assert len(signatures) == len(features)

    def test_no_pruning_keeps_duplicates(self):
        raws = [parse("(a)(b)")] * 2
        patterns = mine_bruteforce(list(enumerate(raws, 1)), 2)
        pruned = select_features(patterns, raws)
        unpruned = select_features(patterns, raws, prune_redundant=False)
        assert len(unpruned) == len(patterns) > len(pruned)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            select_features({}, [], min_length=0)
        with pytest.raises(InvalidParameterError):
            select_features({}, [], min_length=3, max_length=2)


class TestPatternFeaturizer:
    def test_vectors_match_containment(self):
        rng = random.Random(161)
        for _ in range(10):
            db = random_database(rng)
            members = db.members()
            raws = [raw for _, raw in members]
            patterns = mine_bruteforce(members, max(1, len(raws) // 2))
            if not patterns:
                continue
            featurizer = PatternFeaturizer(list(patterns))
            matrix = featurizer.transform(raws)
            assert matrix.shape == (len(raws), len(featurizer))
            for i, raw in enumerate(raws):
                for j, pattern in enumerate(featurizer.features):
                    assert matrix[i, j] == int(contains(raw, pattern))

    def test_dtype_and_empty(self):
        featurizer = PatternFeaturizer([parse("(a)")])
        assert featurizer.transform([]).shape == (0, 1)
        vec = featurizer.transform_one(parse("(a)(b)"))
        assert vec.dtype == np.int8
        assert vec.tolist() == [1]

    def test_feature_names(self):
        featurizer = PatternFeaturizer([parse("(a)(b)")])
        assert featurizer.feature_names() == ["<(a)(b)>"]

    def test_requires_patterns(self):
        with pytest.raises(InvalidParameterError):
            PatternFeaturizer([])

    def test_features_separate_classes(self):
        """End-to-end sanity: features distinguish two behaviour groups."""
        group_a = [parse("(a)(b)(c)")] * 5
        group_b = [parse("(c)(b)(a)")] * 5
        raws = group_a + group_b
        patterns = mine_bruteforce(list(enumerate(raws, 1)), 5)
        features = select_features(patterns, raws, min_length=2)
        matrix = PatternFeaturizer(features).transform(raws)
        # Some feature must split the groups perfectly.
        labels = np.array([0] * 5 + [1] * 5)
        split = any(
            (matrix[:, j] == labels).all() or (matrix[:, j] == 1 - labels).all()
            for j in range(matrix.shape[1])
        )
        assert split
