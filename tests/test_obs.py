"""Tests for the observability layer (repro.obs)."""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import DataFormatError
from repro.mining.api import mine
from repro.mining.serialize import load_result, save_result
from repro.obs import (
    NOOP_OBSERVATION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
    NoopTracer,
    RunReport,
    SpanRecord,
    Tracer,
    activated,
    active,
    observation,
    render_name,
)


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("disc.comparisons")
        counter.add()
        counter.add(4)
        assert registry.counter("disc.comparisons") is counter
        assert counter.value == 5

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("counting.frequent", k=1).add(3)
        registry.counter("counting.frequent", k=2).add(7)
        assert registry.counter("counting.frequent", k=1).value == 3
        assert registry.counter("counting.frequent", k=2).value == 7
        assert registry.counter_total("counting.frequent") == 10

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("x", k=1, phase="a")
        b = registry.counter("x", phase="a", k=1)
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_gauge_tracks_maximum(self):
        gauge = MetricsRegistry().gauge("tree.size")
        gauge.set(5)
        gauge.set(11)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.maximum == 11

    def test_len_and_iter(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.counter("a", k=1)
        registry.gauge("b")
        assert len(registry) == 3
        assert {metric.name for metric in registry} == {"a", "b"}

    def test_snapshot_keys_are_rendered_names(self):
        registry = MetricsRegistry()
        registry.counter("disc.comparisons", k=4).add(9)
        snap = registry.snapshot()
        assert snap["disc.comparisons{k=4}"]["value"] == 9
        assert snap["disc.comparisons{k=4}"]["type"] == "counter"

    def test_render_name(self):
        assert render_name("plain", ()) == "plain"
        assert render_name("x", (("a", 1), ("k", 4))) == "x{a=1,k=4}"


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        hist = Histogram("sizes", bounds=(1, 5, 10))
        hist.record(1)
        hist.record(5)
        hist.record(6)
        hist.record(11)
        assert hist.buckets() == {"<=1": 1, "<=5": 1, "<=10": 1, "+Inf": 1}

    def test_summary_statistics(self):
        hist = Histogram("sizes", bounds=(10,))
        for value in (3, 7, 12):
            hist.record(value)
        assert hist.count == 3
        assert hist.total == 22
        assert hist.minimum == 3
        assert hist.maximum == 12

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(5, 1))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1, 1))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("mine", algorithm="disc-all"):
            with tracer.span("partition", lam=3):
                pass
            with tracer.span("partition", lam=5):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "mine"
        assert root.attrs == {"algorithm": "disc-all"}
        assert [child.name for child in root.children] == ["partition", "partition"]
        assert tracer.depth == 0

    def test_durations_are_monotone(self):
        ticks = iter(range(100))
        tracer = Tracer(clock=lambda: next(ticks))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration > 0

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("mine"):
                with tracer.span("algorithm"):
                    raise ValueError("boom")
        root = tracer.roots[0]
        assert root.error == "ValueError"
        assert root.children[0].error == "ValueError"
        assert root.ended is not None
        assert root.children[0].ended is not None
        assert tracer.depth == 0

    def test_render_indents_children(self):
        tracer = Tracer()
        with tracer.span("mine"):
            with tracer.span("algorithm"):
                pass
        lines = tracer.render().splitlines()
        assert lines[0].startswith("mine")
        assert lines[1].startswith("  algorithm")

    def test_span_record_round_trip(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("mine", delta=3):
                with tracer.span("algorithm"):
                    raise RuntimeError
        rebuilt = SpanRecord.from_dict(tracer.roots[0].to_dict())
        assert rebuilt.name == "mine"
        assert rebuilt.attrs == {"delta": 3}
        assert rebuilt.error == "RuntimeError"
        assert [child.name for child in rebuilt.children] == ["algorithm"]


class TestNoopPath:
    def test_noop_registry_hands_out_shared_singletons(self):
        registry = NoopMetricsRegistry()
        a = registry.counter("disc.comparisons", k=4)
        b = registry.counter("anything.else")
        assert a is b
        a.add(1_000)
        assert a.value == 0
        registry.gauge("g").set(9)
        assert registry.gauge("g").value == 0.0
        registry.histogram("h").record(5)
        assert registry.histogram("h").count == 0

    def test_noop_tracer_shares_one_span(self):
        tracer = NoopTracer()
        a = tracer.span("mine")
        b = tracer.span("partition", k=4)
        assert a is b
        with a as record:
            with b as inner:
                assert inner is record
        assert tracer.roots == []
        assert tracer.depth == 0

    def test_default_observation_is_noop(self):
        assert active() is NOOP_OBSERVATION
        assert not NOOP_OBSERVATION.enabled

    def test_activated_sets_and_resets(self):
        obs = observation()
        assert obs.enabled
        with activated(obs) as current:
            assert current is obs
            assert active() is obs
        assert active() is NOOP_OBSERVATION

    def test_activated_restores_on_exception(self):
        with pytest.raises(ValueError):
            with activated(observation()):
                raise ValueError
        assert active() is NOOP_OBSERVATION

    def test_metrics_only_observation(self):
        obs = observation(trace=False)
        assert isinstance(obs.tracer, NoopTracer)
        assert not isinstance(obs.metrics, NoopMetricsRegistry)

    def test_filtered_registry_materialises_only_named_counters(self):
        from repro.obs import FilteredMetricsRegistry, stats_observation

        registry = FilteredMetricsRegistry({"disc.comparisons"})
        real = registry.counter("disc.comparisons")
        real.add(3)
        assert registry.counter_total("disc.comparisons") == 3
        noop = registry.counter("disc.lemma1_frequent", k=4)
        noop.add(9)
        assert registry.counter_total("disc.lemma1_frequent") == 0
        registry.histogram("partition.first_level_size").record(5)
        registry.gauge("tree.size").set(2)
        assert len(registry) == 1  # only the whitelisted counter exists

        obs = stats_observation({"disc.comparisons"})
        assert obs.enabled
        assert isinstance(obs.metrics, FilteredMetricsRegistry)
        assert isinstance(obs.tracer, NoopTracer)


class TestRunReport:
    def _report(self) -> RunReport:
        obs = observation()
        with activated(obs):
            metrics = active().metrics
            metrics.counter("disc.comparisons", k=4).add(31)
            metrics.counter("disc.comparisons", k=5).add(11)
            metrics.gauge("tree.size").set(7)
            metrics.histogram("partition.first_level_size").record(12)
            with obs.tracer.span("mine"):
                with obs.tracer.span("algorithm"):
                    pass
                with obs.tracer.span("post_filter"):
                    pass
        return obs.report()

    def test_counter_queries(self):
        report = self._report()
        assert report.counter_value("disc.comparisons", k=4) == 31
        assert report.counter_value("disc.comparisons", k=9) == 0
        assert report.counter_value("absent") == 0
        assert report.counter_total("disc.comparisons") == 42

    def test_phase_totals_cover_the_tree(self):
        report = self._report()
        totals = report.phase_totals()
        assert set(totals) == {"mine", "algorithm", "post_filter"}
        assert totals["mine"] >= totals["algorithm"] + totals["post_filter"]

    def test_json_round_trip(self):
        report = self._report()
        rebuilt = RunReport.from_json(report.to_json())
        assert rebuilt.metrics == report.metrics
        assert rebuilt.counter_total("disc.comparisons") == 42
        assert [span.name for span in rebuilt.spans] == ["mine"]
        assert rebuilt.phase_totals().keys() == report.phase_totals().keys()

    def test_render_mentions_phases_and_metrics(self):
        text = self._report().render()
        assert "phases:" in text
        assert "mine" in text
        assert "disc.comparisons{k=4} = 31" in text

    def test_wrong_format_rejected(self):
        with pytest.raises(DataFormatError):
            RunReport.from_dict({"format": "other", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(DataFormatError):
            RunReport.from_dict({"format": "repro.run-report", "version": 99})

    def test_malformed_payload_rejected(self):
        with pytest.raises(DataFormatError):
            RunReport.from_dict({"format": "repro.run-report", "version": 1})
        with pytest.raises(DataFormatError):
            RunReport.from_json("not json {")


@pytest.fixture(scope="module")
def quest_db():
    from repro.datagen import QuestParams, generate

    return generate(
        QuestParams(ncust=150, slen=6, tlen=3, nitems=50, patlen=5, npats=40, seed=7)
    )


class TestMineIntegration:
    """Counter totals reconcile with the mined result (the paper's claims)."""

    def test_lemma_counters_reconcile_with_pattern_counts(self, quest_db):
        result = mine(quest_db, 0.05, algorithm="disc-all-plain", observe=True)
        report = result.report
        assert report is not None
        for k in range(1, result.max_length() + 1):
            actual = len(result.of_length(k))
            if k <= 3:
                # lengths 1-3 are counted by the partition/counting stages
                assert report.counter_value("counting.frequent", k=k) == actual
            else:
                # every frequent k-sequence (k >= 4) is a Lemma 2.1 discovery
                assert report.counter_value("disc.lemma1_frequent", k=k) == actual

    def test_comparisons_split_by_outcome(self, quest_db):
        report = mine(quest_db, 0.05, algorithm="disc-all-plain", observe=True).report
        assert report is not None
        comparisons = report.counter_total("disc.comparisons")
        lemma1 = report.counter_total("disc.lemma1_frequent")
        lemma2 = report.counter_total("disc.lemma2_prunes")
        assert comparisons == lemma1 + lemma2
        assert comparisons > 0

    def test_bilevel_lemma1_covers_long_patterns(self, quest_db):
        result = mine(quest_db, 0.05, observe=True)  # disc-all (bi-level)
        report = result.report
        assert report is not None
        long_patterns = sum(
            count for length, count in result.length_histogram().items()
            if length >= 4
        )
        assert report.counter_total("disc.lemma1_frequent") == long_patterns

    def test_span_tree_sums_to_elapsed(self, quest_db):
        result = mine(quest_db, 0.05, observe=True)
        report = result.report
        assert report is not None
        assert [span.name for span in report.spans] == ["mine"]
        root = report.spans[0]
        assert {child.name for child in root.children} >= {"algorithm", "post_filter"}
        # the root span and elapsed_seconds time the same scope
        assert root.duration == pytest.approx(result.elapsed_seconds, rel=0.25)
        assert root.duration <= result.elapsed_seconds

    def test_post_filters_are_timed(self, table1_db):
        result = mine(table1_db, 2, closed=True, observe=True)
        report = result.report
        assert report is not None
        totals = report.phase_totals()
        assert "post_filter" in totals

    def test_no_report_without_observe(self, table1_db):
        result = mine(table1_db, 2)
        assert result.report is None
        assert active() is NOOP_OBSERVATION

    def test_stats_survive_without_observer(self, table6_members):
        # disc_all derives DiscAllStats from a private registry when no
        # ambient observation is active — the read-out must stay exact
        from repro.core.discall import disc_all

        out = disc_all(table6_members, 3)
        assert out.stats.first_level_partitions > 0
        assert out.stats.disc_comparisons > 0


class TestSerializeReport:
    def test_report_round_trips_when_included(self, table1_db):
        result = mine(table1_db, 2, observe=True)
        buffer = io.StringIO()
        save_result(result, buffer, include_report=True)
        buffer.seek(0)
        loaded = load_result(buffer)
        assert loaded.report is not None
        assert loaded.report.metrics == result.report.metrics
        assert loaded.same_patterns(result)

    def test_report_excluded_by_default(self, table1_db):
        result = mine(table1_db, 2, observe=True)
        buffer = io.StringIO()
        save_result(result, buffer)
        payload = json.loads(buffer.getvalue())
        assert "report" not in payload
        buffer.seek(0)
        assert load_result(buffer).report is None


class TestConcurrentObservation:
    """Reports are contextvar-scoped: parallel runs must not bleed."""

    def test_parallel_mine_reports_do_not_cross_contaminate(self):
        import threading

        from repro.db.database import SequenceDatabase

        # Databases of different sizes: every mining counter (rounds,
        # partitions, comparisons) takes a different value per database,
        # so any cross-thread contamination shows up as a mismatch
        # against the serial baseline.
        databases = [
            SequenceDatabase.from_texts(["(1)(2)(3)(4)(5)(6)"] * n)
            for n in (3, 5, 7, 9)
        ]
        baselines = [
            mine(db, 2, observe=True).report.metrics for db in databases
        ]

        def counters(metrics: dict) -> dict:
            return {
                key: entry["value"]
                for key, entry in metrics.items()
                if entry["type"] == "counter"
            }

        for _ in range(5):  # repeat: interleavings vary run to run
            reports = [None] * len(databases)
            errors = []

            def run(index: int, db: SequenceDatabase) -> None:
                try:
                    reports[index] = mine(db, 2, observe=True).report
                except Exception as exc:  # propagated to the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i, db))
                for i, db in enumerate(databases)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert errors == []
            for report, baseline in zip(reports, baselines):
                assert report is not None
                assert counters(report.metrics) == counters(baseline)
