"""Unit tests for the chaos-soak report schema and grading."""

from __future__ import annotations

from repro.bench.soak_report import (
    DEGRADED,
    FAIL,
    PASS,
    SOAK_FORMAT,
    SOAK_VERSION,
    build_report,
    classify_outcome,
    recovery_latencies,
    render_report,
    transition_log,
)

OK_INVARIANTS = {
    "every_accepted_job_finished": True,
    "results_byte_identical": True,
    "event_log_validates": True,
    "no_orphaned_dispatch_threads": True,
}


def event(name: str, ts: float, worker: str = "http://w:1", **fields):
    return {"event": name, "ts": ts, "worker": worker, **fields}


class TestClassification:
    def test_clean_done_job_passes(self):
        grade, _ = classify_outcome(
            {"kind": "mine", "status": "done", "matched": True}
        )
        assert grade == PASS

    def test_mismatched_result_fails(self):
        grade, reason = classify_outcome(
            {"kind": "mine", "status": "done", "matched": False}
        )
        assert grade == FAIL and "reference" in reason

    def test_lost_job_fails(self):
        grade, reason = classify_outcome(
            {"kind": "mine", "status": "timeout", "error": "stuck"}
        )
        assert grade == FAIL and "stuck" in reason

    def test_missed_cache_hit_degrades(self):
        grade, _ = classify_outcome(
            {"kind": "cache", "status": "done", "cached": False, "matched": True}
        )
        assert grade == DEGRADED

    def test_served_cache_hit_passes(self):
        grade, _ = classify_outcome(
            {"kind": "cache", "status": "done", "cached": True}
        )
        assert grade == PASS

    def test_retried_completion_degrades(self):
        grade, _ = classify_outcome(
            {"kind": "mine", "status": "done", "degraded": True}
        )
        assert grade == DEGRADED

    def test_overload_probe_rejected_or_served_passes(self):
        assert classify_outcome({"kind": "reject", "status": "rejected"})[0] == PASS
        assert classify_outcome({"kind": "reject", "status": "done"})[0] == PASS
        assert classify_outcome({"kind": "reject", "status": "failed"})[0] == FAIL


class TestVerdict:
    def test_all_pass(self):
        report = build_report(
            [{"kind": "mine", "status": "done", "matched": True}],
            OK_INVARIANTS,
        )
        assert report["format"] == SOAK_FORMAT
        assert report["version"] == SOAK_VERSION
        assert report["verdict"] == PASS
        assert report["counts"] == {PASS: 1, DEGRADED: 0, FAIL: 0}

    def test_degraded_lines_degrade_the_verdict(self):
        report = build_report(
            [
                {"kind": "mine", "status": "done"},
                {"kind": "cache", "status": "done", "cached": False},
            ],
            OK_INVARIANTS,
        )
        assert report["verdict"] == DEGRADED
        assert report["counts"][DEGRADED] == 1

    def test_any_fail_line_fails(self):
        report = build_report(
            [{"kind": "mine", "status": "failed", "error": "boom"}],
            OK_INVARIANTS,
        )
        assert report["verdict"] == FAIL

    def test_broken_invariant_fails_even_when_lines_pass(self):
        invariants = dict(OK_INVARIANTS, no_orphaned_dispatch_threads=False)
        report = build_report(
            [{"kind": "mine", "status": "done", "matched": True}],
            invariants,
        )
        assert report["verdict"] == FAIL
        assert report["broken_invariants"] == ["no_orphaned_dispatch_threads"]


class TestEventDerivations:
    def test_transition_log_keeps_lifecycle_events_in_order(self):
        events = [
            event("worker.joined", 1.0),
            event("shard.completed", 2.0, lam=3),
            event("breaker.opened", 3.0, previous="closed"),
            event("worker.retired", 4.0),
        ]
        log = transition_log(events)
        assert [entry["event"] for entry in log] == [
            "worker.joined", "breaker.opened", "worker.retired",
        ]
        assert log[1]["previous"] == "closed"

    def test_recovery_latency_measures_rejoin_then_mining(self):
        url = "http://w:1"
        events = [
            event("worker.joined", 10.0, url),
            event("shard.completed", 11.0, url),  # before the kill: ignored
            event("worker.joined", 20.0, url),    # the rejoin
            event("shard.completed", 21.5, url),  # mining again
        ]
        (entry,) = recovery_latencies([{"worker": url, "ts": 15.0}], events)
        assert entry["rejoin_seconds"] == 5.0
        assert entry["first_shard_after_rejoin_seconds"] == 1.5

    def test_recovery_without_rejoin_reports_none(self):
        (entry,) = recovery_latencies(
            [{"worker": "http://w:1", "ts": 15.0}], []
        )
        assert entry["rejoin_seconds"] is None
        assert entry["first_shard_after_rejoin_seconds"] is None


class TestRendering:
    def test_render_names_failures_and_recovery(self):
        report = build_report(
            [
                {"kind": "mine", "status": "done", "matched": True},
                {"kind": "mine", "job_id": "j-2", "status": "failed",
                 "error": "boom"},
            ],
            dict(OK_INVARIANTS, event_log_validates=False),
            events=[
                event("worker.joined", 20.0),
                event("shard.completed", 21.0),
            ],
            kills=[{"worker": "http://w:1", "ts": 15.0}],
        )
        text = render_report(report)
        assert "soak verdict: fail" in text
        assert "INVARIANT BROKEN: event_log_validates" in text
        assert "fail: j-2" in text
        assert "recovery http://w:1" in text
