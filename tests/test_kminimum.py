"""Unit tests for the k-minimum machinery (repro.core.kminimum)."""

from __future__ import annotations

import random

import pytest

from repro.core.kminimum import (
    CkmsQuery,
    FrequentNode,
    SortedFrequentList,
    apriori_ckms,
    apriori_ckms_entry,
    apriori_kms,
    apriori_kms_entry,
    build_extension,
    extension_pairs,
    min_extension,
    min_extension_pair,
    minimum_k_subsequence,
    minimum_k_subsequence_brute,
    next_key_after,
    verify_sorted,
)
from repro.core.sequence import (
    all_k_subsequences,
    contains,
    flatten,
    k_prefix,
    parse,
    seq_length,
)
from tests.conftest import random_sequence


def brute_extensions(seq, prefix):
    """Ground truth for extension_pairs via full enumeration."""
    k = seq_length(prefix) + 1
    pairs = set()
    for sub in all_k_subsequences(seq, k):
        if k_prefix(sub, k - 1) == prefix:
            pairs.add(flatten(sub)[-1])
    return pairs


class TestExtensionPairs:
    def test_against_bruteforce_random(self):
        rng = random.Random(21)
        for _ in range(150):
            seq = random_sequence(rng, max_transactions=4, max_itemset=3)
            k = rng.randint(1, min(3, seq_length(seq)))
            for prefix in all_k_subsequences(seq, k):
                assert extension_pairs(seq, prefix) == brute_extensions(seq, prefix)

    def test_empty_prefix_yields_items(self):
        assert extension_pairs(parse("(a, b)(c)"), ()) == {(1, 1), (2, 1), (3, 1)}

    def test_uncontained_prefix(self):
        assert extension_pairs(parse("(a)(b)"), parse("(c)")) == set()

    def test_itemset_vs_sequence_forms(self):
        pairs = extension_pairs(parse("(a, b)(b)"), parse("(a)"))
        assert pairs == {(2, 1), (2, 2)}  # <(a, b)> and <(a)(b)>


class TestBuildExtension:
    def test_forms(self):
        assert build_extension(parse("(a)"), (2, 1)) == parse("(a, b)")
        assert build_extension(parse("(a)"), (2, 2)) == parse("(a)(b)")

    def test_bad_transaction_number(self):
        with pytest.raises(ValueError):
            build_extension(parse("(a)"), (2, 5))


class TestMinExtension:
    def test_unbounded_equals_brute_minimum(self):
        rng = random.Random(22)
        for _ in range(150):
            seq = random_sequence(rng, max_transactions=4, max_itemset=3)
            k = rng.randint(1, min(3, seq_length(seq)))
            for prefix in all_k_subsequences(seq, k):
                got = min_extension(seq, prefix)
                pairs = brute_extensions(seq, prefix)
                if not pairs:
                    assert got is None
                else:
                    assert got == build_extension(prefix, min(pairs))

    def test_bounded_equals_filtered_brute(self):
        rng = random.Random(23)
        checked = 0
        while checked < 200:
            seq = random_sequence(rng, max_transactions=4, max_itemset=3)
            k = rng.randint(1, min(3, seq_length(seq)))
            prefixes = list(all_k_subsequences(seq, k))
            if not prefixes:
                continue
            prefix = rng.choice(prefixes)
            pairs = brute_extensions(seq, prefix)
            if not pairs:
                continue
            bound = rng.choice(sorted(pairs))
            for strict in (False, True):
                allowed = {p for p in pairs if (p > bound if strict else p >= bound)}
                got = min_extension(seq, prefix, bound=bound, strict=strict)
                if not allowed:
                    assert got is None
                else:
                    assert got == build_extension(prefix, min(allowed))
            checked += 1

    def test_ckms_counterexample_to_leftmost_matching(self):
        """The DESIGN.md deviation: S = <(a)(a, b)>, F = <(a)>, bound
        >= <(a, b)>.  Extending only the leftmost match of F yields
        <(a)(b)>; the true conditional minimum is <(a, b)>, hosted by
        the second transaction."""
        seq = parse("(a)(a, b)")
        got = min_extension(seq, parse("(a)"), bound=(2, 1), strict=False)
        assert got == parse("(a, b)")

    def test_empty_prefix(self):
        assert min_extension(parse("(b)(a)"), ()) == parse("(a)")
        assert min_extension(parse("(b)(a)"), (), bound=(1, 1), strict=True) == parse("(b)")
        assert min_extension(parse("(a)"), (), bound=(1, 1), strict=True) is None


class TestMinimumKSubsequence:
    def test_matches_brute_on_random(self):
        rng = random.Random(24)
        for _ in range(100):
            seq = random_sequence(rng, max_transactions=4, max_itemset=3)
            for k in range(1, min(4, seq_length(seq)) + 1):
                assert minimum_k_subsequence(seq, k) == minimum_k_subsequence_brute(seq, k)

    def test_too_long_returns_none(self):
        assert minimum_k_subsequence(parse("(a)"), 2) is None

    def test_nonpositive_k(self):
        assert minimum_k_subsequence(parse("(a)"), 0) is None

    def test_first_item_not_always_minimum_item(self):
        # <(c)(a)>: minimum item a starts no 2-subsequence.
        assert minimum_k_subsequence(parse("(c)(a)"), 2) == parse("(c)(a)")


class TestSortedFrequentList:
    def test_orders_ascending(self):
        flist = SortedFrequentList([parse("(b)"), parse("(a)(z)"), parse("(a, b)")])
        assert verify_sorted([flist[i] for i in range(len(flist))])

    def test_bisect(self):
        flist = SortedFrequentList([parse("(a)"), parse("(b)"), parse("(d)")])
        assert flist.index_at_or_after(parse("(b)")) == 1
        assert flist.index_at_or_after(parse("(c)")) == 2
        assert flist.index_at_or_after(parse("(e)")) == 3

    def test_node_precomputation(self):
        node = FrequentNode(parse("(a, b)(c)"))
        assert node.head == parse("(a, b)")
        assert node.last == (3,)
        assert node.last_item == 3
        assert node.size == 2


class TestAprioriKMS:
    def _restricted_brute(self, seq, flist, k):
        """Ground truth: min k-subsequence with (k-1)-prefix in flist."""
        prefixes = {flatten(flist[i]) for i in range(len(flist))}
        candidates = [
            sub
            for sub in all_k_subsequences(seq, k)
            if flatten(k_prefix(sub, k - 1)) in prefixes
        ]
        return min(candidates, key=flatten) if candidates else None

    def test_matches_restricted_brute(self):
        rng = random.Random(25)
        for _ in range(100):
            seq = random_sequence(rng, max_transactions=4, max_itemset=3)
            k = rng.randint(2, 4)
            if seq_length(seq) < k:
                continue
            universe = sorted(all_k_subsequences(seq, k - 1), key=flatten)
            if not universe:
                continue
            chosen = rng.sample(universe, rng.randint(1, len(universe)))
            flist = SortedFrequentList(chosen)
            expected = self._restricted_brute(seq, flist, k)
            found = apriori_kms(seq, flist)
            if expected is None:
                assert found is None
            else:
                kmin, pointer = found
                assert kmin == expected
                assert flist[pointer] == k_prefix(expected, k - 1)

    def test_entry_variant_key(self):
        flist = SortedFrequentList([parse("(a)(b)")])
        seq = parse("(a)(b)(c)")
        key, pointer = apriori_kms_entry(seq, flist)
        assert key == flatten(parse("(a)(b)(c)"))
        assert pointer == 0

    def test_cache_is_filled_and_reused(self):
        flist = SortedFrequentList([parse("(x)"), parse("(a)")])
        cache: dict = {}
        seq = parse("(a)(b)")
        apriori_kms_entry(seq, flist, cache=cache)
        assert 0 in cache and cache[0] is not None  # (a) extends
        # Poison the cache to prove reuse.
        cache[0] = None
        assert apriori_kms_entry(seq, flist, cache=cache) is None


class TestAprioriCKMS:
    def test_matches_constrained_brute(self):
        rng = random.Random(26)
        trials = 0
        while trials < 120:
            seq = random_sequence(rng, max_transactions=4, max_itemset=3)
            k = rng.randint(2, 4)
            if seq_length(seq) < k:
                continue
            universe = sorted(all_k_subsequences(seq, k - 1), key=flatten)
            if not universe:
                continue
            flist = SortedFrequentList(
                rng.sample(universe, rng.randint(1, len(universe)))
            )
            all_k = sorted(all_k_subsequences(seq, k), key=flatten)
            if not all_k:
                continue
            alpha_delta = rng.choice(all_k)
            strict = rng.random() < 0.5
            prefixes = {flatten(flist[i]) for i in range(len(flist))}
            candidates = [
                sub
                for sub in all_k
                if flatten(k_prefix(sub, k - 1)) in prefixes
                and (
                    flatten(sub) > flatten(alpha_delta)
                    if strict
                    else flatten(sub) >= flatten(alpha_delta)
                )
            ]
            expected = min(candidates, key=flatten) if candidates else None
            found = apriori_ckms(seq, flist, 0, alpha_delta, strict)
            if expected is None:
                assert found is None, (seq, alpha_delta, strict)
            else:
                assert found is not None and found[0] == expected, (
                    seq,
                    alpha_delta,
                    strict,
                )
            trials += 1

    def test_pointer_skips_smaller_prefixes(self):
        flist = SortedFrequentList([parse("(a)"), parse("(b)"), parse("(c)")])
        query = CkmsQuery(flist, parse("(b)(a)"), strict=False)
        assert query.start == 1  # first node >= <(b)>
        seq = parse("(a)(b)(c)")
        key, pointer = apriori_ckms_entry(seq, flist, 0, query)
        # <(b)(c)> is the smallest qualifying extension.
        assert key == flatten(parse("(b)(c)"))
        assert pointer == 1

    def test_strictness(self):
        flist = SortedFrequentList([parse("(a)")])
        seq = parse("(a)(b)")
        # alpha_delta = <(a)(b)> itself: non-strict returns it, strict fails.
        assert apriori_ckms(seq, flist, 0, parse("(a)(b)"), strict=False)[0] == parse("(a)(b)")
        assert apriori_ckms(seq, flist, 0, parse("(a)(b)"), strict=True) is None


class TestNextKeyAfter:
    def test_first_key(self):
        assert next_key_after(parse("(a, b)(c)"), 1, None) == parse("(a, b)")

    def test_successive_keys_enumerate_all_2_subsequences(self):
        rng = random.Random(27)
        for _ in range(80):
            seq = random_sequence(rng, max_transactions=4, max_itemset=3)
            first = min(item for txn in seq for item in txn)
            expected = sorted(
                (
                    sub
                    for sub in all_k_subsequences(seq, 2)
                    if sub[0][0] == first and flatten(sub)[0] == (first, 1)
                ),
                key=flatten,
            )
            chain = []
            key = next_key_after(seq, first, None)
            while key is not None:
                chain.append(key)
                key = next_key_after(seq, first, key)
            assert chain == expected

    def test_exhaustion(self):
        assert next_key_after(parse("(a)"), 1, None) is None


class TestMinExtensionPairDirect:
    def test_multi_item_last_itemset(self):
        node = FrequentNode(parse("(a, b)"))
        # hosts must contain both a and b.
        assert min_extension_pair(parse("(a)(b)"), node) is None
        assert min_extension_pair(parse("(a, b, d)"), node) == (4, 1)

    def test_bound_excludes_all(self):
        node = FrequentNode(parse("(a)"))
        assert min_extension_pair(parse("(a)(b)"), node, bound=(3, 2), strict=False) is None
