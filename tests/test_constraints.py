"""Tests for constrained mining (repro.ext.constraints)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.sequence import all_k_subsequences, parse, seq_length
from repro.exceptions import InvalidParameterError
from repro.ext.constraints import (
    Constraints,
    contains_constrained,
    mine_constrained,
)
from tests.conftest import random_database, random_sequence


def brute_contains(seq, pattern, c):
    """Oracle containment: enumerate every embedding."""
    def embeddings(index, prev, first):
        if index == len(pattern):
            return True
        for t in range(0, len(seq)):
            if not set(pattern[index]).issubset(seq[t]):
                continue
            if index > 0:
                gap = t - prev
                if gap < c.min_gap:
                    continue
                if c.max_gap is not None and gap > c.max_gap:
                    continue
            if c.max_span is not None and index > 0 and t - first > c.max_span:
                continue
            if embeddings(index + 1, t, first if index > 0 else t):
                return True
        return False

    return embeddings(0, -1, -1)


class TestContainsConstrained:
    def test_matches_oracle_random(self):
        rng = random.Random(141)
        for _ in range(120):
            seq = random_sequence(rng, max_transactions=5, max_itemset=2)
            k = rng.randint(1, min(4, seq_length(seq)))
            pattern = rng.choice(sorted(all_k_subsequences(seq, k)))
            c = Constraints(
                max_gap=rng.choice([None, 1, 2]),
                min_gap=rng.choice([1, 2]),
                max_span=rng.choice([None, 1, 2, 3]),
            )
            if c.max_gap is not None and c.max_gap < c.min_gap:
                continue
            assert contains_constrained(seq, pattern, c) == brute_contains(
                seq, pattern, c
            ), (seq, pattern, c)

    def test_greedy_is_insufficient_case(self):
        """The leftmost host of (a) strands (b) under max_gap=1; only
        backtracking to the second (a) finds the embedding."""
        seq = parse("(a)(c)(a)(b)")
        pattern = parse("(a)(b)")
        assert contains_constrained(seq, pattern, Constraints(max_gap=1))

    def test_max_gap_excludes_distant_pairs(self):
        seq = parse("(a)(c)(c)(b)")
        assert not contains_constrained(seq, parse("(a)(b)"), Constraints(max_gap=2))
        assert contains_constrained(seq, parse("(a)(b)"), Constraints(max_gap=3))

    def test_min_gap_requires_distance(self):
        seq = parse("(a)(b)(b)")
        assert contains_constrained(seq, parse("(a)(b)"), Constraints(min_gap=2))
        assert not contains_constrained(
            parse("(a)(b)"), parse("(a)(b)"), Constraints(min_gap=2)
        )

    def test_max_span_limits_total_stretch(self):
        seq = parse("(a)(b)(c)")
        c = Constraints(max_span=1)
        assert contains_constrained(seq, parse("(a)(b)"), c)
        assert not contains_constrained(seq, parse("(a)(c)"), c)
        assert not contains_constrained(seq, parse("(a)(b)(c)"), c)

    def test_empty_pattern(self):
        assert contains_constrained(parse("(a)"), (), Constraints())


class TestConstraintsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_gap": 0},
            {"max_gap": 1, "min_gap": 2},
            {"max_span": -1},
            {"max_length": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidParameterError):
            Constraints(**kwargs).validate()

    def test_unconstrained_flag(self):
        assert Constraints().unconstrained
        assert not Constraints(max_gap=2).unconstrained


class TestMineConstrained:
    def test_default_equals_plain_mining(self):
        rng = random.Random(142)
        for _ in range(20):
            db = random_database(rng, max_customers=8)
            members = db.members()
            delta = rng.randint(1, max(1, len(members) // 2))
            assert mine_constrained(members, delta) == mine_bruteforce(
                members, delta
            )

    def test_matches_constrained_oracle(self):
        rng = random.Random(143)
        for _ in range(20):
            db = random_database(
                rng, max_customers=6, max_transactions=4, max_itemset=2
            )
            members = db.members()
            raws = [raw for _, raw in members]
            delta = rng.randint(1, max(1, len(members) // 2))
            c = Constraints(max_gap=rng.choice([1, 2]), max_span=rng.choice([2, 3]))
            got = mine_constrained(members, delta, c)
            # Oracle: all subsequences, constrained recount.
            pool = set()
            for raw in raws:
                for k in range(1, seq_length(raw) + 1):
                    pool |= all_k_subsequences(raw, k)
            expected = {}
            for pattern in pool:
                count = sum(
                    1 for raw in raws if contains_constrained(raw, pattern, c)
                )
                if count >= delta:
                    expected[pattern] = count
            assert got == expected

    def test_max_length_cuts_results(self, table1_members):
        patterns = mine_constrained(
            table1_members, 2, Constraints(max_length=2)
        )
        assert patterns
        assert all(seq_length(p) <= 2 for p in patterns)
        unbounded = mine_bruteforce(table1_members, 2)
        assert patterns == {
            p: c for p, c in unbounded.items() if seq_length(p) <= 2
        }

    def test_delta_validation(self):
        with pytest.raises(InvalidParameterError):
            mine_constrained([], 0)

    def test_tight_gap_prunes_patterns(self, table1_members):
        tight = mine_constrained(table1_members, 2, Constraints(max_gap=1))
        loose = mine_bruteforce(table1_members, 2)
        assert set(tight) <= set(loose)
        assert len(tight) < len(loose)
