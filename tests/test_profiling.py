"""Profiling hooks (repro.bench.profiling + ``repro profile``).

One profiled run must yield both views — per-phase seconds from the
span tree and a cProfile hotspot table — in a stable document shape.
"""

from __future__ import annotations

import json

from repro.bench.profiling import (
    PROFILE_FORMAT,
    PROFILE_VERSION,
    profile_mine,
    render_profile,
)
from repro.cli import main
from repro.db import io as dbio
from repro.db.database import SequenceDatabase
from repro.mining.api import mine

from tests.conftest import TABLE1_TEXTS


def table1() -> SequenceDatabase:
    return SequenceDatabase.from_texts(TABLE1_TEXTS)


class TestProfileMine:
    def test_document_shape(self):
        document = profile_mine(table1(), 2, top=5)
        assert document["format"] == PROFILE_FORMAT
        assert document["version"] == PROFILE_VERSION
        assert document["algorithm"] == "disc-all"
        assert document["delta"] == 2
        assert document["patterns"] == len(mine(table1(), 2))
        assert 0 < len(document["hotspots"]) <= 5
        for row in document["hotspots"]:
            assert set(row) == {
                "function", "file", "line", "calls", "tottime", "cumtime",
            }
        # hotspots are ordered by self time, heaviest first
        tottimes = [row["tottime"] for row in document["hotspots"]]
        assert tottimes == sorted(tottimes, reverse=True)

    def test_phases_come_from_the_span_tree(self):
        document = profile_mine(table1(), 2)
        assert "algorithm" in document["phase_seconds"]
        assert all(
            seconds >= 0 for seconds in document["phase_seconds"].values()
        )

    def test_render_mentions_phases_and_hotspots(self):
        document = profile_mine(table1(), 2, top=3)
        text = render_profile(document)
        assert "phase seconds:" in text
        assert "tottime" in text
        assert "disc-all" in text


class TestCli:
    def test_profile_command_writes_document(self, tmp_path, capsys):
        db_path = tmp_path / "t1.spmf"
        dbio.write_spmf(table1(), db_path)
        out = tmp_path / "profile.json"
        code = main([
            "profile", str(db_path), "--min-support", "2",
            "--top", "4", "-o", str(out),
        ])
        assert code == 0
        assert "phase seconds:" in capsys.readouterr().out
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["format"] == PROFILE_FORMAT
        assert len(document["hotspots"]) <= 4
