"""Tests for the whole-program checker (repro check).

Covers the per-rule fixture packages under ``tests/fixtures/check/``,
the suppression hygiene of each rule, the reporters, the CLI exit codes
— and the gate itself: the checker must report zero findings over
``src/repro``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import check_paths, project_rule_catalog, render_sarif
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "check"


def findings_of(fixture: str, rule: str) -> list[tuple[str, int]]:
    findings, _ = check_paths([FIXTURES / fixture], rule_ids=[rule])
    return [(f.rule_id, f.line) for f in findings]


class TestGate:
    """The repo's own source must stay check-clean (the pytest gate)."""

    def test_src_is_clean(self):
        findings, checked = check_paths([SRC])
        assert checked > 50
        assert findings == [], "\n".join(f.render() for f in findings)


class TestConc001:
    def test_unguarded_access_and_undeclared_lock(self):
        # line 27: Store.size reads _items with no lock and no callers
        # holding it; line 33: Unannotated owns a lock, declares nothing.
        assert findings_of("conc001", "CONC001") == [
            ("CONC001", 27),
            ("CONC001", 33),
        ]

    def test_suppressed_access_stays_silent(self):
        # Store.peek (line 30) violates too but carries an allow comment.
        assert ("CONC001", 30) not in findings_of("conc001", "CONC001")

    def test_lexical_and_caller_held_accesses_are_clean(self):
        # Store.add (lexical with) and Store._drain_locked (every call
        # site holds the lock) produce nothing: only size/Unannotated.
        lines = [line for _, line in findings_of("conc001", "CONC001")]
        assert lines == [27, 33]

    def test_cluster_scope_is_gated_too(self):
        # membership-style lease tables under cluster/ are in scope:
        # LeaseTable.generation reads _records without the table lock,
        # while the locked register/drop/snapshot paths stay silent.
        assert findings_of("conc001_cluster", "CONC001") == [
            ("CONC001", 28),
        ]


class TestConc002:
    def test_opposite_order_cycle(self):
        # Deadlocker: a -> b lexically, b -> a through _locked_a().
        assert findings_of("conc002", "CONC002") == [("CONC002", 15)]

    def test_suppressed_cycle_stays_silent(self):
        # SuppressedDeadlocker has the same shape; its reported edge
        # (line 36) carries the allow comment.
        found = findings_of("conc002", "CONC002")
        assert all(line < 20 for _, line in found), found


class TestFlow001:
    def test_unmapped_error_reachable_from_handler(self):
        assert findings_of("flow001", "FLOW001") == [("FLOW001", 24)]

    def test_mapped_suppressed_and_unreachable_are_silent(self):
        # MappedError has a status row; SuppressedError's raise carries
        # an allow comment; unreachable_helper is not reachable from any
        # do_* handler.  Only the UnmappedError raise fires.
        lines = [line for _, line in findings_of("flow001", "FLOW001")]
        assert lines == [24]


class TestFlow002:
    def test_loop_without_checkpoint(self):
        assert findings_of("flow002", "FLOW002") == [("FLOW002", 30)]

    def test_lexical_and_transitive_checkpoints_are_clean(self):
        # polite() checkpoints lexically, indirect() through _step();
        # acknowledged() carries the allow comment.  Only rude() fires.
        lines = [line for _, line in findings_of("flow002", "FLOW002")]
        assert lines == [30]


class TestHot001:
    def test_registry_lookup_inside_the_loop(self):
        assert findings_of("hot001", "HOT001") == [("HOT001", 11)]

    def test_prefetched_handle_and_suppression_are_clean(self):
        # handle.add(1) is a pre-fetched mutator (allowed); the
        # acknowledged_loop lookup (line 19) carries the allow comment.
        lines = [line for _, line in findings_of("hot001", "HOT001")]
        assert lines == [11]


class TestWire001:
    def test_undeclared_event_and_undeclared_field(self):
        # line 7 emits a name outside contracts.EVENTS; line 8 passes a
        # field job.accepted never declared.
        assert findings_of("wire001", "WIRE001") == [
            ("WIRE001", 7),
            ("WIRE001", 8),
        ]

    def test_suppressed_twin_and_well_formed_site_are_clean(self):
        lines = [line for _, line in findings_of("wire001", "WIRE001")]
        assert 9 not in lines  # allow[WIRE001] twin
        assert 13 not in lines  # well-formed emit

    def test_rule_gates_on_the_manifest_marker(self):
        # fixture trees without a repro/contracts.py module opt out —
        # the flow001 tree re-uses real module paths and must not fire.
        assert findings_of("flow001", "WIRE001") == []


class TestWire002:
    def test_undeclared_consumed_key(self):
        # line 8 reads 'valuex', not a key of the metrics schema
        assert findings_of("wire002", "WIRE002") == [("WIRE002", 8)]

    def test_suppressed_twin_and_declared_keys_are_clean(self):
        lines = [line for _, line in findings_of("wire002", "WIRE002")]
        assert lines == [8]  # 'countx' on line 9 carries the allow

    def test_rule_gates_on_the_manifest_marker(self):
        assert findings_of("flow001", "WIRE002") == []


class TestWire003:
    def test_drifted_status_row(self):
        # row 6 declares DataFormatError at 500; the taxonomy says 400
        assert findings_of("wire003", "WIRE003") == [("WIRE003", 10)]

    def test_suppressed_extra_row_is_silent(self):
        lines = [line for _, line in findings_of("wire003", "WIRE003")]
        assert 13 not in lines  # the TeapotError row carries the allow

    def test_rule_gates_on_the_manifest_marker(self):
        # flow001 has its own toy _ERROR_STATUS in repro/service/http.py
        assert findings_of("flow001", "WIRE003") == []


class TestWire004:
    def test_undeclared_invariant_and_undeclared_site(self):
        # compare.py line 7 gates on a metric the registry never heard
        # of; pipeline.py line 7 produces it.
        assert findings_of("wire004", "WIRE004") == [
            ("WIRE004", 7),
            ("WIRE004", 7),
        ]

    def test_suppressed_twin_and_declared_metric_are_clean(self):
        found = findings_of("wire004", "WIRE004")
        assert len(found) == 2  # the allow'd site and the declared
        # disc.comparisons production stay silent

    def test_rule_gates_on_the_manifest_marker(self):
        # hot001 produces an undeclared 'disc.steps' counter on purpose
        assert findings_of("hot001", "WIRE004") == []


class TestState001:
    def test_undeclared_breaker_edge(self):
        # closed -> half_open is not in the declared transition table
        assert findings_of("state001", "STATE001") == [("STATE001", 14)]

    def test_suppressed_twin_and_legal_edge_are_clean(self):
        lines = [line for _, line in findings_of("state001", "STATE001")]
        assert 18 not in lines  # allow[STATE001] twin
        assert 22 not in lines  # closed -> open is declared


class TestCatalog:
    def test_every_project_rule_is_documented(self):
        catalog = project_rule_catalog()
        for rule_id in (
            "CONC001", "CONC002", "FLOW001", "FLOW002", "HOT001",
            "WIRE001", "WIRE002", "WIRE003", "WIRE004", "STATE001",
        ):
            assert rule_id in catalog
            assert catalog[rule_id].title
            assert catalog[rule_id].rationale

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            check_paths([FIXTURES / "conc001"], rule_ids=["NOPE001"])

    def test_family_prefix_selects_every_member(self):
        # --rules WIRE must reach all four members: the wire001 fixture
        # fires under the family exactly as under the exact id.
        family, _ = check_paths([FIXTURES / "wire001"], rule_ids=["WIRE"])
        exact, _ = check_paths([FIXTURES / "wire001"], rule_ids=["WIRE001"])
        assert [f.rule_id for f in family] and family == exact


class TestCli:
    def test_check_src_exits_zero(self, capsys):
        assert main(["check", str(SRC)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violating_fixture_exits_one(self, capsys):
        assert main(["check", str(FIXTURES / "conc001")]) == 1
        out = capsys.readouterr().out
        assert "CONC001" in out
        assert "state.py:27:" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["check", "does/not/exist.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unparseable_file_exits_two(self, capsys):
        assert main(["check", str(FIXTURES / "broken")]) == 2
        assert "LINT000" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["check", "--rules", "NOPE001", str(SRC)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_rules_filter_restricts_to_named_rules(self, capsys):
        # the conc002 fixture is clean under every rule but CONC002
        # (CONC001's meta-check would fire on its undeclared locks)
        assert main(
            ["check", "--rules", "FLOW001", str(FIXTURES / "conc002")]
        ) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "CONC001", "CONC002", "FLOW001", "FLOW002", "HOT001",
            "WIRE001", "WIRE002", "WIRE003", "WIRE004", "STATE001",
            "DISC001",  # the listing is unified across both engines
        ):
            assert rule_id in out

    def test_family_rules_filter_on_the_cli(self, capsys):
        assert main(
            ["check", "--rules", "WIRE,STATE", str(FIXTURES / "wire001")]
        ) == 1
        out = capsys.readouterr().out
        assert "WIRE001" in out

    def test_json_format(self, capsys):
        assert main(
            ["check", "--format", "json", str(FIXTURES / "flow002")]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"FLOW002": 1}
        assert payload["findings"][0]["line"] == 30


class TestSarif:
    def test_cli_emits_valid_sarif(self, capsys):
        assert main(
            ["check", "--format", "sarif", str(FIXTURES / "hot001")]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"CONC001", "FLOW002", "HOT001", "DISC001", "LINT000"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "HOT001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 11
        assert location["artifactLocation"]["uri"].endswith("core/disc.py")

    def test_render_sarif_clean_run(self):
        payload = json.loads(render_sarif([], 5, tool_name="repro-check"))
        assert payload["runs"][0]["results"] == []
        assert payload["runs"][0]["properties"]["filesChecked"] == 5
