"""End-to-end cluster tests: coordinator + real HTTP workers.

Workers bind port 0 on loopback and serve from daemon threads, so the
full wire path — payload encode, POST /shards, worker mining, result
decode, retry, merge — runs in-process without fixed ports.
"""

from __future__ import annotations

import io
import json
import queue
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster.coordinator import (
    WorkerClient,
    WorkerPool,
    disc_all_cluster,
    register_cluster_algorithm,
)
from repro.cluster.payload import PAYLOAD_CONTENT_TYPE
from repro.cluster.worker import make_worker_server
from repro.core.checkpoint import CheckpointRecorder, recording_scope
from repro.core.counting import count_frequent_items
from repro.core.discall import disc_all
from repro.db.database import SequenceDatabase
from repro.exceptions import ClusterError, InvalidParameterError
from repro.mining.api import mine
from repro.mining.serialize import save_result
from repro.obs import observation
from repro.obs.context import activated
from repro.obs.trace_context import TraceContext, trace_scope
from tests.conftest import TABLE6_TEXTS

#: a URL nothing listens on (port 9 is discard; connection is refused)
DEAD_URL = "http://127.0.0.1:9"


def start_workers(count: int):
    """Start *count* loopback workers; returns (servers, urls)."""
    servers, urls = [], []
    for _ in range(count):
        server = make_worker_server(port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        urls.append(f"http://127.0.0.1:{server.server_address[1]}")
    return servers, urls


@pytest.fixture
def workers():
    servers, urls = start_workers(2)
    yield urls
    for server in servers:
        server.shutdown()
        server.server_close()


def saved_patterns(result) -> str:
    """The result's canonical serialised pattern list (byte-identity)."""
    buffer = io.StringIO()
    save_result(result, buffer)
    return json.dumps(json.loads(buffer.getvalue())["patterns"])


class TestCoordinatorParity:
    def test_matches_disc_all(self, workers, table6_members):
        pool = WorkerPool(workers)
        out = disc_all_cluster(table6_members, 3, pool)
        assert out.patterns == disc_all(table6_members, 3).patterns
        assert out.stats.first_level_partitions == 7

    def test_registry_result_is_byte_identical(self, workers):
        db = SequenceDatabase.from_texts(
            [text for _cid, text in sorted(TABLE6_TEXTS.items())]
        )
        pool = WorkerPool(workers)
        register_cluster_algorithm(pool)
        reference = mine(db, 3, algorithm="disc-all")
        clustered = mine(db, 3, algorithm="disc-all-cluster")
        assert clustered.patterns == reference.patterns
        assert saved_patterns(clustered) == saved_patterns(reference)

    def test_counters_cover_every_shard(self, workers, table6_members):
        pool = WorkerPool(workers)
        with activated(observation(trace=False)) as obs:
            out = disc_all_cluster(table6_members, 3, pool)
            report = obs.report()
        shards = out.stats.first_level_partitions
        assert report.counter_value("cluster.shards_dispatched") == shards
        assert report.counter_value("cluster.shards_merged") == shards
        assert report.counter_value("cluster.shards_retried") == 0
        assert report.counter_value("cluster.shards_failed") == 0
        # worker-side counters were absorbed into the coordinating report
        assert report.counter_value("worker.shards_mined") == shards

    def test_delta_validated(self, workers):
        with pytest.raises(ValueError, match="delta"):
            disc_all_cluster([], 0, WorkerPool(workers))

    def test_empty_database(self, workers):
        assert disc_all_cluster([], 2, WorkerPool(workers)).patterns == {}


class TestFailurePolicy:
    def test_dead_worker_shards_retried_elsewhere(self, workers, table6_members):
        pool = WorkerPool([DEAD_URL, workers[0]], max_worker_failures=2)
        with activated(observation(trace=False)) as obs:
            out = disc_all_cluster(table6_members, 3, pool)
            report = obs.report()
        assert out.patterns == disc_all(table6_members, 3).patterns
        assert report.counter_value("cluster.shards_retried") >= 1
        assert report.counter_value("cluster.shards_merged") == 7

    def test_all_workers_dead_degrades_to_local(self, table6_members):
        pool = WorkerPool([DEAD_URL], max_worker_failures=2, degrade_after=0.0)
        with activated(observation(trace=False)) as obs:
            out = disc_all_cluster(table6_members, 3, pool)
            report = obs.report()
        # byte-identical completion via the local fallback, not an abort
        assert out.patterns == disc_all(table6_members, 3).patterns
        assert report.counter_value("cluster.shards_mined_locally") == 7
        assert report.counter_value("cluster.shards_merged") == 7

    def test_degradation_disabled_aborts(self, table6_members):
        pool = WorkerPool(
            [DEAD_URL], max_worker_failures=2,
            degrade=False, degrade_after=0.0,
        )
        with pytest.raises(ClusterError, match="no live workers remain"):
            disc_all_cluster(table6_members, 3, pool)

    def test_live_count_probes_health(self, workers):
        assert WorkerPool(workers).live_count() == 2
        assert WorkerPool([DEAD_URL, workers[0]]).live_count(timeout=0.5) == 1

    def test_pool_validation(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            WorkerPool([])
        with pytest.raises(InvalidParameterError, match="http"):
            WorkerPool(["ftp://example"])
        with pytest.raises(InvalidParameterError, match="max_shard_attempts"):
            WorkerPool([DEAD_URL], max_shard_attempts=0)


class TestTracePropagation:
    def test_one_trace_spans_coordinator_and_workers(self, workers, table6_members):
        pool = WorkerPool(workers)
        trace = TraceContext.mint()
        with trace_scope(trace), activated(observation(trace=True)) as obs:
            disc_all_cluster(table6_members, 3, pool)
            report = obs.report()
        names = set()

        def walk(record):
            names.add(record.name)
            for child in record.children:
                walk(child)

        for span in report.spans:
            walk(span)
        # the coordinator's map span plus grafted worker shard spans
        assert "cluster.map" in names
        assert "shard.report" in names
        assert "shard" in names

    def test_worker_echoes_traceparent(self, workers, table6_members):
        from tests.test_cluster_payload import payload_for

        payload = payload_for(table6_members, 3, 1)
        traceparent = TraceContext.mint().child().to_traceparent()
        request = urllib.request.Request(
            workers[0] + "/shards",
            data=payload.to_bytes(),
            headers={
                "Content-Type": PAYLOAD_CONTENT_TYPE,
                "traceparent": traceparent,
            },
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            doc = json.loads(response.read().decode("utf-8"))
            echoed = response.headers.get("traceparent")
        trace_id = traceparent.split("-")[1]
        assert echoed is not None and trace_id in echoed
        assert doc["trace_id"] == trace_id


class TestWorkerEndpoints:
    def test_healthz_reports_worker_role(self, workers):
        with urllib.request.urlopen(workers[0] + "/healthz", timeout=10) as response:
            doc = json.loads(response.read().decode("utf-8"))
        assert doc["status"] == "ok"
        assert doc["role"] == "worker"
        assert {"shards_mined", "shards_failed", "uptime_seconds"} <= set(doc)

    def test_json_payload_accepted(self, workers, table6_members):
        from tests.test_cluster_payload import payload_for

        payload = payload_for(table6_members, 3, 1)
        request = urllib.request.Request(
            workers[0] + "/shards",
            data=payload.to_json().encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            doc = json.loads(response.read().decode("utf-8"))
        assert doc["format"] == "repro.shard-result"
        assert doc["lam"] == payload.lam
        assert doc["payload_digest"] == payload.digest

    def test_garbage_payload_answers_400_not_retryable(self, workers):
        request = urllib.request.Request(
            workers[0] + "/shards",
            data=b"not a payload",
            headers={"Content-Type": PAYLOAD_CONTENT_TYPE},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        doc = json.loads(excinfo.value.read().decode("utf-8"))
        assert doc["error"]["code"] == "bad_payload"
        assert doc["error"]["retryable"] is False

    def test_metrics_negotiates_prometheus(self, workers, table6_members):
        pool = WorkerPool(workers[:1])
        disc_all_cluster(table6_members, 3, pool)
        with urllib.request.urlopen(workers[0] + "/metrics", timeout=10) as response:
            doc = json.loads(response.read().decode("utf-8"))
        assert doc["metrics"]["worker.shards_mined"]["value"] == 7
        request = urllib.request.Request(
            workers[0] + "/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode("utf-8")
        assert "worker_shards_mined 7" in text

    def test_unknown_endpoint_404(self, workers):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(workers[0] + "/nope", timeout=10)
        assert excinfo.value.code == 404


class TestCheckpointing:
    def test_recorder_marks_every_merged_shard(self, workers, table6_members):
        pool = WorkerPool(workers)
        recorder = CheckpointRecorder()
        with recording_scope(recorder):
            out = disc_all_cluster(table6_members, 3, pool)
        done = recorder.completed_partitions
        assert len(done) == out.stats.first_level_partitions
        assert set(done) == set(count_frequent_items(table6_members, 3))

    def test_completed_partitions_are_skipped(self, workers, table6_members):
        from repro.core.checkpoint import CheckpointIdentity

        pool = WorkerPool(workers)
        recorder = CheckpointRecorder()
        with recording_scope(recorder):
            full = disc_all_cluster(table6_members, 3, pool)
        checkpoint = recorder.capture(
            CheckpointIdentity("d" * 64, 3, "disc-all-cluster", "x")
        )
        resumed = CheckpointRecorder(resume_from=checkpoint)
        with recording_scope(resumed):
            with activated(observation(trace=False)) as obs:
                out = disc_all_cluster(table6_members, 3, pool)
                report = obs.report()
        # nothing re-dispatched; the resumed run only re-counts 1-sequences
        assert report.counter_value("cluster.shards_dispatched") == 0
        assert out.stats.first_level_partitions == 0
        for raw, count in out.patterns.items():
            assert full.patterns[raw] == count


class TestServiceIntegration:
    def test_coordinator_service_mines_through_workers(self, workers):
        from repro.service.service import MiningService

        db = SequenceDatabase.from_texts(
            [text for _cid, text in sorted(TABLE6_TEXTS.items())]
        )
        pool = WorkerPool(workers)
        register_cluster_algorithm(pool)
        with MiningService(
            workers=1, role="coordinator", worker_pool=pool,
            default_algorithm="disc-all-cluster",
        ) as svc:
            svc.register_database("table6", db)
            job = svc.submit_mine("table6", 3, algorithm="disc-all-cluster")
            job = svc.wait(job.id, timeout=60)
            assert job.state == "done"
            result = job.result.result
            health = svc.health()
        assert result.patterns == mine(db, 3, algorithm="disc-all").patterns
        assert health["role"] == "coordinator"
        assert health["workers_connected"] == 2
        assert health["workers_live"] == 2

    def test_worker_client_round_trip(self, workers, table6_members):
        from tests.test_cluster_payload import payload_for

        client = WorkerClient(workers[0])
        payload = payload_for(table6_members, 3, 1)
        patterns, report = client.mine_shard(payload)
        assert patterns == {
            raw: count
            for raw, count in disc_all(table6_members, 3).patterns.items()
            if sum(len(txn) for txn in raw) >= 2 and raw[0][0] == 1
        }
        assert report is not None
        assert report.counter_value("worker.shards_mined") == 1


class TestSelfHealing:
    def test_worker_joining_mid_job_receives_shards(self, workers, table6_members):
        """A worker registering mid-run drains the queue with no restart."""
        pool = WorkerPool(allow_empty=True, degrade_after=60.0)

        def late_join():
            time.sleep(0.3)
            pool.membership.register(workers[0])

        joiner = threading.Thread(target=late_join, daemon=True)
        joiner.start()
        with activated(observation(trace=False)) as obs:
            out = disc_all_cluster(table6_members, 3, pool)
            report = obs.report()
        joiner.join()
        assert out.patterns == disc_all(table6_members, 3).patterns
        assert report.counter_value("cluster.shards_merged") == 7
        # everything went through the late worker, nothing local
        assert report.counter_value("cluster.shards_mined_locally") == 0

    def test_shutdown_with_inflight_job_joins_and_drains(
        self, workers, table6_members, monkeypatch
    ):
        """close() mid-run: threads join in bounded grace, queue drains."""
        from tests.test_cluster_payload import payload_for

        real = WorkerClient.mine_shard

        def slow_mine(self, payload, traceparent=None):
            time.sleep(0.3)
            return real(self, payload, traceparent)

        monkeypatch.setattr(WorkerClient, "mine_shard", slow_mine)
        pool = WorkerPool(workers)
        payloads = [payload_for(table6_members, 3, lam) for lam in (1, 2, 3, 4)]
        run = pool.run(payloads)
        kind = run.notices.get(timeout=10.0)[0]
        assert kind == "dispatched"
        run.close()
        assert run.join(timeout=10.0)
        assert not [
            t for t in threading.enumerate()
            if t.name.startswith("shard-dispatch-") and t.is_alive()
        ]
        # the queue drains without blocking; at most the in-flight
        # shards report back, nothing new is dispatched after close()
        drained = []
        while True:
            try:
                drained.append(run.notices.get_nowait())
            except queue.Empty:
                break
        assert all(notice[0] in ("dispatched", "done") for notice in drained)
        assert run.pending_count() >= len(payloads) - len(workers) - 1
