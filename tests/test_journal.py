"""The durable job journal (repro.service.journal) and crash recovery.

Append/replay round-trips, the forgiving reader (torn last line,
interleaved writers), and the startup recovery policy: resume from a
checkpoint, restart on fingerprint mismatch, fail unresumable jobs.
"""

from __future__ import annotations

import json

import pytest

from repro.db.database import SequenceDatabase
from repro.exceptions import InjectedFaultError, InvalidParameterError
from repro.faults import FaultPlan, fault_plan
from repro.mining.api import mine
from repro.service import (
    JobJournal,
    MineOutcome,
    MiningService,
    replay_journal,
)

from tests.conftest import TABLE6_TEXTS

DB_TEXTS = list(TABLE6_TEXTS.values())


@pytest.fixture
def db() -> SequenceDatabase:
    return SequenceDatabase.from_texts(DB_TEXTS)


class TestJournalAppendReplay:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with JobJournal(path) as journal:
            journal.append("accepted", "j1", database="demo", delta=2)
            journal.append("started", "j1", attempt=1)
            journal.append("finished", "j1", state="done", complete=True)
            journal.append("accepted", "j2", database="demo", delta=3)
        replay = replay_journal(path)
        assert replay.total_lines == 4
        assert replay.corrupt_lines == 0
        assert replay.entries["j1"].finished
        assert replay.entries["j1"].state == "done"
        assert replay.entries["j1"].attempts == 1
        assert not replay.entries["j2"].finished
        assert [entry.job_id for entry in replay.interrupted()] == ["j2"]

    def test_missing_file_replays_empty(self, tmp_path):
        replay = replay_journal(tmp_path / "never-written.jsonl")
        assert replay.entries == {} and replay.corrupt_lines == 0

    def test_directory_path_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="directory"):
            JobJournal(tmp_path)

    def test_append_after_close_raises(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.close()
        with pytest.raises(InvalidParameterError, match="closed"):
            journal.append("accepted", "j1")

    def test_truncated_last_line_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with JobJournal(path) as journal:
            journal.append("accepted", "j1", database="demo")
            journal.append("started", "j1", attempt=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "finish')  # the crash tore this write
        replay = replay_journal(path)
        assert replay.corrupt_lines == 1
        assert not replay.entries["j1"].finished  # torn record ignored

    def test_interleaved_writer_garbage_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with JobJournal(path) as journal:
            journal.append("accepted", "j1", database="demo")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('["a", "json", "array"]\n')
            handle.write('{"event": "started", "ts": 1}\n')  # no job id
            handle.write('{"event": "started", "job": "j1", "attempt": 2}\n')
        replay = replay_journal(path)
        assert replay.corrupt_lines == 3
        assert replay.entries["j1"].attempts == 2

    def test_fsync_fault_site_fires(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        with fault_plan(FaultPlan.from_spec("journal.fsync:1")):
            with pytest.raises(InjectedFaultError):
                journal.append("accepted", "j1")
        journal.append("accepted", "j2")  # plan gone, appends work again
        replay = replay_journal(journal.path)
        # The faulted record reached the file (the fault models a lost
        # fsync, not a lost write); both lines replay.
        assert set(replay.entries) == {"j1", "j2"}
        journal.close()


def interrupted_journal(tmp_path, db, *, drop_events=("finished",)):
    """Run a service over a journal, then erase terminal records so the
    journal looks like the process died mid-job."""
    path = tmp_path / "jobs.jsonl"
    service = MiningService(workers=1, journal=JobJournal(path))
    service.register_database("demo", db)
    with fault_plan(FaultPlan.from_spec("disc.partition:3+")):
        job = service.submit_mine("demo", 2)
        service.wait(job.id, timeout=60)
    service.close()
    lines = [
        line
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip() and json.loads(line)["event"] not in drop_events
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path, job.id


class TestRecovery:
    def test_resume_from_checkpoint_under_original_id(self, tmp_path, db):
        reference = mine(db, 2)
        path, job_id = interrupted_journal(tmp_path, db)
        service = MiningService(workers=1, journal=JobJournal(path))
        service.register_database("demo", db)
        summary = service.recover()
        assert summary["resumed"] == 1
        assert summary["failed"] == 0
        job = service.job(job_id)  # original id survives the restart
        service.wait(job.id, timeout=60)
        outcome = job.result
        assert isinstance(outcome, MineOutcome)
        assert outcome.result.complete
        assert outcome.result.patterns == reference.patterns
        snapshot = service.metrics_snapshot()
        assert snapshot["service.recovered_jobs"]["value"] == 1
        service.close()

    def test_new_submissions_never_reuse_recovered_ids(self, tmp_path, db):
        path, job_id = interrupted_journal(tmp_path, db)
        service = MiningService(workers=1, journal=JobJournal(path))
        service.register_database("demo", db)
        service.recover()
        fresh = service.submit_mine("demo", 3)
        assert fresh.id != job_id
        service.wait(fresh.id, timeout=60)
        service.close()

    def test_digest_mismatch_fails_the_job(self, tmp_path, db):
        path, job_id = interrupted_journal(tmp_path, db)
        changed = SequenceDatabase.from_texts(DB_TEXTS[:-2])
        service = MiningService(workers=1, journal=JobJournal(path))
        service.register_database("demo", changed)  # same name, new content
        summary = service.recover()
        assert summary == {
            "resumed": 0, "restarted": 0, "failed": 1, "corrupt_lines": 0,
        }
        service.close()
        replay = replay_journal(path)
        entry = replay.entries[job_id]
        assert entry.finished and entry.state == "failed"
        assert entry.code == "unresumable"
        assert "content changed" in (entry.error or "")

    def test_unknown_database_fails_the_job(self, tmp_path, db):
        path, job_id = interrupted_journal(tmp_path, db)
        service = MiningService(workers=1, journal=JobJournal(path))
        summary = service.recover()  # nothing registered
        assert summary["failed"] == 1
        service.close()
        entry = replay_journal(path).entries[job_id]
        assert entry.code == "unresumable"

    def test_corrupt_checkpoint_downgrades_to_restart(self, tmp_path, db):
        reference = mine(db, 2)
        path, job_id = interrupted_journal(tmp_path, db)
        lines = path.read_text(encoding="utf-8").splitlines()
        rewritten = []
        for line in lines:
            record = json.loads(line)
            if record["event"] == "checkpoint":
                record["checkpoint"]["database_digest"] = "0" * 64
                line = json.dumps(record, separators=(",", ":"))
            rewritten.append(line)
        path.write_text("\n".join(rewritten) + "\n", encoding="utf-8")
        service = MiningService(workers=1, journal=JobJournal(path))
        service.register_database("demo", db)
        summary = service.recover()
        assert summary["restarted"] == 1 and summary["resumed"] == 0
        job = service.job(job_id)
        service.wait(job.id, timeout=60)
        outcome = job.result
        assert isinstance(outcome, MineOutcome)
        assert outcome.result.patterns == reference.patterns
        service.close()

    def test_torn_tail_does_not_block_recovery(self, tmp_path, db):
        path, job_id = interrupted_journal(tmp_path, db)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "checkpoint", "job": "' + job_id)
        service = MiningService(workers=1, journal=JobJournal(path))
        service.register_database("demo", db)
        summary = service.recover()
        assert summary["corrupt_lines"] == 1
        assert summary["resumed"] == 1
        service.wait(job_id, timeout=60)
        service.close()

    def test_recover_without_journal_is_a_noop(self, db):
        service = MiningService(workers=1)
        assert service.recover() == {
            "resumed": 0, "restarted": 0, "failed": 0, "corrupt_lines": 0,
        }
        service.close()

    def test_finished_jobs_are_not_recovered(self, tmp_path, db):
        path = tmp_path / "jobs.jsonl"
        service = MiningService(workers=1, journal=JobJournal(path))
        service.register_database("demo", db)
        job = service.submit_mine("demo", 2)
        service.wait(job.id, timeout=60)
        service.close()
        service = MiningService(workers=1, journal=JobJournal(path))
        service.register_database("demo", db)
        assert service.recover() == {
            "resumed": 0, "restarted": 0, "failed": 0, "corrupt_lines": 0,
        }
        service.close()
