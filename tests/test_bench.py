"""Smoke tests for the experiment harness at the smoke scale."""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import SCALES, ExperimentResult, run_experiment
from repro.bench.reporting import format_cell, render_series, render_table


class TestReporting:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(0.0) == "0"
        assert format_cell(1.23456) == "1.235"
        assert format_cell(12345.6) == "12346"
        assert format_cell("x") == "x"

    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_render_series(self):
        text = render_series("F", "x", [1, 2], {"algo": [0.5, 0.7]})
        assert "algo" in text and "0.5" in text

    def test_render_empty_rows(self):
        text = render_table(["h"], [])
        assert "h" in text


class TestHarness:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="fig8"):
            run_experiment("nope")

    def test_scales_registered(self):
        assert set(SCALES) == {"repro", "smoke", "large", "paper"}

    def test_experiment_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "fig8", "fig9", "fig10", "table12", "table13", "table14", "ablation", "memory", "operations",
        }


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_runs_at_smoke_scale(name):
    result = run_experiment(name, scale="smoke")
    assert isinstance(result, ExperimentResult)
    assert result.rows, name
    assert all(len(row) == len(result.headers) for row in result.rows)
    rendered = result.render()
    assert result.paper_reference in rendered


class TestJsonOutput:
    def test_to_dict_roundtrips_through_json(self):
        import json

        result = run_experiment("table12", scale="smoke")
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["experiment"] == "table12"
        assert payload["headers"] == result.headers
        assert len(payload["rows"]) == len(result.rows)

    def test_cli_json_flag(self, capsys):
        import json

        from repro.cli import main

        assert main(["experiment", "table12", "--scale", "smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment"] == "table12"


class TestMemoryMeasurement:
    def test_peak_memory_positive_and_counts_patterns(self, table1_db=None):
        from repro.bench.memory import peak_memory_bytes
        from repro.db.database import SequenceDatabase

        db = SequenceDatabase.from_texts(
            ["(a, e, g)(b)(h)(f)(c)(b, f)", "(b)(d, f)(e)", "(b, f, g)",
             "(f)(a, g)(b, f, h)(b, f)"]
        )
        peak, n_patterns = peak_memory_bytes(db, 2, "disc-all")
        assert peak > 0
        assert n_patterns == 56

    def test_tracemalloc_stopped_after_run(self):
        import tracemalloc

        from repro.bench.memory import peak_memory_bytes
        from repro.db.database import SequenceDatabase

        db = SequenceDatabase.from_texts(["(a)(b)"])
        peak_memory_bytes(db, 1, "prefixspan")
        assert not tracemalloc.is_tracing()


class TestOperationCounters:
    def test_gsp_counters_reset_per_run(self, table1_members=None):
        from repro.baselines import gsp
        from repro.core.sequence import parse

        members = [(1, parse("(a)(b)")), (2, parse("(a)(b)"))]
        gsp.mine_gsp(members, 2)
        first = dict(gsp.last_run_stats)
        assert first["candidates_generated"] > 0
        gsp.mine_gsp(members, 2)
        assert gsp.last_run_stats == first  # deterministic and reset

    def test_prefixspan_projections_equal_frequent_patterns(self):
        from repro.baselines import prefixspan
        from repro.core.sequence import parse

        members = [(1, parse("(a)(b)(c)")), (2, parse("(a)(b)(c)"))]
        patterns = prefixspan.mine_prefixspan(members, 2)
        # One projected database per frequent pattern.
        assert prefixspan.last_run_stats["projections_built"] == len(patterns)
