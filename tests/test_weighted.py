"""Tests for the weighted-mining extension (repro.ext.weighted)."""

from __future__ import annotations

import random

import pytest

from repro.core.sequence import all_k_subsequences, parse, seq_length, support_count
from repro.exceptions import InvalidParameterError
from repro.ext.weighted import WeightedResult, mine_weighted, pattern_weight
from tests.conftest import random_database


def brute_weighted(raws, weights, tau):
    """Oracle: enumerate all subsequences, apply the definition."""
    result = {}
    pool = set()
    for raw in raws:
        for k in range(1, seq_length(raw) + 1):
            pool |= all_k_subsequences(raw, k)
    for pattern in pool:
        count = support_count(raws, pattern)
        wsup = count * pattern_weight(pattern, weights)
        if wsup >= tau:
            result[pattern] = (count, wsup)
    return result


class TestPatternWeight:
    def test_mean_of_items(self):
        weights = {1: 2.0, 2: 4.0}
        assert pattern_weight(parse("(a)(b)"), weights) == pytest.approx(3.0)

    def test_default_weight_one(self):
        assert pattern_weight(parse("(z)"), {}) == pytest.approx(1.0)

    def test_occurrences_weighted_individually(self):
        weights = {1: 3.0}
        assert pattern_weight(parse("(a)(a)"), weights) == pytest.approx(3.0)


class TestMineWeighted:
    def test_matches_oracle_random(self):
        rng = random.Random(101)
        for _ in range(25):
            db = random_database(
                rng, max_customers=8, max_transactions=4, max_itemset=2
            )
            raws = [raw for _, raw in db.members()]
            items = {item for raw in raws for txn in raw for item in txn}
            weights = {item: rng.choice([0.5, 1.0, 2.0]) for item in items}
            tau = rng.uniform(1.0, len(raws))
            got = mine_weighted(db.members(), weights, tau)
            expected = brute_weighted(raws, weights, tau)
            assert set(got.patterns) == set(expected)
            for pattern, (count, wsup) in got.patterns.items():
                assert count == expected[pattern][0]
                assert wsup == pytest.approx(expected[pattern][1])

    def test_high_weight_rescues_low_support_pattern(self):
        """The non-anti-monotone case the paper motivates: a pattern can
        qualify while a more frequent sub-pattern does not."""
        members = [
            (1, parse("(a)(z)")),
            (2, parse("(a)(z)")),
            (3, parse("(a)")),
            (4, parse("(b)")),
        ]
        weights = {1: 1.0, 26: 10.0}  # z is precious
        result = mine_weighted(members, weights, tau=10.0)
        assert parse("(a)(z)") in result.patterns  # 2 * 5.5 = 11 >= 10
        assert parse("(a)") not in result.patterns  # 3 * 1.0 < 10
        assert result.weighted_support(parse("(a)(z)")) == pytest.approx(11.0)

    def test_tau_validation(self):
        with pytest.raises(InvalidParameterError):
            mine_weighted([], {}, 0)

    def test_weight_validation(self):
        with pytest.raises(InvalidParameterError):
            mine_weighted([], {1: -1.0}, 1.0)

    def test_uniform_weights_reduce_to_plain_mining(self, table1_members):
        from repro.baselines.bruteforce import mine_bruteforce

        result = mine_weighted(table1_members, {}, tau=2.0)
        plain = mine_bruteforce(table1_members, 2)
        assert {p: c for p, (c, _) in result.patterns.items()} == plain

    def test_empty_result_container(self):
        result = WeightedResult({}, tau=5.0)
        assert len(result) == 0
        assert result.weighted_support(parse("(a)")) == 0.0
