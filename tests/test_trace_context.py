"""Trace identity (repro.obs.trace_context).

Minting, W3C ``traceparent`` round-trips, tolerant parsing of foreign
headers, and the ambient context-variable scope the scheduler uses to
hand a job's trace to the mining layer.
"""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs.trace_context import (
    TraceContext,
    current_trace,
    trace_scope,
)


class TestMinting:
    def test_mint_shapes(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_id is None
        int(ctx.trace_id, 16)  # both ids are hex
        int(ctx.span_id, 16)

    def test_mint_is_unique(self):
        seen = {TraceContext.mint().trace_id for _ in range(64)}
        assert len(seen) == 64

    def test_child_keeps_trace_links_parent(self):
        parent = TraceContext.mint()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_continue_trace_joins_existing_trace(self):
        ctx = TraceContext.mint()
        rejoined = TraceContext.continue_trace(ctx.trace_id)
        assert rejoined.trace_id == ctx.trace_id
        assert rejoined.span_id != ctx.span_id

    @pytest.mark.parametrize(
        "trace_id", ["", "xyz", "0" * 32, "ABCDEF" + "0" * 26, "ff" * 15]
    )
    def test_invalid_ids_rejected(self, trace_id):
        with pytest.raises(InvalidParameterError):
            TraceContext(trace_id=trace_id, span_id="1" * 16)


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext.mint()
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        # the caller's span becomes our parent; we get a fresh span
        assert parsed.parent_id == ctx.span_id
        assert parsed.span_id != ctx.span_id

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-short-01",
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span
            "ff-" + "a" * 32 + "-" + "1" * 16 + "-01",  # forbidden version
            "00-" + "a" * 32 + "-" + "1" * 16,  # missing flags
            "00-" + "a" * 32 + "-" + "1" * 16 + "-01-extra",  # v00 is exactly 4 parts
        ],
    )
    def test_malformed_headers_return_none(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_future_version_with_extra_fields_accepted(self):
        header = "cc-" + "a" * 32 + "-" + "1" * 16 + "-01-futurestuff"
        parsed = TraceContext.from_traceparent(header)
        assert parsed is not None and parsed.trace_id == "a" * 32


class TestAmbientScope:
    def test_default_is_none(self):
        assert current_trace() is None

    def test_scope_installs_and_restores(self):
        ctx = TraceContext.mint()
        with trace_scope(ctx):
            assert current_trace() is ctx
            inner = TraceContext.mint()
            with trace_scope(inner):
                assert current_trace() is inner
            assert current_trace() is ctx
        assert current_trace() is None

    def test_scope_accepts_none(self):
        with trace_scope(None):
            assert current_trace() is None
