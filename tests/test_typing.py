"""The strict-typing gate (mypy + zero type-ignores in swept core files).

The swept files — the comparator core, the whole service layer and the
fault-injection module — must carry no ``type: ignore`` escape hatches,
and — when mypy is available — must pass ``mypy --strict`` as
configured in pyproject.toml.  The mypy run is skipped, not failed, in
environments without mypy; CI installs it via the ``typecheck`` extra
(pinned so the gate does not drift with mypy releases).
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Files swept to strict typing: zero `type: ignore` comments allowed.
STRICT_FILES = (
    "src/repro/core/order.py",
    "src/repro/core/avl.py",
    "src/repro/core/keytable.py",
    "src/repro/core/sequence.py",
    "src/repro/core/comparable.py",
    "src/repro/faults.py",
    "src/repro/service/__init__.py",
    "src/repro/service/cache.py",
    "src/repro/service/errors.py",
    "src/repro/service/http.py",
    "src/repro/service/journal.py",
    "src/repro/service/registry.py",
    "src/repro/service/scheduler.py",
    "src/repro/service/service.py",
    "src/repro/service/supervise.py",
)


@pytest.mark.parametrize("rel_path", STRICT_FILES)
def test_no_type_ignores_in_strict_files(rel_path):
    source = (REPO_ROOT / rel_path).read_text(encoding="utf-8")
    assert "type: ignore" not in source, (
        f"{rel_path} is in the strict sweep; fix the types instead of "
        "adding a type: ignore"
    )


def test_comparable_protocol_accepts_flat_sequences():
    """The runtime sanity half of the protocol: flat keys order with <."""
    from repro.core.order import sort_key
    from repro.core.sequence import parse

    a = sort_key(parse("(a, c, d)(d, b)"))
    b = sort_key(parse("(a, c)(d, a)"))
    assert (a < b) or (b < a)


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (pip install -e .[typecheck])",
)
def test_mypy_strict_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
