"""Tests for the portable shard payload format (repro.cluster.payload)."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.cluster.payload import (
    PAYLOAD_MAGIC,
    ShardPayload,
    decode_shard_result,
    encode_shard_result,
    members_digest,
    mine_shard,
)
from repro.core.counting import count_frequent_items
from repro.core.discall import disc_all
from repro.db.database import SequenceDatabase
from repro.exceptions import DataFormatError, InvalidParameterError
from repro.obs import observation
from repro.obs.context import activated
from tests.conftest import random_database


def payload_for(members, delta: int, lam: int) -> ShardPayload:
    """The <(lam)>-payload a coordinator would cut from *members*."""
    frequent = count_frequent_items(members, delta)
    group = [(cid, seq) for cid, seq in members if any(lam in txn for txn in seq)]
    return ShardPayload.create(
        lam, delta, group, frozenset(frequent),
        database_digest=members_digest(members),
    )


class TestRoundTrip:
    def test_binary_round_trip(self, table6_members):
        payload = payload_for(table6_members, 3, 1)  # item a
        back = ShardPayload.from_bytes(payload.to_bytes())
        assert back == payload
        assert back.digest == payload.digest

    def test_json_round_trip(self, table6_members):
        payload = payload_for(table6_members, 3, 7)  # item g
        back = ShardPayload.from_json(payload.to_json())
        assert back == payload

    def test_both_forms_share_one_digest(self, table6_members):
        payload = payload_for(table6_members, 3, 5)
        from_binary = ShardPayload.from_bytes(payload.to_bytes())
        from_json = ShardPayload.from_dict(payload.to_dict())
        assert from_binary.digest == from_json.digest == payload.digest

    def test_random_databases_round_trip(self):
        rng = random.Random(77)
        for _ in range(20):
            members = random_database(rng).members()
            frequent = count_frequent_items(members, 2)
            for lam in frequent:
                payload = payload_for(members, 2, lam)
                assert ShardPayload.from_bytes(payload.to_bytes()) == payload
                assert ShardPayload.from_json(payload.to_json()) == payload


class TestIntegrity:
    def test_bad_magic_rejected(self, table6_members):
        blob = payload_for(table6_members, 3, 1).to_bytes()
        with pytest.raises(DataFormatError, match="magic"):
            ShardPayload.from_bytes(b"XXXX" + blob[4:])

    def test_flipped_body_byte_rejected(self, table6_members):
        blob = bytearray(payload_for(table6_members, 3, 1).to_bytes())
        blob[len(PAYLOAD_MAGIC) + 3] ^= 0xFF
        with pytest.raises(DataFormatError, match="digest trailer"):
            ShardPayload.from_bytes(bytes(blob))

    def test_truncation_rejected(self, table6_members):
        blob = payload_for(table6_members, 3, 1).to_bytes()
        with pytest.raises(DataFormatError):
            ShardPayload.from_bytes(blob[: len(blob) // 2])
        with pytest.raises(DataFormatError, match="trailer"):
            ShardPayload.from_bytes(blob[: len(PAYLOAD_MAGIC) + 10])

    def test_json_digest_mismatch_rejected(self, table6_members):
        doc = payload_for(table6_members, 3, 1).to_dict()
        doc["digest"] = "0" * 64
        with pytest.raises(DataFormatError, match="digest mismatch"):
            ShardPayload.from_dict(doc)

    def test_json_wrong_format_rejected(self, table6_members):
        doc = payload_for(table6_members, 3, 1).to_dict()
        doc["format"] = "something-else"
        with pytest.raises(DataFormatError, match="format"):
            ShardPayload.from_dict(doc)

    def test_unknown_option_rejected(self, table6_members):
        with pytest.raises(InvalidParameterError, match="unknown shard options"):
            ShardPayload.create(
                1, 3, table6_members, frozenset({1}),
                options={"turbo": True},
            )

    def test_delta_validated(self, table6_members):
        with pytest.raises(InvalidParameterError, match="delta"):
            ShardPayload.create(1, 0, table6_members, frozenset({1}))


class TestSemantics:
    def test_cost_counts_item_occurrences(self):
        members = [(1, ((1, 2), (3,))), (2, ((1,),))]
        payload = ShardPayload.create(1, 1, members, frozenset({1, 2, 3}))
        assert payload.cost() == 4

    def test_members_digest_matches_database_digest(self):
        rng = random.Random(5)
        for _ in range(10):
            db = random_database(rng)
            assert members_digest(db.members()) == db.content_digest()

    def test_options_defaulted_and_frozen_in_digest(self, table6_members):
        default = ShardPayload.create(1, 3, table6_members, frozenset({1}))
        explicit = ShardPayload.create(
            1, 3, table6_members, frozenset({1}),
            options={"backend": "table", "bilevel": True, "reduce": True},
        )
        plain = ShardPayload.create(
            1, 3, table6_members, frozenset({1}), options={"bilevel": False}
        )
        assert default.digest == explicit.digest
        assert plain.digest != default.digest

    def test_union_of_shards_equals_disc_all(self, table6_members):
        delta = 3
        frequent = count_frequent_items(table6_members, delta)
        merged = {((item,),): count for item, count in frequent.items()}
        for lam in frequent:
            patterns = mine_shard(payload_for(table6_members, delta, lam))
            # every pattern belongs to lam's partition, none repeats a 1-seq
            for raw in patterns:
                assert raw[0][0] == lam
                assert sum(len(txn) for txn in raw) >= 2
            merged.update(patterns)
        assert merged == disc_all(table6_members, delta).patterns

    def test_union_of_shards_random(self):
        rng = random.Random(23)
        for _ in range(10):
            members = random_database(rng).members()
            delta = rng.randint(1, 3)
            frequent = count_frequent_items(members, delta)
            merged = {((item,),): count for item, count in frequent.items()}
            for lam in frequent:
                merged.update(mine_shard(payload_for(members, delta, lam)))
            assert merged == disc_all(members, delta).patterns

    def test_payload_beats_pickled_job_tuple(self):
        # The cost model behind routing the local pool through payloads:
        # on a realistically-sized partition the interned varint encoding
        # undercuts pickling the raw (lam, group, ...) job tuple.
        rng = random.Random(41)
        db = SequenceDatabase.from_raw([
            [rng.sample(range(1, 200), rng.randint(2, 6)) for _ in range(8)]
            for _ in range(100)
        ])
        members = db.members()
        frequent = count_frequent_items(members, 2)
        lam = max(frequent)
        payload = payload_for(members, 2, lam)
        job = (lam, list(payload.members), 2, frozenset(frequent), True, True, "table")
        assert len(payload.to_bytes()) < len(pickle.dumps(job))


class TestShardResult:
    def test_result_round_trip(self, table6_members):
        payload = payload_for(table6_members, 3, 1)
        patterns = mine_shard(payload)
        with activated(observation()) as obs:
            obs.metrics.counter("worker.shards_mined").add(1)
            report = obs.report()
        doc = encode_shard_result(payload, patterns, report=report, trace_id="t1")
        lam, digest, decoded, back = decode_shard_result(doc)
        assert lam == payload.lam
        assert digest == payload.digest
        assert decoded == patterns
        assert back is not None
        assert back.to_dict() == report.to_dict()
        assert doc["trace_id"] == "t1"

    def test_result_without_report(self, table6_members):
        payload = payload_for(table6_members, 3, 1)
        doc = encode_shard_result(payload, {})
        assert "report" not in doc and "trace_id" not in doc
        assert decode_shard_result(doc) == (payload.lam, payload.digest, {}, None)

    def test_result_format_checked(self):
        with pytest.raises(DataFormatError, match="format"):
            decode_shard_result({"format": "nope"})
        with pytest.raises(DataFormatError, match="version"):
            decode_shard_result({"format": "repro.shard-result", "version": 99})

    def test_result_malformed_patterns(self, table6_members):
        payload = payload_for(table6_members, 3, 1)
        doc = encode_shard_result(payload, {})
        doc["patterns"] = [["not-a-sequence", "nan"]]
        with pytest.raises(DataFormatError, match="malformed shard result"):
            decode_shard_result(doc)
