"""Tests for the empirical scaling fit (repro.bench.scaling)."""

from __future__ import annotations

import pytest

from repro.bench.scaling import PowerLawFit, fit_power_law, scaling_exponents
from repro.exceptions import InvalidParameterError


class TestFitPowerLaw:
    def test_exact_power_law_recovered(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear_and_quadratic(self):
        xs = [1, 2, 4, 8, 16]
        assert fit_power_law(xs, xs).exponent == pytest.approx(1.0)
        assert fit_power_law(xs, [x * x for x in xs]).exponent == pytest.approx(2.0)

    def test_noisy_fit_reasonable(self):
        xs = [100, 200, 400, 800]
        ys = [0.01 * x**1.2 * noise for x, noise in zip(xs, (1.05, 0.95, 1.02, 0.99))]
        fit = fit_power_law(xs, ys)
        assert 1.1 < fit.exponent < 1.3
        assert fit.r_squared > 0.99

    def test_predict(self):
        fit = PowerLawFit(exponent=2.0, coefficient=3.0, r_squared=1.0)
        assert fit.predict(4) == pytest.approx(48.0)

    def test_str(self):
        fit = fit_power_law([1, 2], [2, 4])
        assert "x^1.000" in str(fit)

    @pytest.mark.parametrize(
        "xs, ys",
        [
            ([1], [1]),  # too few
            ([1, 2], [1]),  # mismatched
            ([1, 2], [0, 1]),  # non-positive y
            ([0, 2], [1, 1]),  # non-positive x
            ([2, 2], [1, 3]),  # degenerate x
        ],
    )
    def test_validation(self, xs, ys):
        with pytest.raises(InvalidParameterError):
            fit_power_law(xs, ys)


class TestScalingExponents:
    def test_per_algorithm(self):
        sizes = [100, 200, 400]
        fits = scaling_exponents(
            sizes,
            {"linear": [1, 2, 4], "quadratic": [1, 4, 16]},
        )
        assert fits["linear"].exponent == pytest.approx(1.0)
        assert fits["quadratic"].exponent == pytest.approx(2.0)

    def test_on_real_fig8_timings(self):
        """End-to-end: both miners scale roughly linearly on Figure 8's
        sweep (smoke scale), with DISC-all's exponent not exceeding
        PrefixSpan's by a wide margin."""
        from repro.bench.harness import SCALES, timed_mine
        from repro.bench.experiments import _fig8_db

        scale = SCALES["smoke"]
        sizes, disc_times, ps_times = [], [], []
        for ncust in scale.fig8_ncust:
            db = _fig8_db(scale, ncust)
            sizes.append(ncust)
            disc_times.append(max(1e-4, timed_mine(db, scale.fig8_minsup, "disc-all")[0]))
            ps_times.append(max(1e-4, timed_mine(db, scale.fig8_minsup, "prefixspan")[0]))
        fits = scaling_exponents(sizes, {"disc": disc_times, "ps": ps_times})
        # Loose sanity: neither looks quadratic on this workload.
        assert fits["disc"].exponent < 2.2
        assert fits["ps"].exponent < 2.2
