"""Unit tests for the DISC discovery procedure (repro.core.disc)."""

from __future__ import annotations

import random

import pytest

from repro.core.disc import discover_frequent_k
from repro.core.kminimum import SortedFrequentList
from repro.core.sequence import (
    all_k_subsequences,
    flatten,
    k_prefix,
    parse,
    seq_length,
    support_count,
)
from repro.core.sorted_db import KSortedDatabase, SortedEntry
from tests.conftest import random_database


def brute_frequent_k(raws, k, delta, prefixes):
    """Ground truth: frequent k-sequences whose (k-1)-prefix is allowed."""
    prefix_keys = {flatten(p) for p in prefixes}
    candidates = {
        sub
        for raw in raws
        for sub in all_k_subsequences(raw, k)
        if flatten(k_prefix(sub, k - 1)) in prefix_keys
    }
    return {
        cand: support_count(raws, cand)
        for cand in candidates
        if support_count(raws, cand) >= delta
    }


class TestDiscovery:
    @pytest.mark.parametrize("backend", ["table", "avl"])
    def test_matches_bruteforce_random(self, backend):
        rng = random.Random(51)
        for _ in range(40):
            db = random_database(rng, max_customers=10)
            members = db.members()
            raws = [raw for _, raw in members]
            k = rng.randint(2, 4)
            delta = rng.randint(1, max(1, len(raws) // 2))
            # Frequent (k-1)-sequences as the sorted list (what the
            # DISC-all driver feeds the discovery procedure).
            lower = {
                sub
                for raw in raws
                for sub in all_k_subsequences(raw, k - 1)
            }
            flist_seqs = [s for s in lower if support_count(raws, s) >= delta]
            if not flist_seqs:
                continue
            flist = SortedFrequentList(flist_seqs)
            result = discover_frequent_k(members, flist, delta, backend=backend)
            expected = brute_frequent_k(raws, k, delta, flist_seqs)
            assert result.frequent_k == expected

    def test_bilevel_matches_two_plain_passes(self):
        rng = random.Random(52)
        for _ in range(25):
            db = random_database(rng, max_customers=10)
            members = db.members()
            raws = [raw for _, raw in members]
            delta = rng.randint(1, max(1, len(raws) // 2))
            k = 2
            flist_seqs = [
                s
                for s in {
                    sub for raw in raws for sub in all_k_subsequences(raw, k - 1)
                }
                if support_count(raws, s) >= delta
            ]
            if not flist_seqs:
                continue
            flist = SortedFrequentList(flist_seqs)
            both = discover_frequent_k(members, flist, delta, bilevel=True)
            plain_k = discover_frequent_k(members, flist, delta, bilevel=False)
            assert both.frequent_k == plain_k.frequent_k
            if both.frequent_k:
                next_flist = SortedFrequentList(both.frequent_k)
                plain_k1 = discover_frequent_k(members, next_flist, delta, bilevel=False)
                assert both.frequent_k_plus_1 == plain_k1.frequent_k

    def test_supports_are_exact(self, table7_members):
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        result = discover_frequent_k(table7_members, flist, 3)
        raws = [raw for _, raw in table7_members]
        for pattern, count in result.frequent_k.items():
            assert count == support_count(raws, pattern)

    def test_empty_flist(self, table7_members):
        result = discover_frequent_k(table7_members, SortedFrequentList([]), 2)
        assert result.frequent_k == {}
        assert result.comparisons == 0

    def test_delta_larger_than_partition(self, table7_members):
        flist = SortedFrequentList([parse("(a)(a, e)")])
        result = discover_frequent_k(table7_members, flist, 100)
        assert result.frequent_k == {}

    def test_delta_validation(self, table7_members):
        with pytest.raises(ValueError):
            discover_frequent_k(table7_members, SortedFrequentList([]), 0)

    def test_delta_one_every_member_frequent(self):
        members = [(1, parse("(a)(b, c)(c)"))]
        flist = SortedFrequentList([parse("(a)(b)")])
        result = discover_frequent_k(members, flist, 1)
        assert result.frequent_k == {
            parse("(a)(b)(c)"): 1,
            parse("(a)(b, c)"): 1,
        }

    def test_comparisons_counted(self, table7_members):
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        result = discover_frequent_k(table7_members, flist, 3)
        assert result.comparisons >= 1


class TestKSortedDatabase:
    def test_drops_members_without_frequent_prefix(self):
        flist = SortedFrequentList([parse("(z)")])
        sdb = KSortedDatabase([(1, parse("(a)(b)"))], flist)
        assert len(sdb) == 0

    def test_candidate_and_condition(self, table7_members):
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        sdb = KSortedDatabase(table7_members, flist)
        assert sdb.candidate() == parse("(a)(a, e)(c)")
        assert sdb.condition(3) == parse("(a)(a, e, g)")

    def test_pop_below(self, table7_members):
        flist = SortedFrequentList(
            [parse("(a)(a, e)"), parse("(a)(a, g)"), parse("(a)(a, h)")]
        )
        sdb = KSortedDatabase(table7_members, flist)
        removed = sdb.pop_below(flatten(parse("(a)(a, e, g)")))
        assert [entry.cid for entry in removed] == [3]
        assert len(sdb) == 5

    def test_entry_kmin_property(self):
        entry = SortedEntry(1, parse("(a)(b)"), flatten(parse("(a)(b)")), 0)
        assert entry.kmin == parse("(a)(b)")
