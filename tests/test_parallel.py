"""Tests for process-parallel DISC-all (repro.core.parallel)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.cancel import CancelToken, cancel_scope
from repro.core.checkpoint import CheckpointRecorder, recording_scope
from repro.core.discall import disc_all
from repro.core.parallel import disc_all_parallel
from repro.exceptions import InjectedFaultError, OperationCancelledError
from repro.faults import FaultPlan, fault_plan
from tests.conftest import random_database


class TestParity:
    def test_sequential_mode_matches_disc_all(self):
        rng = random.Random(191)
        for _ in range(25):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            assert (
                disc_all_parallel(members, delta, processes=1).patterns
                == disc_all(members, delta).patterns
            )

    def test_pool_mode_matches_oracle(self, table6_members):
        # One real pool run (kept small: process spawn is expensive).
        out = disc_all_parallel(table6_members, 3, processes=2)
        assert out.patterns == mine_bruteforce(table6_members, 3)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            disc_all_parallel([], 0)

    def test_empty_database(self):
        assert disc_all_parallel([], 2, processes=1).patterns == {}

    def test_partition_membership_is_direct(self, table6_members):
        out = disc_all_parallel(table6_members, 3, processes=1)
        # One job per frequent item (Example 3.1: all but d).
        assert out.stats.first_level_partitions == 7

    def test_registry_entry(self, table1_db):
        from repro.mining.api import mine

        result = mine(table1_db, 2, algorithm="disc-all-parallel", processes=1)
        assert result.same_patterns(mine(table1_db, 2))


class TestCheckpointPlacement:
    """The coordinator honors cancel/checkpoint/fault at each partition."""

    def test_cancel_token_stops_between_partitions(self, table6_members):
        token = CancelToken()
        token.cancel("stop now")
        with cancel_scope(token):
            with pytest.raises(OperationCancelledError):
                disc_all_parallel(table6_members, 3, processes=1)

    def test_fault_point_fires_per_partition(self, table6_members):
        with fault_plan(FaultPlan.from_spec("disc.partition:2")) as plan:
            with pytest.raises(InjectedFaultError):
                disc_all_parallel(table6_members, 3, processes=1)
        assert plan.fired() == {"disc.partition": 1}
        assert plan.hits()["disc.partition"] == 2

    def test_recorder_marks_partitions_in_dispatch_order(self, table6_members):
        recorder = CheckpointRecorder()
        with recording_scope(recorder):
            out = disc_all_parallel(table6_members, 3, processes=1)
        # Every dispatched partition was marked done, in ascending order.
        done = recorder.completed_partitions
        assert len(done) == out.stats.first_level_partitions
        assert list(done) == sorted(done)

    def test_recorder_skips_completed_partitions(self, table6_members):
        full = disc_all_parallel(table6_members, 3, processes=1)
        # First run: cancel after two partitions, capture the watermark.
        token = CancelToken()
        recorder = CheckpointRecorder()
        original_done = recorder.partition_done

        def cancel_after_two(lam: int) -> None:
            original_done(lam)
            if len(recorder.completed_partitions) == 2:
                token.cancel("captured enough")

        recorder.partition_done = cancel_after_two  # type: ignore[method-assign]
        with cancel_scope(token), recording_scope(recorder):
            with pytest.raises(OperationCancelledError):
                disc_all_parallel(table6_members, 3, processes=1)
        assert len(recorder.completed_partitions) == 2

        # Second run resumes: completed partitions are not re-dispatched,
        # and the merged output still equals the uninterrupted run.
        from repro.core.checkpoint import MiningCheckpoint, CheckpointIdentity

        checkpoint = recorder.capture(
            CheckpointIdentity("d" * 64, 3, "disc-all-parallel", "x")
        )
        resume_recorder = CheckpointRecorder(resume_from=checkpoint)
        with recording_scope(resume_recorder):
            resumed = disc_all_parallel(table6_members, 3, processes=1)
        assert resumed.stats.first_level_partitions == (
            full.stats.first_level_partitions - 2
        )
        assert resumed.patterns == full.patterns
