"""Tests for process-parallel DISC-all (repro.core.parallel)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.discall import disc_all
from repro.core.parallel import disc_all_parallel
from tests.conftest import random_database


class TestParity:
    def test_sequential_mode_matches_disc_all(self):
        rng = random.Random(191)
        for _ in range(25):
            db = random_database(rng)
            members = db.members()
            delta = rng.randint(1, max(1, len(members)))
            assert (
                disc_all_parallel(members, delta, processes=1).patterns
                == disc_all(members, delta).patterns
            )

    def test_pool_mode_matches_oracle(self, table6_members):
        # One real pool run (kept small: process spawn is expensive).
        out = disc_all_parallel(table6_members, 3, processes=2)
        assert out.patterns == mine_bruteforce(table6_members, 3)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            disc_all_parallel([], 0)

    def test_empty_database(self):
        assert disc_all_parallel([], 2, processes=1).patterns == {}

    def test_partition_membership_is_direct(self, table6_members):
        out = disc_all_parallel(table6_members, 3, processes=1)
        # One job per frequent item (Example 3.1: all but d).
        assert out.stats.first_level_partitions == 7

    def test_registry_entry(self, table1_db):
        from repro.mining.api import mine

        result = mine(table1_db, 2, algorithm="disc-all-parallel", processes=1)
        assert result.same_patterns(mine(table1_db, 2))
