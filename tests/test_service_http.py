"""End-to-end tests for the service HTTP front-end (repro.service.http).

Each test runs a real ``ThreadingHTTPServer`` on a loopback port chosen
by the OS and talks to it over actual sockets with urllib — including
the acceptance scenario: a 2-entry queue and 1 worker under 32
concurrent ``POST /mine`` submissions must accept exactly as many jobs
as there is capacity, reject the rest with 429, serve repeats from the
cache, and drain in-flight jobs on graceful shutdown.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.discall import disc_all
from repro.db.database import SequenceDatabase
from repro.mining import registry as algorithm_registry
from repro.mining.api import mine
from repro.service import MiningService
from repro.service.http import make_server

from tests.conftest import TABLE1_TEXTS

def _spmf_text() -> str:
    from io import StringIO

    from repro.db.io import write_spmf

    buffer = StringIO()
    write_spmf(SequenceDatabase.from_texts(TABLE1_TEXTS), buffer)
    return buffer.getvalue()


#: SPMF text of the Table-1 database (items renamed to integers).
SPMF_TEXT = _spmf_text()


def http(method: str, url: str, payload: dict | None = None):
    """One HTTP round-trip; returns ``(status, parsed JSON body)``."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def http_raw(method: str, url: str, payload: dict | None = None):
    """Like :func:`http`, but also returns the response headers."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            body = json.loads(response.read().decode("utf-8"))
            return response.status, body, response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8")), exc.headers


def poll_job(base: str, job_id: str, timeout: float = 30.0) -> dict:
    """GET the job until it reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = http("GET", f"{base}/jobs/{job_id}")
        assert status == 200, body
        if body["status"] in ("done", "failed", "cancelled"):
            return body
        time.sleep(0.01)
    raise TimeoutError(f"job {job_id} did not finish within {timeout}s")


@pytest.fixture
def served():
    """A running service+server; yields ``(base_url, service)``."""
    service = MiningService(workers=1, queue_size=8, cache_entries=16)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
        service.close(drain=False, timeout=10.0)


def register_table1(base: str, name: str = "t1") -> dict:
    status, body = http(
        "POST",
        f"{base}/databases",
        {"name": name, "format": "spmf", "content": SPMF_TEXT},
    )
    assert status == 200, body
    return body


class TestEndpoints:
    def test_index_lists_endpoints(self, served):
        base, _ = served
        status, body = http("GET", base + "/")
        assert status == 200
        assert "POST /mine" in body["endpoints"]

    def test_healthz(self, served):
        base, _ = served
        status, body = http("GET", f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body) == {
            "status", "role", "databases", "cache_entries", "queue_depth",
            "jobs",
        }
        assert body["role"] == "standalone"

    def test_metrics_schema(self, served):
        base, _ = served
        status, body = http("GET", f"{base}/metrics")
        assert status == 200
        assert body["format"] == "repro.service-metrics"
        assert body["version"] == 1
        assert isinstance(body["metrics"], dict)
        assert "service.queue_depth" in body["metrics"]

    def test_register_and_mine_round_trip(self, served):
        base, service = served
        registered = register_table1(base)
        assert registered["sequences"] == 4
        assert registered["replaced"] is False

        status, body = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        assert status == 202, body
        job = poll_job(base, body["job_id"])
        assert job["status"] == "done"
        assert job["cached"] is False
        assert job["request"]["delta"] == 2

        direct = mine(SequenceDatabase.from_texts(TABLE1_TEXTS), 2)
        assert job["result"]["pattern_count"] == len(direct)
        supports = {
            entry["pattern"]: entry["support"]
            for entry in job["result"]["patterns"]
        }
        assert len(supports) == len(direct)
        assert all(count >= 2 for count in supports.values())

    def test_top_query_limits_patterns(self, served):
        base, _ = served
        register_table1(base)
        _, body = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        job = poll_job(base, body["job_id"])
        assert len(job["result"]["patterns"]) > 3
        status, limited = http("GET", f"{base}/jobs/{body['job_id']}?top=3")
        assert status == 200
        assert len(limited["result"]["patterns"]) == 3
        assert limited["result"]["pattern_count"] == job["result"]["pattern_count"]

    def test_repeat_request_served_from_cache(self, served):
        base, _ = served
        register_table1(base)
        _, first = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        poll_job(base, first["job_id"])
        status, second = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        assert status == 200  # finished synchronously
        assert second["status"] == "done"
        assert second["cached"] is True

    def test_delete_database_evicts_and_invalidates(self, served):
        base, service = served
        register_table1(base)
        _, submitted = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        poll_job(base, submitted["job_id"])
        status, body = http("DELETE", f"{base}/databases/t1")
        assert status == 200
        assert body["evicted"] == "t1"
        assert body["cache_entries_dropped"] == 1
        status, body = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_database"

    def test_jobs_listing(self, served):
        base, _ = served
        register_table1(base)
        _, submitted = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        poll_job(base, submitted["job_id"])
        status, body = http("GET", f"{base}/jobs")
        assert status == 200
        assert {"id": submitted["job_id"], "status": "done"} in body["jobs"]


class TestErrors:
    def test_unknown_endpoint(self, served):
        base, _ = served
        status, body = http("GET", f"{base}/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unknown_job(self, served):
        base, _ = served
        status, body = http("GET", f"{base}/jobs/j999999")
        assert status == 404
        assert body["error"]["code"] == "unknown_job"

    def test_unknown_database(self, served):
        base, _ = served
        status, body = http(
            "POST", f"{base}/mine", {"database": "ghost", "min_support": 2}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_database"

    def test_unknown_algorithm(self, served):
        base, _ = served
        register_table1(base)
        status, body = http(
            "POST",
            f"{base}/mine",
            {"database": "t1", "min_support": 2, "algorithm": "ghost"},
        )
        assert status == 400
        assert body["error"]["code"] == "unknown_algorithm"

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"database": "t1"},
            {"database": "t1", "min_support": True},
            {"database": "t1", "min_support": "two"},
            {"database": "t1", "min_support": 2, "options": "nope"},
            {"database": "t1", "min_support": 2, "deadline_seconds": 0},
        ],
    )
    def test_bad_mine_parameters(self, served, payload):
        base, _ = served
        register_table1(base)
        status, body = http("POST", f"{base}/mine", payload)
        assert status == 400
        assert body["error"]["code"] == "bad_parameter"

    def test_malformed_json_body(self, served):
        base, _ = served
        request = urllib.request.Request(
            f"{base}/mine", data=b"{not json", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                status, body = response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            status, body = exc.code, json.loads(exc.read().decode("utf-8"))
        assert status == 400
        assert body["error"]["code"] == "bad_parameter"

    def test_malformed_database_content(self, served):
        base, _ = served
        status, body = http(
            "POST",
            f"{base}/databases",
            {"name": "bad", "format": "spmf", "content": "1 2 oops -2\n"},
        )
        assert status == 400
        assert body["error"]["code"] == "bad_database"


class TestFaultTolerance:
    def test_job_payload_exposes_attempts_and_completeness(self, served):
        base, _ = served
        register_table1(base)
        _, submitted = http(
            "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
        )
        job = poll_job(base, submitted["job_id"])
        assert job["attempts"] == 1
        assert job["result"]["complete"] is True
        assert job["result"]["completed_k"] == 0

    def test_429_carries_retry_after(self):
        started = threading.Event()
        release = threading.Event()

        def gated(members, delta, **options):
            started.set()
            assert release.wait(30.0), "test never released the gate"
            return disc_all(members, delta).patterns

        algorithm_registry.register_algorithm(
            "gated-retry-after", gated, replace=True
        )
        service = MiningService(workers=1, queue_size=1, cache_entries=4)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            register_table1(base)
            status, _, _ = http_raw(
                "POST",
                f"{base}/mine",
                {
                    "database": "t1",
                    "min_support": 3,
                    "algorithm": "gated-retry-after",
                },
            )
            assert status == 202
            assert started.wait(30.0)
            # Fill the single queue slot, then overflow it.
            rejected = None
            for _ in range(4):
                status, body, headers = http_raw(
                    "POST",
                    f"{base}/mine",
                    {"database": "t1", "min_support": 2},
                )
                if status == 429:
                    rejected = (body, headers)
            assert rejected is not None, "queue never overflowed"
            body, headers = rejected
            assert body["error"]["code"] == "overloaded"
            retry_after = headers["Retry-After"]
            assert retry_after is not None
            assert int(retry_after) >= 1  # RFC 9110: delay-seconds
            assert body["error"]["retry_after_seconds"] == int(retry_after)
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
            service.close(drain=True, timeout=30.0)


class TestAcceptance:
    """The issue's end-to-end scenario, over real sockets."""

    def test_backpressure_cache_and_graceful_drain(self):
        started = threading.Event()
        release = threading.Event()

        def gated_disc_all(members, delta, **options):
            started.set()
            assert release.wait(30.0), "test never released the gate"
            return disc_all(members, delta).patterns

        algorithm_registry.register_algorithm(
            "gated-disc-all", gated_disc_all, replace=True
        )
        service = MiningService(workers=1, queue_size=2, cache_entries=16)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            register_table1(base)

            # Occupy the single worker with a gated job.
            status, blocker = http(
                "POST",
                f"{base}/mine",
                {
                    "database": "t1",
                    "min_support": 3,
                    "algorithm": "gated-disc-all",
                },
            )
            assert status == 202
            assert started.wait(30.0)

            # 32 concurrent submissions against a 2-entry queue: exactly
            # the queue capacity is accepted, the rest get 429s.
            def submit(_):
                return http(
                    "POST",
                    f"{base}/mine",
                    {"database": "t1", "min_support": 2},
                )

            with ThreadPoolExecutor(max_workers=32) as pool:
                responses = list(pool.map(submit, range(32)))
            accepted = [body for code, body in responses if code == 202]
            rejected = [body for code, body in responses if code == 429]
            assert len(accepted) == 2
            assert len(rejected) == 30
            assert all(
                body["error"]["code"] == "overloaded" for body in rejected
            )

            # Graceful shutdown: stop admissions, drain what was accepted.
            release.set()
            closer = threading.Thread(
                target=service.close, kwargs={"drain": True}
            )
            closer.start()
            closer.join(timeout=30.0)
            assert not closer.is_alive()

            status, health = http("GET", f"{base}/healthz")
            assert health["status"] == "shutting_down"
            status, body = http(
                "POST", f"{base}/mine", {"database": "t1", "min_support": 2}
            )
            assert status == 503
            assert body["error"]["code"] == "shutting_down"

            # No accepted job was lost; results match a direct mine().
            direct = mine(SequenceDatabase.from_texts(TABLE1_TEXTS), 2)
            for submitted in accepted:
                job = poll_job(base, submitted["job_id"])
                assert job["status"] == "done"
                assert job["result"]["pattern_count"] == len(direct)
            blocked = poll_job(base, blocker["job_id"])
            assert blocked["status"] == "done"

            # The two identical accepted jobs dedup'd through the cache:
            # one mined, one was served the cached result.
            _, metrics = http("GET", f"{base}/metrics")
            series = metrics["metrics"]
            assert series["service.cache_hits"]["value"] == 1
            assert series["service.cache_misses"]["value"] == 2
            assert series["service.rejected"]["value"] == 30
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
            service.close(drain=False, timeout=10.0)
            del algorithm_registry._REGISTRY["gated-disc-all"]


class TestWorkerMembershipEndpoints:
    """The coordinator's dynamic-registration HTTP protocol."""

    WORKER_URL = "http://127.0.0.1:9"  # registration does not probe

    @pytest.fixture
    def coordinator(self):
        from repro.cluster.coordinator import WorkerPool

        pool = WorkerPool(allow_empty=True, probe_timeout=0.5)
        service = MiningService(
            workers=1, role="coordinator", worker_pool=pool
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
            service.close(drain=False, timeout=10.0)

    def test_register_heartbeat_deregister_round_trip(self, coordinator):
        status, body = http(
            "POST", coordinator + "/workers", {"url": self.WORKER_URL}
        )
        assert status == 200, body
        assert body["worker"] == self.WORKER_URL
        assert body["joined"] is True and body["lease_seconds"] > 0

        status, body = http(
            "POST", coordinator + "/workers/heartbeat", {"url": self.WORKER_URL}
        )
        assert status == 200 and body["renewed"] is True

        status, body = http("GET", coordinator + "/workers")
        assert status == 200
        assert body["counts"] == {"live": 1, "suspect": 0, "retired": 0}
        (row,) = body["workers"]
        assert row["url"] == self.WORKER_URL and row["state"] == "live"
        assert row["breaker"]["state"] == "closed"

        quoted = urllib.parse.quote(self.WORKER_URL, safe="")
        status, body = http("DELETE", f"{coordinator}/workers?url={quoted}")
        assert status == 200 and body["left"] is True
        status, body = http("GET", coordinator + "/workers")
        assert body["counts"]["retired"] == 1

    def test_heartbeat_without_lease_is_404(self, coordinator):
        status, body = http(
            "POST", coordinator + "/workers/heartbeat", {"url": self.WORKER_URL}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_worker"

    def test_register_requires_a_url(self, coordinator):
        status, body = http("POST", coordinator + "/workers", {})
        assert status == 400
        assert body["error"]["code"] == "bad_parameter"
        status, body = http("DELETE", coordinator + "/workers")
        assert status == 400
        assert body["error"]["code"] == "bad_parameter"

    def test_standalone_server_has_no_worker_table(self, served):
        base, _ = served
        status, body = http("POST", base + "/workers", {"url": self.WORKER_URL})
        assert status == 400
        assert "no worker pool" in body["error"]["message"]

    def test_healthz_reports_membership_detail(self, coordinator):
        http("POST", coordinator + "/workers", {"url": self.WORKER_URL})
        status, body = http("GET", coordinator + "/healthz")
        assert status == 200
        assert body["worker_states"] == {"live": 1, "suspect": 0, "retired": 0}
        assert body["workers"][0]["url"] == self.WORKER_URL
        assert body["dispatch_threads"] == 0
