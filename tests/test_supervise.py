"""Worker supervision (repro.service.supervise + scheduler retries).

The classification table, deterministic capped backoff, and the
scheduler integration: retryable failures resume from the job's last
checkpoint, terminal ones fail immediately, exhaustion fails the job.
"""

from __future__ import annotations

import pytest

from repro.db.database import SequenceDatabase
from repro.exceptions import (
    DataFormatError,
    InjectedFaultError,
    InvalidParameterError,
    OperationCancelledError,
    ReproError,
)
from repro.faults import FaultPlan, fault_plan
from repro.mining.api import mine
from repro.service import (
    FAILED,
    MineOutcome,
    MiningService,
    RETRYABLE,
    RetryPolicy,
    TERMINAL,
    backoff_delay,
    classify,
)

from tests.conftest import TABLE6_TEXTS


@pytest.fixture
def db() -> SequenceDatabase:
    return SequenceDatabase.from_texts(list(TABLE6_TEXTS.values()))


#: fast-retry policy so tests never sleep for real
QUICK = RetryPolicy(max_retries=3, base_delay=0.001, max_delay=0.01)


class TestClassify:
    @pytest.mark.parametrize(
        ("exc", "expected"),
        [
            (OperationCancelledError("deadline"), TERMINAL),
            (InjectedFaultError("injected"), RETRYABLE),
            (ReproError("validation"), TERMINAL),
            (DataFormatError("bad payload"), TERMINAL),
            (MemoryError(), RETRYABLE),
            (RuntimeError("bug"), RETRYABLE),
        ],
    )
    def test_classification_table(self, exc, expected):
        assert classify(exc) == expected

    def test_injected_fault_beats_repro_error_ordering(self):
        # InjectedFaultError IS a ReproError; the retryable branch must
        # win or fault-injection tests could never exercise retries.
        assert issubclass(InjectedFaultError, ReproError)
        assert classify(InjectedFaultError("x")) == RETRYABLE


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=1.5)

    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=5.0, jitter=0.0)
        assert backoff_delay(1, policy) == 1.0
        assert backoff_delay(2, policy) == 2.0
        assert backoff_delay(3, policy) == 4.0
        assert backoff_delay(4, policy) == 5.0  # capped
        assert backoff_delay(10, policy) == 5.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.5, seed=3)
        first = backoff_delay(2, policy)
        assert first == backoff_delay(2, policy)
        assert 2.0 <= first <= 3.0  # base 2.0 plus at most 50%
        other_seed = RetryPolicy(
            base_delay=1.0, max_delay=8.0, jitter=0.5, seed=4
        )
        assert backoff_delay(2, other_seed) != first

    def test_attempt_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            backoff_delay(0, QUICK)


class TestSchedulerRetries:
    def test_retryable_failure_is_retried_to_success(self, db):
        reference = mine(db, 2)
        service = MiningService(workers=1, retry_policy=QUICK)
        service.register_database("demo", db)
        with fault_plan(FaultPlan.from_spec("worker.crash:1")):
            job = service.submit_mine("demo", 2)
            service.wait(job.id, timeout=60)
        assert job.state == "done"
        assert job.attempts == 2
        outcome = job.result
        assert isinstance(outcome, MineOutcome)
        assert outcome.result.patterns == reference.patterns
        snapshot = service.metrics_snapshot()
        assert snapshot["service.retries"]["value"] == 1
        service.close()

    def test_retry_resumes_from_job_progress(self, db):
        # Crash mid-mine (after some partitions) — the retry must resume
        # from the in-memory checkpoint and still produce the full set.
        reference = mine(db, 2)
        service = MiningService(workers=1, retry_policy=QUICK)
        service.register_database("demo", db)
        with fault_plan(FaultPlan.from_spec("disc.partition:3")):
            job = service.submit_mine("demo", 2)
            service.wait(job.id, timeout=60)
        assert job.state == "done"
        assert job.attempts == 2
        assert job.progress is not None  # the checkpoint the retry used
        outcome = job.result
        assert outcome.result.patterns == reference.patterns
        service.close()

    def test_exhausted_retries_fail_the_job(self, db):
        service = MiningService(
            workers=1,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.001,
                                     max_delay=0.01),
        )
        service.register_database("demo", db)
        with fault_plan(FaultPlan.from_spec("worker.crash:1+")):
            job = service.submit_mine("demo", 2)
            service.wait(job.id, timeout=60)
        assert job.state == FAILED
        assert job.attempts == 2  # the first attempt plus one retry
        service.close()

    def test_terminal_failure_is_not_retried(self, db):
        service = MiningService(workers=1, retry_policy=QUICK)
        service.register_database("demo", db)
        # closed+maximal is a validation error (ReproError -> terminal):
        # retrying a deterministic input failure would repeat it forever.
        job = service.submit_mine(
            "demo", 2, options={"closed": True, "maximal": True}
        )
        service.wait(job.id, timeout=60)
        assert job.state == FAILED
        assert job.attempts == 1
        service.close()

    def test_deadline_expiry_is_a_partial_done_not_a_retry(self, db):
        service = MiningService(workers=1, retry_policy=QUICK)
        service.register_database("demo", db)
        job = service.submit_mine("demo", 2, deadline_seconds=0.0001)
        service.wait(job.id, timeout=60)
        assert job.state == "done"
        assert job.attempts == 1  # partial completion consumes no retries
        outcome = job.result
        assert isinstance(outcome, MineOutcome)
        assert not outcome.result.complete
        service.close()

    def test_no_retry_policy_means_single_attempt(self, db):
        service = MiningService(workers=1)  # retry_policy=None
        service.register_database("demo", db)
        with fault_plan(FaultPlan.from_spec("worker.crash:1")):
            job = service.submit_mine("demo", 2)
            service.wait(job.id, timeout=60)
        assert job.state == FAILED
        assert job.attempts == 1
        service.close()
