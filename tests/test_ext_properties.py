"""Property-based tests for the extension modules (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.baselines.bruteforce import mine_bruteforce
from repro.core.sequence import contains, flatten, seq_length
from repro.ext.constraints import Constraints, contains_constrained, mine_constrained
from repro.ext.rules import generate_rules
from repro.ext.topk import mine_topk
from repro.ext.weighted import mine_weighted, pattern_weight

items = st.integers(min_value=1, max_value=5)
transactions = st.frozensets(items, min_size=1, max_size=3).map(
    lambda s: tuple(sorted(s))
)
sequences = st.lists(transactions, min_size=1, max_size=4).map(tuple)
databases = st.lists(sequences, min_size=1, max_size=8)


# -- constraints ---------------------------------------------------------------


@given(databases, st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_unconstrained_mining_equals_plain(raws, delta):
    members = list(enumerate(raws, 1))
    assert mine_constrained(members, delta) == mine_bruteforce(members, delta)


@given(
    databases,
    st.integers(1, 3),
    st.integers(1, 3),
)
@settings(max_examples=30, deadline=None)
def test_tighter_max_gap_shrinks_results(raws, delta, max_gap):
    members = list(enumerate(raws, 1))
    tight = mine_constrained(members, delta, Constraints(max_gap=max_gap))
    loose = mine_constrained(members, delta, Constraints(max_gap=max_gap + 1))
    assert set(tight) <= set(loose)
    for pattern, count in tight.items():
        assert count <= loose[pattern]


@given(sequences, st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_constrained_containment_implies_plain(seq, max_gap):
    from repro.core.sequence import all_k_subsequences

    constraints = Constraints(max_gap=max_gap)
    for k in range(1, min(4, seq_length(seq)) + 1):
        for pattern in all_k_subsequences(seq, k):
            if contains_constrained(seq, pattern, constraints):
                assert contains(seq, pattern)


# -- top-k ---------------------------------------------------------------------


@given(databases, st.integers(1, 10))
@settings(max_examples=25, deadline=None)
def test_topk_is_ranking_prefix(raws, k):
    members = list(enumerate(raws, 1))
    full = mine_bruteforce(members, 1)
    ranked = sorted(full.items(), key=lambda pc: (-pc[1], flatten(pc[0])))
    assert mine_topk(members, k) == ranked[:k]


@given(databases, st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_topk_monotone_in_k(raws, k):
    members = list(enumerate(raws, 1))
    smaller = mine_topk(members, k)
    larger = mine_topk(members, k + 3)
    assert larger[: len(smaller)] == smaller


# -- weighted -------------------------------------------------------------------


@given(databases, st.floats(min_value=0.5, max_value=4.0))
@settings(max_examples=25, deadline=None)
def test_weighted_uniform_weights_reduce_to_threshold(raws, tau):
    members = list(enumerate(raws, 1))
    import math

    result = mine_weighted(members, {}, tau)
    delta = max(1, math.ceil(tau))
    plain = mine_bruteforce(members, delta)
    assert {p: c for p, (c, _) in result.patterns.items()} == plain


@given(databases)
@settings(max_examples=25, deadline=None)
def test_weighted_supports_consistent(raws):
    members = list(enumerate(raws, 1))
    weights = {1: 2.0, 2: 0.5}
    result = mine_weighted(members, weights, tau=1.0)
    for pattern, (count, wsup) in result.patterns.items():
        assert wsup == count * pattern_weight(pattern, weights)
        assert wsup >= 1.0


# -- rules ----------------------------------------------------------------------


@given(databases, st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_rule_confidence_bounds(raws, delta):
    members = list(enumerate(raws, 1))
    patterns = mine_bruteforce(members, delta)
    for rule in generate_rules(patterns, len(raws), min_confidence=0.01):
        assert 0.0 < rule.confidence <= 1.0
        assert rule.support >= delta
        assert rule.lift > 0
        # The rule's sides glue back to a frequent sequence.
        assert rule.antecedent + rule.consequent in patterns
