"""Advanced features tour: top-k, constraints, closed patterns, verify.

Run:  python examples/advanced_features.py

Uses a synthetic support-ticket workflow log (ticket states over time)
to demonstrate the extension modules beyond the paper's core algorithm:

* top-k mining when no good support threshold is known in advance;
* gap/span constraints ("states must follow within two steps");
* closed/maximal compression of the result;
* independent verification of a mining run.
"""

from __future__ import annotations

import random

from repro.core.sequence import format_seq
from repro.db.database import SequenceDatabase
from repro.ext.constraints import Constraints, mine_constrained
from repro.ext.topk import mine_topk
from repro.mining.api import mine
from repro.mining.verify import verify_patterns

STATES = [
    "opened", "triaged", "assigned", "in-progress", "blocked",
    "review", "reopened", "resolved", "closed",
]

FLOWS = [
    (["opened", "triaged", "assigned", "in-progress", "review", "resolved", "closed"], 0.5),
    (["opened", "triaged", "assigned", "in-progress", "blocked", "in-progress", "resolved"], 0.2),
    (["opened", "resolved", "reopened", "assigned", "resolved", "closed"], 0.15),
]


def synthesise_tickets(n: int = 300, seed: int = 21):
    rng = random.Random(seed)
    tickets = []
    for _ in range(n):
        roll = rng.random()
        acc = 0.0
        flow = None
        for states, share in FLOWS:
            acc += share
            if roll < acc:
                flow = list(states)
                break
        if flow is None:  # fully random ticket history
            flow = rng.choices(STATES, k=rng.randint(3, 7))
        # Drop / duplicate a step occasionally (messy real-world logs).
        if rng.random() < 0.3 and len(flow) > 3:
            flow.pop(rng.randrange(len(flow)))
        if rng.random() < 0.2:
            flow.insert(rng.randrange(len(flow)), rng.choice(STATES))
        tickets.append([[state] for state in flow])
    return tickets


def main() -> None:
    db = SequenceDatabase.from_itemsets(synthesise_tickets())
    vocab = db.vocabulary
    assert vocab is not None

    def pretty(raw) -> str:
        return " -> ".join(txn[0] for txn in vocab.decode(raw))

    # 1. Top-k: no threshold guessing.
    print("top 8 state sequences of 3+ steps:")
    for pattern, count in mine_topk(db.members(), 8, min_length=3):
        print(f"  {count:4d}  {pretty(pattern)}")

    # 2. Constraints: consecutive states at most 2 log steps apart, the
    #    whole pattern within a span of 6.
    constraints = Constraints(max_gap=2, max_span=6)
    constrained = mine_constrained(db.members(), delta=45, constraints=constraints)
    plain = mine(db, 45, algorithm="disc-all")
    print(
        f"\nconstrained mining (max_gap=2, max_span=6): "
        f"{len(constrained)} patterns vs {len(plain)} unconstrained"
    )
    tight = [
        (count, raw) for raw, count in constrained.items() if len(raw) >= 4
    ]
    for count, raw in sorted(tight, reverse=True)[:5]:
        print(f"  {count:4d}  {pretty(raw)}")

    # 3. Closed and maximal compression.
    closed = plain.closed_patterns()
    maximal = plain.maximal_patterns()
    print(
        f"\ncompression: {len(plain)} frequent -> {len(closed)} closed "
        f"-> {len(maximal)} maximal"
    )
    print("longest maximal flows:")
    longest = sorted(maximal, key=len, reverse=True)[:3]
    for raw in longest:
        print(f"  {maximal[raw]:4d}  {pretty(raw)}")

    # 4. Independent verification of the run.
    report = verify_patterns(
        plain.patterns, list(db.sequences), plain.delta, sample=100
    )
    print("\n" + report.summary())
    for error in report.errors:
        print("  " + error)
    assert report.ok


if __name__ == "__main__":
    main()
