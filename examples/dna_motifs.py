"""DNA subsequence mining — the paper cites biological sequence analysis
([3], [15] and the §5 DNA discussion) as a target domain.

Run:  python examples/dna_motifs.py

Plants two motifs into random DNA reads, mines the frequent subsequences
at several support thresholds (each base is a 1-item transaction — gaps
are allowed, as in subsequence-based motif models), and shows how the
threshold sweep trades recall for noise, mirroring the paper's Figure 9
axis.
"""

from __future__ import annotations

import random

from repro.db.database import SequenceDatabase
from repro.mining.api import mine

BASES = "ACGT"
MOTIFS = ["TATAAT", "GGGCGG"]  # Pribnow box, GC box


def synthesise_reads(n_reads: int = 200, read_len: int = 24, seed: int = 3):
    """Random reads; ~45% carry motif 1, ~35% motif 2 (possibly mutated)."""
    rng = random.Random(seed)
    reads = []
    for _ in range(n_reads):
        read = [rng.choice(BASES) for _ in range(read_len)]
        for motif, share in zip(MOTIFS, (0.45, 0.35)):
            if rng.random() < share:
                start = rng.randrange(0, read_len - len(motif))
                for offset, base in enumerate(motif):
                    # 5% per-base mutation keeps it realistic.
                    read[start + offset] = (
                        base if rng.random() >= 0.05 else rng.choice(BASES)
                    )
        reads.append("".join(read))
    return reads


def main() -> None:
    reads = synthesise_reads()
    db = SequenceDatabase.from_itemsets(
        [[[base] for base in read] for read in reads]
    )
    print(f"{len(db)} reads of length {len(reads[0])}")

    for min_support in (0.45, 0.35, 0.3):
        result = mine(db, min_support=min_support, algorithm="disc-all")
        longest = result.max_length()
        print(
            f"\nmin_support={min_support}: {len(result)} frequent "
            f"subsequences, longest {longest}"
        )
        vocab = db.vocabulary
        assert vocab is not None
        motifs = [
            ("".join(txn[0] for txn in vocab.decode(raw)), count)
            for raw, count in result.of_length(longest).items()
        ]
        for text, count in sorted(motifs, key=lambda mc: -mc[1])[:6]:
            print(f"  {text}  x{count}")

    # Sanity: both planted motifs are recovered as frequent subsequences
    # at the loosest threshold (as subsequences, gaps allowed).
    result = mine(db, min_support=0.3, algorithm="disc-all")
    vocab = db.vocabulary
    for motif in MOTIFS:
        support = result.support_of_items([[base] for base in motif])
        print(f"\nplanted motif {motif}: support {support}")


if __name__ == "__main__":
    main()
