"""Quickstart: mine the paper's example database.

Run:  python examples/quickstart.py

Builds the four-customer database of the paper's Table 1, mines it with
DISC-all at minimum support count 2, and walks through the result API.
"""

from repro import Sequence, SequenceDatabase, mine


def main() -> None:
    # Table 1 of the paper: four customers, itemsets in parentheses.
    db = SequenceDatabase.from_texts(
        [
            "(a, e, g)(b)(h)(f)(c)(b, f)",
            "(b)(d, f)(e)",
            "(b, f, g)",
            "(f)(a, g)(b, f, h)(b, f)",
        ]
    )
    print(f"database: {db!r}, avg transactions {db.stats.avg_transactions:.1f}")

    # Mine every sequence supported by at least 2 customers.  DISC-all is
    # the paper's algorithm; swap algorithm= for any of:
    # dynamic-disc-all, prefixspan, pseudo, gsp, spade, spam, bruteforce.
    result = mine(db, min_support=2, algorithm="disc-all")
    print(result.summary())

    # Look up individual supports.
    for text in ["(a, g)(b)", "(b, f)", "(a)(b)(b)", "(h)(c)"]:
        print(f"  support{text:>14} = {result.support(text)}")

    # The ten smallest frequent 3-sequences in the comparative order.
    print("\nfrequent 3-sequences (first ten in comparative order):")
    threes = sorted(result.of_length(3).items())
    for raw, count in threes[:10]:
        print(f"  {count}  {Sequence.from_raw(raw)}")

    # Maximal patterns compress the result: nothing frequent extends them.
    print("\nmaximal frequent sequences:")
    for raw, count in sorted(result.maximal_patterns().items()):
        print(f"  {count}  {Sequence.from_raw(raw)}")

    # Every algorithm returns the identical pattern set.
    other = mine(db, min_support=2, algorithm="spade")
    assert result.same_patterns(other)
    print("\nSPADE agrees with DISC-all on all", len(result), "patterns")


if __name__ == "__main__":
    main()
