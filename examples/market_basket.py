"""Market-basket analysis: the application the paper's introduction leads
with ("marketing data analysis").

Run:  python examples/market_basket.py

Synthesises a raw retail transaction log (customer, day, product) with
planted purchase habits, ingests it through the CSV reader — the same
shape as the customer/transaction-time/items schema of [1] — and mines
the repeat-purchase sequences with DISC-all.
"""

from __future__ import annotations

import csv
import io
import random

from repro.db.io import read_transaction_log
from repro.mining.api import mine

PRODUCTS = [
    "apples", "bananas", "beer", "bread", "butter", "cereal", "cheese",
    "coffee", "diapers", "eggs", "milk", "pasta", "rice", "salsa", "tea",
]

#: Planted habits: (sequence of baskets, share of customers who follow it).
HABITS = [
    ([("bread", "butter"), ("bread", "butter"), ("jam",)], 0.30),
    ([("diapers",), ("beer", "diapers")], 0.25),
    ([("coffee",), ("coffee",), ("coffee", "milk")], 0.35),
    ([("pasta", "salsa"), ("cheese",)], 0.20),
]


def synthesise_log(n_customers: int = 300, seed: int = 42) -> str:
    """A CSV transaction log with habits embedded in random noise."""
    rng = random.Random(seed)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["customer_id", "day", "product"])
    for customer in range(1, n_customers + 1):
        day = 0
        baskets: list[tuple[str, ...]] = []
        for habit, share in HABITS:
            if rng.random() < share:
                baskets.extend(tuple(basket) for basket in habit)
        for _ in range(rng.randint(1, 4)):  # noise visits
            baskets.append(tuple(rng.sample(PRODUCTS, rng.randint(1, 3))))
        rng.shuffle(baskets)
        for basket in baskets:
            day += rng.randint(1, 7)
            for product in basket:
                writer.writerow([f"c{customer:04d}", f"{day:03d}", product])
    return buffer.getvalue()


def main() -> None:
    log_text = synthesise_log()
    db = read_transaction_log(io.StringIO(log_text))
    stats = db.stats
    print(
        f"ingested {stats.num_sequences} customers, "
        f"{stats.total_transactions} store visits, "
        f"{stats.num_distinct_items} products"
    )

    # 12% of customers must share a buying sequence for it to count.
    result = mine(db, min_support=0.12, algorithm="disc-all")
    print(result.summary())

    print("\nrepeat-purchase sequences spanning 2+ visits:")
    shown = 0
    for pattern, support in result.decoded():
        if len(pattern) < 2:  # at least two separate visits
            continue
        visits = " -> ".join("{" + ", ".join(txn) + "}" for txn in pattern)
        print(f"  {support:4d}  {visits}")
        shown += 1
        if shown >= 12:
            break

    # The planted habits should surface.
    assert result.support_of_items([["coffee"], ["coffee"]]) > 0
    print("\nplanted coffee habit recovered "
          f"(support {result.support_of_items([['coffee'], ['coffee']])})")

    # Sequential rules: "customers who bought A then B go on to buy C".
    from repro.ext.rules import generate_rules

    vocab = db.vocabulary
    assert vocab is not None
    rules = generate_rules(result.patterns, len(db), min_confidence=0.6)
    print(f"\n{len(rules)} rules at confidence >= 0.6; strongest five:")
    for rule in rules[:5]:
        lhs = " -> ".join(
            "{" + ", ".join(txn) + "}" for txn in vocab.decode(rule.antecedent)
        )
        rhs = " -> ".join(
            "{" + ", ".join(txn) + "}" for txn in vocab.decode(rule.consequent)
        )
        print(
            f"  {lhs}  =>  {rhs}"
            f"   (conf {rule.confidence:.2f}, lift {rule.lift:.2f}, "
            f"sup {rule.support})"
        )


if __name__ == "__main__":
    main()
