"""Web clickstream mining — the paper's §5 motivates exactly this:
"finding the traversal patterns in the WWW, different pages may have a
variety of importance, e.g. page weights".

Run:  python examples/clickstream.py

Synthesises browsing sessions over a small site graph, mines the plain
frequent navigation paths with DISC-all, then re-ranks with the weighted
extension (repro.ext.weighted), where conversion-critical pages carry
high weights — a low-traffic path through /checkout can outrank a
high-traffic path through /home.
"""

from __future__ import annotations

import random

from repro.db.database import SequenceDatabase
from repro.ext.weighted import mine_weighted
from repro.mining.api import mine

#: Site pages and their navigation graph (page -> likely next pages).
SITE = {
    "/home": ["/search", "/category", "/blog"],
    "/search": ["/product", "/category"],
    "/category": ["/product", "/product", "/search"],
    "/product": ["/cart", "/product", "/home"],
    "/cart": ["/checkout", "/product"],
    "/checkout": ["/thanks"],
    "/blog": ["/home", "/blog"],
    "/thanks": [],
}

#: Business value of each page (the paper's "page weights").
PAGE_WEIGHTS = {
    "/home": 0.5,
    "/blog": 0.5,
    "/search": 1.0,
    "/category": 1.0,
    "/product": 2.0,
    "/cart": 5.0,
    "/checkout": 9.0,
    "/thanks": 9.0,
}


def synthesise_sessions(n_sessions: int = 400, seed: int = 7):
    """Random walks over the site graph; each click is one transaction."""
    rng = random.Random(seed)
    sessions = []
    for _ in range(n_sessions):
        page = rng.choice(["/home", "/home", "/search", "/category"])
        clicks = [page]
        for _ in range(rng.randint(2, 8)):
            nxt = SITE.get(page) or []
            if not nxt:
                break
            page = rng.choice(nxt)
            clicks.append(page)
        sessions.append([[p] for p in clicks])
    return sessions


def main() -> None:
    sessions = synthesise_sessions()
    db = SequenceDatabase.from_itemsets(sessions)
    print(f"{len(db)} sessions, {db.stats.avg_transactions:.1f} clicks/session")

    result = mine(db, min_support=0.05, algorithm="disc-all")
    print(result.summary())
    print("\ntop navigation paths by plain support (3+ clicks):")
    paths = [
        (support, pattern)
        for pattern, support in result.decoded()
        if len(pattern) >= 3
    ]
    for support, pattern in sorted(paths, reverse=True)[:8]:
        print(f"  {support:4d}  " + " > ".join(txn[0] for txn in pattern))

    # Weighted view: conversion pages dominate even at lower traffic.
    vocab = db.vocabulary
    assert vocab is not None
    weights = {vocab.id_of(page): weight for page, weight in PAGE_WEIGHTS.items()}
    tau = 0.12 * len(db)  # weighted-support threshold
    weighted = mine_weighted(db.members(), weights, tau)
    print(f"\nweighted paths (tau = {tau:.0f}), ranked by weighted support:")
    ranked = sorted(
        (
            (wsup, count, pattern)
            for pattern, (count, wsup) in weighted.patterns.items()
            if len(pattern) >= 2
        ),
        reverse=True,
    )
    for wsup, count, pattern in ranked[:8]:
        path = " > ".join(txn[0] for txn in vocab.decode(pattern))
        print(f"  wsup {wsup:7.1f} (raw {count:3d})  {path}")


if __name__ == "__main__":
    main()
