"""Reproduce the paper's evaluation section in one run.

Run:  python examples/reproduce_paper.py [scale]

Regenerates every table and figure of the paper (Figures 8-10, Tables
12-14) plus this reproduction's own ablation and memory experiments, and
prints them as the ASCII tables recorded in EXPERIMENTS.md.  The default
``smoke`` scale finishes in a couple of minutes; pass ``repro`` for the
laptop-scale runs the documentation quotes.
"""

from __future__ import annotations

import sys
import time

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import SCALES, run_experiment

ORDER = ["fig8", "fig9", "fig10", "table12", "table13", "table14",
         "ablation", "memory", "operations"]


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    if scale not in SCALES:
        raise SystemExit(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    print(f"reproducing the evaluation at scale '{scale}'")
    print("=" * 70)
    total = time.perf_counter()
    for name in ORDER:
        assert name in EXPERIMENTS
        started = time.perf_counter()
        result = run_experiment(name, scale=scale)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    print("=" * 70)
    print(f"full evaluation regenerated in {time.perf_counter() - total:.1f}s")
    print("compare the shapes against EXPERIMENTS.md")


if __name__ == "__main__":
    main()
