"""Command-line interface (system S22).

Usage examples::

    repro generate --ncust 1000 --slen 8 --nitems 400 --seed 1 -o db.spmf
    repro mine db.spmf --min-support 0.01 --algorithm disc-all --top 20
    repro experiment fig8 --scale repro
    repro algorithms
    repro stats db.spmf
    repro lint src/ --format json
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from pathlib import Path

from repro.bench.harness import SCALES, run_experiment
from repro.bench.experiments import EXPERIMENTS
from repro.core.sequence import format_seq, seq_length
from repro.datagen import QuestParams, generate
from repro.db import io as dbio
from repro.db.database import SequenceDatabase
from repro.exceptions import InvalidParameterError, ReproError
from repro.mining.api import mine
from repro.mining.registry import available_algorithms


def _read_db(path: str, fmt: str | None = None) -> SequenceDatabase:
    """Read a database file, ``-`` meaning stdin.

    *fmt* (``spmf`` / ``paper``) overrides the filename-suffix dispatch;
    it is required for stdin, where there is no suffix to dispatch on.
    """
    if path == "-":
        if fmt is None:
            raise InvalidParameterError(
                "reading a database from stdin requires --format {spmf,paper}"
            )
        reader = dbio.read_paper if fmt == "paper" else dbio.read_spmf
        return reader(sys.stdin)
    if fmt is not None:
        reader = dbio.read_paper if fmt == "paper" else dbio.read_spmf
        return reader(path)
    if path.endswith(".txt") or path.endswith(".paper"):
        return dbio.read_paper(path)
    return dbio.read_spmf(path)


def _add_database_arg(parser: argparse.ArgumentParser) -> None:
    """The shared positional database argument plus its --format flag."""
    parser.add_argument(
        "database", help="input file (.spmf or .txt), or '-' for stdin"
    )
    parser.add_argument(
        "--format", choices=("spmf", "paper"), default=None,
        help="input format (required for stdin; otherwise by file suffix)",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    params = QuestParams(
        ncust=args.ncust,
        slen=args.slen,
        tlen=args.tlen,
        nitems=args.nitems,
        patlen=args.patlen,
        npats=args.npats,
        nlits=args.nlits,
        litlen=args.litlen,
        corr=args.corr,
        seed=args.seed,
    )
    db = generate(params)
    target = Path(args.output)
    if target.suffix in (".txt", ".paper"):
        dbio.write_paper(db, target)
    else:
        dbio.write_spmf(db, target)
    stats = db.stats
    print(
        f"wrote {stats.num_sequences} sequences "
        f"({stats.num_distinct_items} items, theta={stats.avg_transactions:.2f}, "
        f"tlen={stats.avg_items_per_transaction:.2f}) to {target}"
    )
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    db = _read_db(args.database, args.format)
    min_support: float | int
    if args.min_support >= 1:
        min_support = int(args.min_support)
    else:
        min_support = args.min_support
    observe = bool(args.trace or args.metrics_json or args.events)
    options: dict[str, object] = {}
    if args.processes:
        if args.algorithm != "disc-all-parallel":
            raise InvalidParameterError(
                "--processes only applies to --algorithm disc-all-parallel "
                f"(got {args.algorithm!r})"
            )
        if args.processes < 1:
            raise InvalidParameterError(
                f"--processes must be >= 1, got {args.processes}"
            )
        options["processes"] = args.processes
    if args.events:
        from repro.obs.events import EventLog, event_log

        sink = EventLog(args.events)
        try:
            with event_log(sink):
                result = mine(
                    db, min_support, algorithm=args.algorithm,
                    observe=observe, **options
                )
        finally:
            sink.close()
        print(f"wrote event log to {args.events}")
    else:
        result = mine(
            db, min_support, algorithm=args.algorithm, observe=observe, **options
        )
    print(result.summary())
    if result.report is not None:
        if args.trace:
            print(result.report.render())
        if args.metrics_json:
            Path(args.metrics_json).write_text(
                result.report.to_json(), encoding="utf-8"
            )
            print(f"wrote run report to {args.metrics_json}")
    if args.save:
        from repro.mining.serialize import save_result

        save_result(result, args.save, include_report=observe)
        print(f"saved {len(result)} patterns to {args.save}")
    if args.tree:
        print(result.render_tree())
        return 0
    shown = 0
    for raw in result.sorted_patterns():
        if args.min_length and seq_length(raw) < args.min_length:
            continue
        print(f"{result.patterns[raw]:6d}  {format_seq(raw)}")
        shown += 1
        if args.top and shown >= args.top:
            break
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import json

    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    results = [run_experiment(name, scale=args.scale) for name in names]
    if args.json:
        print(json.dumps([result.to_dict() for result in results], indent=2))
    elif args.markdown:
        for result in results:
            print(result.render_markdown())
            print()
    else:
        for result in results:
            print(result.render())
            print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.baseline import collect_baseline

    if args.compare:
        from repro.bench.compare import (
            compare_against,
            load_baseline,
            render_verdict,
        )

        candidate = load_baseline(args.candidate) if args.candidate else None
        verdict = compare_against(
            args.compare,
            candidate=candidate,
            tolerance=args.tolerance,
            calibrate=args.calibrate,
        )
        print(render_verdict(verdict))
        if args.compare_json:
            Path(args.compare_json).write_text(
                json.dumps(verdict, indent=1) + "\n", encoding="utf-8"
            )
            print(f"wrote compare verdict to {args.compare_json}")
        return 0 if verdict["verdict"] == "pass" else 1

    document = collect_baseline(scale=args.scale)
    text = json.dumps(document, indent=1)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        runs = document["runs"]
        assert isinstance(runs, list)
        print(f"wrote {len(runs)} baseline runs to {args.output}")
    else:
        print(text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.bench.profiling import profile_mine, render_profile

    db = _read_db(args.database, args.format)
    min_support: float | int = (
        int(args.min_support) if args.min_support >= 1 else args.min_support
    )
    document = profile_mine(
        db, min_support, algorithm=args.algorithm, top=args.top
    )
    print(render_profile(document))
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=1) + "\n", encoding="utf-8"
        )
        print(f"wrote profile to {args.output}")
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    from repro.ext.topk import mine_topk

    db = _read_db(args.database, args.format)
    ranked = mine_topk(db.members(), args.k, min_length=args.min_length)
    for pattern, count in ranked:
        print(f"{count:6d}  {format_seq(pattern)}")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    from repro.ext.rules import generate_rules

    db = _read_db(args.database, args.format)
    min_support: float | int = (
        int(args.min_support) if args.min_support >= 1 else args.min_support
    )
    result = mine(db, min_support, algorithm=args.algorithm)
    rules = generate_rules(result.patterns, len(db), args.min_confidence)
    print(f"{len(rules)} rules (conf >= {args.min_confidence}) "
          f"from {len(result)} frequent sequences")
    for rule in rules[: args.top or len(rules)]:
        print(f"  {rule}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    db = _read_db(args.database, args.format)
    min_support: float | int = (
        int(args.min_support) if args.min_support >= 1 else args.min_support
    )
    baseline = mine(db, min_support, algorithm=args.baseline)
    print(baseline.summary())
    worst = 0
    for name in args.algorithms:
        result = mine(db, min_support, algorithm=name)
        print(result.summary())
        if not result.same_patterns(baseline):
            worst = 1
            diff = result.difference(baseline)
            for kind, lines in diff.items():
                for line in lines[:5]:
                    print(f"  {kind}: {line}")
    print("agreement:", "OK" if worst == 0 else "MISMATCH")
    return worst


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.mining.verify import verify_patterns

    db = _read_db(args.database, args.format)
    min_support: float | int = (
        int(args.min_support) if args.min_support >= 1 else args.min_support
    )
    result = mine(db, min_support, algorithm=args.algorithm)
    print(result.summary())
    report = verify_patterns(
        result.patterns,
        list(db.sequences),
        result.delta,
        sample=args.sample,
    )
    print(report.summary())
    for error in report.errors:
        print(f"  {error}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.runner import lint_from_args

    return lint_from_args(args)


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis.checker import check_from_args

    return check_from_args(args)


def _serve_worker(args: argparse.Namespace) -> int:
    """``repro serve --role worker``: a stateless shard-mining endpoint."""
    from repro.cluster.worker import ClusterWorker, CoordinatorLink, make_worker_server

    if args.databases:
        raise InvalidParameterError(
            "a worker holds no databases; every shard payload carries its "
            "own member sequences"
        )
    if not args.coordinator and (
        args.advertise or args.heartbeat_seconds is not None
    ):
        raise InvalidParameterError(
            "--advertise and --heartbeat-seconds require --coordinator"
        )
    worker = ClusterWorker(**(
        {"max_shard_bytes": args.max_shard_bytes}
        if args.max_shard_bytes is not None else {}
    ))
    server = make_worker_server(host=args.host, port=args.port, worker=worker)
    host, port = server.server_address[:2]
    print(f"repro cluster worker listening on http://{host}:{port}")
    print("endpoints: POST /shards  GET /healthz  GET /metrics")

    link = None
    if args.coordinator:
        advertise = args.advertise or f"http://{host}:{port}"
        link = CoordinatorLink(
            args.coordinator, advertise,
            heartbeat_seconds=args.heartbeat_seconds,
        )
        link.start()
        print(f"registering with coordinator {args.coordinator} as {advertise}")

    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("worker shutting down")
    finally:
        if link is not None:
            link.stop()
        server.server_close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import repro.faults as faults
    from repro.service import JobJournal, MiningService, RetryPolicy
    from repro.service.http import make_server

    if args.role == "worker":
        if args.worker:
            raise InvalidParameterError("--worker URLs only apply to --role coordinator")
        return _serve_worker(args)
    if args.coordinator or args.advertise:
        raise InvalidParameterError(
            "--coordinator and --advertise only apply to --role worker"
        )

    pool = None
    if args.role == "coordinator":
        from repro.cluster.coordinator import (
            ShardTimeout,
            WorkerPool,
            register_cluster_algorithm,
        )

        pool = WorkerPool(
            args.worker or (),
            timeout=ShardTimeout(
                base=args.shard_timeout,
                per_member=args.shard_timeout_per_member,
            ),
            lease_seconds=args.lease_seconds,
            degrade_after=args.degrade_after,
            allow_empty=True,
        )
        # registered before the service exists (and before recovery) so
        # journaled disc-all-cluster jobs validate and resume
        register_cluster_algorithm(pool)
        print(
            f"coordinator: {len(pool)} static workers, "
            f"shard timeout {args.shard_timeout:g}s"
            + (f" + {args.shard_timeout_per_member:g}s/member"
               if args.shard_timeout_per_member else "")
        )
        if not args.worker:
            print("no static workers; waiting for POST /workers registrations")
    elif args.worker:
        raise InvalidParameterError("--worker requires --role coordinator")

    if args.faults:
        faults.arm(faults.FaultPlan.from_spec(args.faults, seed=args.faults_seed))
        print(f"fault injection armed: {args.faults}")
    else:
        plan = faults.plan_from_env(os.environ)
        if plan is not None:
            faults.arm(plan)
            print(f"fault injection armed from {faults.ENV_SPEC}")

    event_sink = None
    if args.events:
        # installed before the service exists so recovery and the very
        # first accepted job are narrated too
        from repro.obs import events as obs_events
        from repro.obs.events import EventLog

        event_sink = EventLog(args.events)
        obs_events.install(event_sink)
        print(f"event log: {args.events}")

    journal = None
    if args.journal:
        journal_path = Path(args.journal)
        if journal_path.is_dir():
            journal_path = journal_path / "jobs.jsonl"
        journal = JobJournal(journal_path)
        print(f"journaling jobs to {journal_path}")

    service = MiningService(
        workers=args.workers,
        queue_size=args.queue_size,
        cache_entries=args.cache_entries,
        journal=journal,
        retry_policy=RetryPolicy(max_retries=args.max_retries),
        role=args.role,
        worker_pool=pool,
        default_algorithm="disc-all-cluster" if pool is not None else "disc-all",
    )
    for path in args.databases:
        name = "stdin" if path == "-" else Path(path).stem
        db = _read_db(path, args.format)
        entry, replaced = service.register_database(name, db)
        note = " (replaced)" if replaced else ""
        print(
            f"registered {name}: {len(db)} sequences, "
            f"digest {entry.digest[:12]}{note}"
        )
    if journal is not None:
        # Recovery runs after database registration so interrupted jobs
        # can be matched against their database by name and digest.
        summary = service.recover()
        if any(summary.values()):
            print(
                "recovery: "
                f"{summary['resumed']} resumed, "
                f"{summary['restarted']} restarted, "
                f"{summary['failed']} failed, "
                f"{summary['corrupt_lines']} corrupt journal lines"
            )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"repro service listening on http://{host}:{port}")
    print("endpoints: POST /mine  GET /jobs/<id>  GET /healthz  GET /metrics")

    def _terminate(signum: int, frame: object) -> None:
        # SIGTERM (docker stop, kill) drains exactly like Ctrl-C; also
        # covers shells that spawn background children with SIGINT ignored
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down: draining in-flight jobs...")
    finally:
        server.server_close()
        service.close(drain=True)
        if event_sink is not None:
            from repro.obs import events as obs_events

            obs_events.install(None)
            event_sink.close()
    return 0


def _cmd_algorithms(_args: argparse.Namespace) -> int:
    for name in available_algorithms():
        print(name)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = _read_db(args.database, args.format)
    stats = db.stats
    print(f"sequences:            {stats.num_sequences}")
    print(f"distinct items:       {stats.num_distinct_items}")
    print(f"total transactions:   {stats.total_transactions}")
    print(f"total items:          {stats.total_items}")
    print(f"avg transactions:     {stats.avg_transactions:.3f}")
    print(f"avg items/transaction:{stats.avg_items_per_transaction:.3f}")
    print(f"max sequence length:  {stats.max_length}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DISC sequential pattern mining (ICDE 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a Quest-style database")
    gen.add_argument("--ncust", type=int, default=1000)
    gen.add_argument("--slen", type=float, default=10.0)
    gen.add_argument("--tlen", type=float, default=2.5)
    gen.add_argument("--nitems", type=int, default=1000)
    gen.add_argument("--patlen", type=float, default=4.0)
    gen.add_argument("--npats", type=int, default=500)
    gen.add_argument("--nlits", type=int, default=1000)
    gen.add_argument("--litlen", type=float, default=1.25)
    gen.add_argument("--corr", type=float, default=0.25)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help=".spmf or .txt")
    gen.set_defaults(func=_cmd_generate)

    mine_cmd = sub.add_parser("mine", help="mine frequent sequences")
    _add_database_arg(mine_cmd)
    mine_cmd.add_argument(
        "--min-support", type=float, required=True,
        help="fraction (<1) of sequences or absolute count (>=1)",
    )
    mine_cmd.add_argument(
        "--algorithm", default="disc-all", choices=available_algorithms()
    )
    mine_cmd.add_argument("--top", type=int, default=0, help="show at most N patterns")
    mine_cmd.add_argument("--min-length", type=int, default=0)
    mine_cmd.add_argument("--save", default="", help="write the result as JSON")
    mine_cmd.add_argument("--tree", action="store_true",
                          help="render patterns as an indented prefix tree")
    mine_cmd.add_argument("--trace", action="store_true",
                          help="run instrumented and print the span/metric report")
    mine_cmd.add_argument("--metrics-json", default="",
                          help="run instrumented and write the run report as JSON")
    mine_cmd.add_argument("--processes", type=int, default=0, metavar="N",
                          help="worker processes for --algorithm "
                               "disc-all-parallel (0 = executor default)")
    mine_cmd.add_argument("--events", default="", metavar="PATH",
                          help="run instrumented and append structured JSONL "
                               "events (mine.phase, ...) to PATH")
    mine_cmd.set_defaults(func=_cmd_mine)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=[*sorted(EXPERIMENTS), "all"])
    exp.add_argument("--scale", default="repro", choices=sorted(SCALES))
    exp.add_argument("--json", action="store_true",
                     help="emit machine-readable JSON instead of tables")
    exp.add_argument("--markdown", action="store_true",
                     help="emit markdown tables (EXPERIMENTS.md style)")
    exp.set_defaults(func=_cmd_experiment)

    bench = sub.add_parser(
        "bench", help="collect an instrumented benchmark baseline (BENCH_*.json)"
    )
    bench.add_argument("--scale", default="repro", choices=sorted(SCALES))
    bench.add_argument("-o", "--output", default="",
                       help="write the baseline document here (default: stdout)")
    bench.add_argument("--compare", default="", metavar="BASELINE",
                       help="perf-regression gate: compare a fresh run (or "
                            "--candidate) against this baseline document; "
                            "exits 1 on regression")
    bench.add_argument("--candidate", default="", metavar="PATH",
                       help="with --compare: use this pre-collected baseline "
                            "document instead of running the benchmark")
    bench.add_argument("--tolerance", type=float, default=0.5,
                       help="relative timing tolerance for --compare "
                            "(0.5 = fail beyond 1.5x baseline)")
    bench.add_argument("--calibrate", action="store_true",
                       help="with --compare: normalise timings by the median "
                            "elapsed ratio (absorbs machine speed differences)")
    bench.add_argument("--compare-json", default="", metavar="PATH",
                       help="with --compare: also write the verdict document "
                            "as JSON")
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile", help="profile one mining run (phase table + cProfile hotspots)"
    )
    _add_database_arg(profile)
    profile.add_argument("--min-support", type=float, required=True,
                         help="fraction (<1) of sequences or absolute count (>=1)")
    profile.add_argument("--algorithm", default="disc-all",
                         choices=available_algorithms())
    profile.add_argument("--top", type=int, default=15,
                         help="hotspot rows to keep (by tottime)")
    profile.add_argument("-o", "--output", default="",
                         help="write the profile document as JSON")
    profile.set_defaults(func=_cmd_profile)

    topk = sub.add_parser("topk", help="the k most frequent sequences")
    _add_database_arg(topk)
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument("--min-length", type=int, default=1)
    topk.set_defaults(func=_cmd_topk)

    rules = sub.add_parser("rules", help="mine and derive sequential rules")
    _add_database_arg(rules)
    rules.add_argument("--min-support", type=float, required=True)
    rules.add_argument("--min-confidence", type=float, default=0.5)
    rules.add_argument("--algorithm", default="disc-all",
                       choices=available_algorithms())
    rules.add_argument("--top", type=int, default=20)
    rules.set_defaults(func=_cmd_rules)

    compare = sub.add_parser(
        "compare", help="check that several algorithms return identical patterns"
    )
    _add_database_arg(compare)
    compare.add_argument("--min-support", type=float, required=True)
    compare.add_argument("--baseline", default="bruteforce")
    compare.add_argument(
        "--algorithms", nargs="+",
        default=["disc-all", "dynamic-disc-all", "prefixspan", "pseudo"],
        help="algorithms to compare against the baseline",
    )
    compare.set_defaults(func=_cmd_compare)

    verify = sub.add_parser(
        "verify", help="independently verify a mining run's output"
    )
    _add_database_arg(verify)
    verify.add_argument("--min-support", type=float, required=True)
    verify.add_argument("--algorithm", default="disc-all",
                        choices=available_algorithms())
    verify.add_argument("--sample", type=int, default=200,
                        help="patterns to recount (default 200)")
    verify.set_defaults(func=_cmd_verify)

    lint = sub.add_parser(
        "lint", help="run the DISC-invariant static analysis over source files"
    )
    from repro.analysis.runner import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    check = sub.add_parser(
        "check",
        help="run the whole-program analysis (call graph, CONC/FLOW/HOT rules)",
    )
    from repro.analysis.checker import add_check_arguments

    add_check_arguments(check)
    check.set_defaults(func=_cmd_check)

    algos = sub.add_parser("algorithms", help="list registered algorithms")
    algos.set_defaults(func=_cmd_algorithms)

    stats = sub.add_parser("stats", help="summarise a database file")
    _add_database_arg(stats)
    stats.set_defaults(func=_cmd_stats)

    serve = sub.add_parser(
        "serve", help="run the HTTP mining service (submit/poll/health/metrics)"
    )
    serve.add_argument(
        "databases", nargs="*",
        help="database files to pre-register ('-' reads one from stdin)",
    )
    serve.add_argument(
        "--format", choices=("spmf", "paper"), default=None,
        help="input format for pre-registered databases "
             "(required for stdin; otherwise by file suffix)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listening port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="mining worker threads")
    serve.add_argument("--queue-size", type=int, default=32,
                       help="submission queue bound (beyond it: 429)")
    serve.add_argument("--cache-entries", type=int, default=128,
                       help="result-cache entry budget (0 disables caching)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="append-only job journal (JSONL); on startup "
                            "interrupted jobs are recovered from it")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="retries per job for retryable failures")
    serve.add_argument("--faults", default=None, metavar="SPEC",
                       help="arm deterministic fault injection, e.g. "
                            "'disc.round:3,journal.fsync:p0.01' "
                            "(default: read REPRO_FAULTS)")
    serve.add_argument("--faults-seed", type=int, default=0,
                       help="seed for probabilistic fault rules")
    serve.add_argument("--role", default="standalone",
                       choices=("standalone", "coordinator", "worker"),
                       help="standalone server (default), cluster "
                            "coordinator, or shard-mining worker")
    serve.add_argument("--worker", action="append", default=None, metavar="URL",
                       help="static worker base URL (repeatable; coordinator "
                            "only; optional — workers may also self-register "
                            "via POST /workers)")
    serve.add_argument("--coordinator", default=None, metavar="URL",
                       help="coordinator base URL to register with "
                            "(worker role only)")
    serve.add_argument("--advertise", default=None, metavar="URL",
                       help="URL the coordinator should dial back "
                            "(default: the worker's own bind address)")
    serve.add_argument("--heartbeat-seconds", type=float, default=None,
                       metavar="SECS",
                       help="pin the worker's heartbeat interval (default: "
                            "a third of the coordinator-granted lease)")
    serve.add_argument("--max-shard-bytes", type=int,
                       default=None, metavar="BYTES",
                       help="worker-side shard payload cap; larger bodies "
                            "answer 413 (default: 64 MiB)")
    serve.add_argument("--lease-seconds", type=float, default=15.0,
                       metavar="SECS",
                       help="coordinator membership lease; workers missing "
                            "it are suspected, probed, then retired")
    serve.add_argument("--degrade-after", type=float, default=5.0,
                       metavar="SECS",
                       help="stall grace before the coordinator mines "
                            "remaining shards locally")
    serve.add_argument("--shard-timeout-per-member", type=float, default=0.0,
                       metavar="SECS",
                       help="extra shard RPC timeout per payload member "
                            "sequence, added to --shard-timeout")
    serve.add_argument("--shard-timeout", type=float, default=300.0,
                       metavar="SECONDS",
                       help="per-shard RPC timeout for the coordinator")
    serve.add_argument("--events", default=None, metavar="PATH",
                       help="append structured lifecycle events (JSONL) here; "
                            "covers recovery and every job")
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
