"""Closed frequent-sequence mining, CloSpan-style (system S23).

A frequent sequence is *closed* when no super-sequence has the same
support.  Mining closed patterns directly (instead of post-filtering a
full result) pays off on dense data, where the full frequent set is
exponentially larger than its closed kernel.

This implements the pruning of CloSpan (Yan, Han & Afshar, SDM 2003),
adapted soundly to itemset-sequences: during prefix-growth, hash every
explored pattern under ``(support, remaining_items, last_itemset)``
where *remaining_items* is the total item count of its projected
database.  When a new pattern ``s`` hits a hashed pattern ``t`` with
the same key and ``s ⊑ t``, the projected databases coincide *and* the
itemset-extension conditions coincide (they depend on the last
itemset, which is why it must be part of the key — with generalised
sequences, equal projections alone do NOT imply equal subtrees, unlike
the single-item-element setting CloSpan was stated for).  Then ``s`` is
non-closed (``t`` has equal support) and its whole subtree mirrors
``t``'s — exploration stops.  When instead ``t ⊑ s`` the earlier
subtree is the shadowed one; ``s`` is explored and the final closure
filter removes ``t``'s absorbed descendants.  No closed pattern is
lost, which the test suite re-checks against the post-processing
oracle on randomised databases.

The projection machinery is pseudo-projection (pointer-based), shared
in spirit with :mod:`repro.baselines.pseudo`.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.counting import count_frequent_items
from repro.core.sequence import (
    RawSequence,
    Transaction,
    contains,
    itemset_extension,
    seq_length,
    sequence_extension,
)

#: A pseudo-projection pointer: (sequence index, transaction index of the
#: match, item index of the matched item within that transaction).
Pointer = tuple[int, int, int]


def mine_closed(
    members: Iterable[tuple[int, RawSequence]], delta: int
) -> dict[RawSequence, int]:
    """All closed frequent sequences with support >= *delta*."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    members = list(members)
    sequences = [seq for _, seq in members]
    collected: dict[RawSequence, int] = {}
    hashed: dict[tuple[int, int, Transaction], list[RawSequence]] = {}

    item_counts = count_frequent_items(members, delta)
    for item in sorted(item_counts):
        pattern: RawSequence = ((item,),)
        pointers = []
        for si, seq in enumerate(sequences):
            ptr = _find_sequence_ext(seq, si, -1, item)
            if ptr is not None:
                pointers.append(ptr)
        _grow(pattern, pointers, sequences, delta, collected, hashed)

    return _closure_filter(collected)


def _grow(
    pattern: RawSequence,
    pointers: list[Pointer],
    sequences: list[RawSequence],
    delta: int,
    collected: dict[RawSequence, int],
    hashed: dict[tuple[int, int, Transaction], list[RawSequence]],
) -> None:
    support = len(pointers)
    if support < delta:
        return
    remaining = _remaining_items(pointers, sequences)
    key = (support, remaining, pattern[-1])
    for other in hashed.get(key, ()):  # CloSpan equivalence check
        if contains(other, pattern):
            # pattern ⊑ other with an identical projection and the same
            # last itemset: non-closed, and its subtree duplicates
            # other's — stop here.
            return
    hashed.setdefault(key, []).append(pattern)
    collected[pattern] = support

    last_itemset = set(pattern[-1])
    last_item = pattern[-1][-1]
    seq_counts: dict[int, int] = {}
    item_counts: dict[int, int] = {}
    for si, ti, pi in pointers:
        seq = sequences[si]
        item_seen: set[int] = set(seq[ti][pi + 1:])
        seq_seen: set[int] = set()
        for txn in seq[ti + 1:]:
            seq_seen.update(txn)
            if last_itemset.issubset(txn):
                item_seen.update(item for item in txn if item > last_item)
        for item in seq_seen:
            seq_counts[item] = seq_counts.get(item, 0) + 1
        for item in item_seen:
            item_counts[item] = item_counts.get(item, 0) + 1

    for item in sorted(item_counts):
        if item_counts[item] < delta:
            continue
        sub = []
        for ptr in pointers:
            moved = _find_itemset_ext(sequences, ptr, last_itemset, item)
            if moved is not None:
                sub.append(moved)
        _grow(
            itemset_extension(pattern, item), sub, sequences, delta,
            collected, hashed,
        )

    for item in sorted(seq_counts):
        if seq_counts[item] < delta:
            continue
        sub = []
        for si, ti, _ in pointers:
            moved = _find_sequence_ext(sequences[si], si, ti, item)
            if moved is not None:
                sub.append(moved)
        _grow(
            sequence_extension(pattern, item), sub, sequences, delta,
            collected, hashed,
        )


def _remaining_items(
    pointers: list[Pointer], sequences: list[RawSequence]
) -> int:
    """Total item count of the projected database (CloSpan's I(D_s))."""
    total = 0
    for si, ti, pi in pointers:
        seq = sequences[si]
        total += len(seq[ti]) - pi - 1
        for txn in seq[ti + 1:]:
            total += len(txn)
    return total


def _closure_filter(collected: dict[RawSequence, int]) -> dict[RawSequence, int]:
    """Drop patterns with an equal-support super-pattern in *collected*."""
    by_support: dict[int, list[RawSequence]] = {}
    for pattern, support in collected.items():
        by_support.setdefault(support, []).append(pattern)
    closed: dict[RawSequence, int] = {}
    for support, group in by_support.items():
        group.sort(key=seq_length, reverse=True)
        kept: list[RawSequence] = []
        for pattern in group:
            if not any(contains(other, pattern) for other in kept):
                kept.append(pattern)
                closed[pattern] = support
    return closed


def _find_sequence_ext(
    seq: RawSequence, si: int, after_txn: int, item: int
) -> Pointer | None:
    for ti in range(after_txn + 1, len(seq)):
        pi = _position(seq[ti], item)
        if pi is not None:
            return si, ti, pi
    return None


def _find_itemset_ext(
    sequences: list[RawSequence],
    pointer: Pointer,
    last_itemset: set[int],
    item: int,
) -> Pointer | None:
    si, ti, pi = pointer
    seq = sequences[si]
    pos = _position(seq[ti], item)
    if pos is not None and pos > pi:
        return si, ti, pos
    for tj in range(ti + 1, len(seq)):
        txn = seq[tj]
        if item in txn and last_itemset.issubset(txn):
            pos = _position(txn, item)
            assert pos is not None
            return si, tj, pos
    return None


def _position(txn: Transaction, item: int) -> int | None:
    lo, hi = 0, len(txn)
    while lo < hi:
        mid = (lo + hi) // 2
        if txn[mid] < item:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(txn) and txn[lo] == item:
        return lo
    return None
