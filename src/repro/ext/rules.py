"""Sequential rule generation from frequent sequences (system S23).

A *sequential rule* ``A => B`` states: customers whose history contains
the sequence A tend to continue with B, i.e. to contain the concatenated
sequence AB.  Rules are generated from a mined pattern map by splitting
every frequent sequence at each transaction boundary:

* support(A => B)    = support(AB)
* confidence(A => B) = support(AB) / support(A)
* lift(A => B)       = confidence / (support(B) / |DB|)

Only transaction-boundary splits are offered: splitting inside an
itemset would turn one co-occurrence constraint into two orderable ones
and change the semantics.  Both sides of every split of a frequent
sequence are themselves frequent (they are subsequences), so all needed
supports are already in the map — rule generation is a pure
post-processing step, as in Agrawal & Srikant's original formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.sequence import RawSequence, format_seq
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True, slots=True)
class SequentialRule:
    """One rule ``antecedent => consequent`` with its statistics."""

    antecedent: RawSequence
    consequent: RawSequence
    support: int
    confidence: float
    lift: float

    def __str__(self) -> str:
        return (
            f"{format_seq(self.antecedent)} => {format_seq(self.consequent)} "
            f"(sup={self.support}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.3f})"
        )


def generate_rules(
    patterns: dict[RawSequence, int],
    database_size: int,
    min_confidence: float = 0.5,
) -> list[SequentialRule]:
    """All rules meeting *min_confidence*, sorted by (confidence, support).

    *patterns* must be downward-closed (any full mining result is);
    missing split supports raise, catching truncated inputs early.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise InvalidParameterError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    if database_size < 1:
        raise InvalidParameterError(
            f"database_size must be >= 1, got {database_size}"
        )
    rules = list(_rules(patterns, database_size, min_confidence))
    rules.sort(key=lambda r: (-r.confidence, -r.support))
    return rules


def _rules(
    patterns: dict[RawSequence, int],
    database_size: int,
    min_confidence: float,
) -> Iterator[SequentialRule]:
    for sequence, support in patterns.items():
        if len(sequence) < 2:
            continue  # need at least two transactions to split between
        for cut in range(1, len(sequence)):
            antecedent = sequence[:cut]
            consequent = sequence[cut:]
            try:
                antecedent_support = patterns[antecedent]
                consequent_support = patterns[consequent]
            except KeyError as missing:
                raise InvalidParameterError(
                    f"pattern map is not downward-closed: missing "
                    f"{format_seq(missing.args[0])}"
                ) from None
            confidence = support / antecedent_support
            if confidence < min_confidence:
                continue
            lift = confidence / (consequent_support / database_size)
            yield SequentialRule(
                antecedent, consequent, support, confidence, lift
            )


def rules_for(
    rules: list[SequentialRule], antecedent: RawSequence
) -> list[SequentialRule]:
    """The rules whose antecedent equals *antecedent* (prediction view)."""
    return [rule for rule in rules if rule.antecedent == antecedent]


def predict_next(
    rules: list[SequentialRule],
    history: RawSequence,
    top: int = 5,
) -> list[tuple[RawSequence, float]]:
    """Rank likely continuations of *history* from a rule set.

    A rule applies when its antecedent is contained in *history* (the
    customer has exhibited the prefix behaviour); its consequent is then
    predicted with the rule's confidence.  When several applicable rules
    predict the same consequent the highest confidence wins — this is
    the "stock trend prediction" use the paper's introduction motivates.
    """
    from repro.core.sequence import contains

    best: dict[RawSequence, float] = {}
    for rule in rules:
        if not contains(history, rule.antecedent):
            continue
        current = best.get(rule.consequent)
        if current is None or rule.confidence > current:
            best[rule.consequent] = rule.confidence
    ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]
