"""Extensions beyond the paper's evaluation (system S23).

* :mod:`repro.ext.weighted` — weighted mining (the paper's §5 future work);
* :mod:`repro.ext.topk` — top-k most frequent sequences;
* :mod:`repro.ext.closed` — CloSpan-style closed-pattern mining;
* :mod:`repro.ext.constraints` — gap/span/length-constrained mining
  (the related-work direction of the paper's refs [5] and [10]);
* :mod:`repro.ext.rules` — sequential rule generation with
  confidence/lift;
* :mod:`repro.ext.features` — frequent sequences as classification
  features (the pipeline of ref [8]);
* :mod:`repro.ext.time_constraints` — GSP's generalised containment
  over timestamped sequences (sliding windows, time gaps; ref [13]).
"""

from repro.ext.closed import mine_closed
from repro.ext.constraints import Constraints, contains_constrained, mine_constrained
from repro.ext.features import PatternFeaturizer, select_features
from repro.ext.rules import SequentialRule, generate_rules, rules_for
from repro.ext.time_constraints import (
    TimeConstraints,
    TimedSequence,
    contains_timed,
    mine_timed,
)
from repro.ext.topk import mine_topk
from repro.ext.weighted import WeightedResult, mine_weighted

__all__ = [
    "mine_closed",
    "Constraints",
    "contains_constrained",
    "mine_constrained",
    "PatternFeaturizer",
    "select_features",
    "SequentialRule",
    "generate_rules",
    "rules_for",
    "TimeConstraints",
    "TimedSequence",
    "contains_timed",
    "mine_timed",
    "mine_topk",
    "WeightedResult",
    "mine_weighted",
]
