"""Weighted frequent sequence mining (system S23).

The paper's conclusion motivates *weighting applications*: web pages or
genes carry importance weights, and a pattern matters "not only by the
number of its occurrences but also its weight".  This module implements
that future-work direction with the standard weighted-support definition
(cf. WSpan):

* every item has a weight; a pattern's weight is the mean of its items';
* the *weighted support* of a pattern is ``support_count * weight``;
* a pattern is weighted-frequent when its weighted support reaches the
  threshold ``tau``.

Plain support is no longer anti-monotone under this definition — a
low-weight pattern can fail the threshold while a higher-weight extension
passes it — which is exactly why the paper expects the DISC machinery
(which does not rely on the anti-monotone property for its core pruning)
to carry over.  The miner grows patterns PrefixSpan-style but prunes with
the sound upper bound ``support_count * max_item_weight``: support counts
only shrink under extension, so when the bound falls below ``tau`` no
extension can ever qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.counting import count_frequent_items
from repro.core.kminimum import extension_pairs, build_extension
from repro.core.sequence import RawSequence, contains, seq_length
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True, slots=True)
class WeightedResult:
    """Weighted-frequent sequences with (support, weighted support)."""

    patterns: dict[RawSequence, tuple[int, float]]
    tau: float

    def __len__(self) -> int:
        return len(self.patterns)

    def weighted_support(self, pattern: RawSequence) -> float:
        """Weighted support of *pattern* (0.0 when not found)."""
        found = self.patterns.get(pattern)
        return found[1] if found else 0.0


def pattern_weight(pattern: RawSequence, weights: dict[int, float]) -> float:
    """Mean weight of a pattern's item occurrences (default weight 1.0)."""
    total = sum(weights.get(item, 1.0) for txn in pattern for item in txn)
    return total / seq_length(pattern)


def mine_weighted(
    members: Iterable[tuple[int, RawSequence]],
    weights: dict[int, float],
    tau: float,
) -> WeightedResult:
    """All sequences with weighted support >= *tau*.

    *weights* maps item -> weight (missing items weigh 1.0; all weights
    must be positive).  Patterns are grown breadth-first from single
    items; a branch dies only when ``support * max_weight < tau``, the
    sound replacement for anti-monotone pruning.
    """
    if tau <= 0:
        raise InvalidParameterError(f"tau must be positive, got {tau}")
    for item, weight in weights.items():
        if weight <= 0:
            raise InvalidParameterError(
                f"weight of item {item} must be positive, got {weight}"
            )
    members = list(members)
    sequences = [seq for _, seq in members]
    max_weight = max(weights.values(), default=1.0)
    max_weight = max(max_weight, 1.0)  # unlisted items weigh 1.0

    # Survival threshold on plain support: anything below can never reach
    # tau, no matter which items an extension adds.
    min_count = tau / max_weight

    result: dict[RawSequence, tuple[int, float]] = {}
    item_counts = count_frequent_items(members, 1)
    frontier: list[tuple[RawSequence, int]] = []
    for item, count in sorted(item_counts.items()):
        if count >= min_count:
            frontier.append((((item,),), count))
    while frontier:
        next_frontier: list[tuple[RawSequence, int]] = []
        for pattern, count in frontier:
            wsup = count * pattern_weight(pattern, weights)
            if wsup >= tau:
                result[pattern] = (count, wsup)
            for candidate in _candidate_extensions(pattern, sequences):
                ext_count = sum(1 for s in sequences if contains(s, candidate))
                if ext_count * max_weight >= tau:
                    next_frontier.append((candidate, ext_count))
        frontier = next_frontier
    return WeightedResult(result, tau)


def _candidate_extensions(
    pattern: RawSequence, sequences: list[RawSequence]
) -> set[RawSequence]:
    """Distinct one-item extensions of *pattern* realised in the data."""
    pairs = set()
    for seq in sequences:
        pairs |= extension_pairs(seq, pattern)
    return {build_extension(pattern, pair) for pair in pairs}
