"""Top-k frequent sequence mining (system S23).

A practical variant: instead of a support threshold, ask for the k most
frequent sequences (of at least *min_length* items) — the standard
adaptation of pattern-growth search to top-k (cf. TSP, Tzvetkov et al.
2003).

The search is best-first on (support desc, comparative order asc).
Extension supports never exceed their parent's, and a pattern's flat key
always sorts after its prefix's, so heap pops occur in exactly that
global order; the first k qualifying pops *are* the top-k, and the
search stops there.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.core.counting import CountingArray
from repro.core.sequence import FlatSequence, RawSequence, flatten, seq_length
from repro.exceptions import InvalidParameterError


def mine_topk(
    members: Iterable[tuple[int, RawSequence]],
    k: int,
    min_length: int = 1,
) -> list[tuple[RawSequence, int]]:
    """The *k* most frequent sequences with length >= *min_length*.

    Returns (pattern, support) pairs in (support desc, comparative order
    asc) order.  Fewer than *k* pairs come back when the database has
    fewer qualifying patterns.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if min_length < 1:
        raise InvalidParameterError(f"min_length must be >= 1, got {min_length}")
    members = list(members)

    frontier: list[tuple[int, FlatSequence, RawSequence]] = []

    def push_extensions(prefix: RawSequence, floor: int) -> None:
        array = CountingArray(prefix)
        array.observe_all(members)
        for pattern, count in array.frequent(floor):
            heapq.heappush(frontier, (-count, flatten(pattern), pattern))

    push_extensions((), 1)
    results: list[tuple[RawSequence, int]] = []
    while frontier and len(results) < k:
        neg_count, _, pattern = heapq.heappop(frontier)
        if seq_length(pattern) >= min_length:
            results.append((pattern, -neg_count))
        # Children with support below the current worst possible cut can
        # never be popped before the loop ends, but computing that cut
        # exactly is not worth it: prune only the trivial floor.
        push_extensions(pattern, 1)
    return results
