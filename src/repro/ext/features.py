"""Frequent sequences as classification features (system S23).

The paper's Figure 9 parameters come from Lesh, Zaki & Ogihara's "Mining
Features for Sequence Classification" (ref [8]), which uses frequent
sequences as boolean features for downstream classifiers.  This module
implements that pipeline step:

* :class:`PatternFeaturizer` — select feature patterns from a mining
  result (optionally pruning redundant ones) and turn any sequence into
  a dense 0/1 numpy vector of "contains pattern p";
* :func:`select_features` — the selection heuristics of [8]: frequency
  floor, length bounds, and redundancy pruning (drop a pattern whose
  supporter set inside the training data equals a kept sub-pattern's).
"""

from __future__ import annotations

import numpy as np

from repro.core.sequence import RawSequence, contains, flatten, seq_length
from repro.exceptions import InvalidParameterError


def select_features(
    patterns: dict[RawSequence, int],
    sequences: list[RawSequence],
    min_length: int = 1,
    max_length: int | None = None,
    max_features: int | None = None,
    prune_redundant: bool = True,
) -> list[RawSequence]:
    """Select feature patterns per the heuristics of [8].

    Patterns are ranked by (support desc, length desc, comparative
    order); redundancy pruning drops any pattern whose supporter set
    over *sequences* duplicates that of an already kept pattern — such
    features are indistinguishable to any downstream classifier.
    """
    if min_length < 1:
        raise InvalidParameterError(f"min_length must be >= 1, got {min_length}")
    if max_length is not None and max_length < min_length:
        raise InvalidParameterError(
            f"max_length {max_length} < min_length {min_length}"
        )
    candidates = [
        (pattern, count)
        for pattern, count in patterns.items()
        if seq_length(pattern) >= min_length
        and (max_length is None or seq_length(pattern) <= max_length)
    ]
    candidates.sort(
        key=lambda pc: (-pc[1], -seq_length(pc[0]), flatten(pc[0]))
    )
    kept: list[RawSequence] = []
    seen_signatures: set[frozenset[int]] = set()
    for pattern, _count in candidates:
        if prune_redundant:
            signature = frozenset(
                index
                for index, seq in enumerate(sequences)
                if contains(seq, pattern)
            )
            if signature in seen_signatures:
                continue
            seen_signatures.add(signature)
        kept.append(pattern)
        if max_features is not None and len(kept) >= max_features:
            break
    return kept


class PatternFeaturizer:
    """Turn sequences into boolean containment vectors over patterns."""

    def __init__(self, features: list[RawSequence]):
        if not features:
            raise InvalidParameterError("featurizer needs at least one pattern")
        self.features = list(features)

    def __len__(self) -> int:
        return len(self.features)

    def transform_one(self, seq: RawSequence) -> np.ndarray:
        """0/1 vector: entry i is 1 iff *seq* contains feature i."""
        return np.fromiter(
            (1 if contains(seq, pattern) else 0 for pattern in self.features),
            dtype=np.int8,
            count=len(self.features),
        )

    def transform(self, sequences: list[RawSequence]) -> np.ndarray:
        """Matrix of shape (len(sequences), n_features)."""
        if not sequences:
            return np.zeros((0, len(self.features)), dtype=np.int8)
        return np.vstack([self.transform_one(seq) for seq in sequences])

    def feature_names(self) -> list[str]:
        """Readable feature labels (the patterns, formatted)."""
        from repro.core.sequence import format_seq

        return [format_seq(pattern) for pattern in self.features]
