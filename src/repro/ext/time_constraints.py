"""GSP-style time constraints over timestamped sequences (system S23).

The problem definition (Section 1) builds customer sequences from
transaction *times*; GSP [13] generalises containment with three
time-based knobs that this module implements faithfully:

* ``window_size`` — items matching one pattern itemset may be spread
  over several transactions whose times differ by at most the window;
* ``min_gap`` / ``max_gap`` — the time between the (window-merged)
  transactions matching consecutive pattern itemsets must exceed
  ``min_gap`` and be at most ``max_gap``, measured end-to-start and
  start-to-end respectively, as in the GSP paper.

A :class:`TimedSequence` pairs a canonical raw sequence with a
non-decreasing timestamp per transaction.  :func:`contains_timed`
implements the generalised containment by backtracking over admissible
windows, and :func:`mine_timed` runs levelwise mining under it (prefix
anti-monotonicity holds: dropping the last pattern itemset removes only
constraints).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence as TypingSequence

from repro.core.counting import count_frequent_items
from repro.core.sequence import (
    RawSequence,
    itemset_extension,
    sequence_extension,
    validate,
)
from repro.exceptions import InvalidParameterError, InvalidSequenceError


@dataclass(frozen=True, slots=True)
class TimedSequence:
    """A customer sequence with one timestamp per transaction."""

    raw: RawSequence
    times: tuple[float, ...]

    def __post_init__(self) -> None:
        validate(self.raw)
        if len(self.raw) != len(self.times):
            raise InvalidSequenceError(
                f"{len(self.raw)} transactions but {len(self.times)} timestamps"
            )
        for earlier, later in zip(self.times, self.times[1:]):
            if later < earlier:
                raise InvalidSequenceError("timestamps must be non-decreasing")

    @classmethod
    def evenly_spaced(cls, raw: RawSequence, step: float = 1.0) -> "TimedSequence":
        """Timestamps 0, step, 2*step, ... (positional semantics)."""
        return cls(raw, tuple(index * step for index in range(len(raw))))


@dataclass(frozen=True, slots=True)
class TimeConstraints:
    """GSP's time-constraint triple (all optional)."""

    window_size: float = 0.0
    min_gap: float = 0.0
    max_gap: float | None = None

    def validate(self) -> None:
        if self.window_size < 0:
            raise InvalidParameterError(
                f"window_size must be >= 0, got {self.window_size}"
            )
        if self.min_gap < 0:
            raise InvalidParameterError(f"min_gap must be >= 0, got {self.min_gap}")
        if self.max_gap is not None and self.max_gap <= self.min_gap:
            raise InvalidParameterError(
                f"max_gap {self.max_gap} must exceed min_gap {self.min_gap}"
            )


def _windows(
    seq: TimedSequence, itemset: tuple[int, ...], window: float
) -> list[tuple[float, float]]:
    """All minimal time windows [start, end] covering *itemset*.

    A window is a set of consecutive transactions spanning at most
    *window* in time whose union covers the itemset; we enumerate, for
    each feasible end transaction, the latest feasible start (minimal
    windows suffice: any valid embedding can be shrunk to one).
    """
    n = len(seq.raw)
    needed = set(itemset)
    found: list[tuple[float, float]] = []
    for end in range(n):
        if not needed & set(seq.raw[end]):
            continue
        remaining = set(needed)
        start = end
        while start >= 0 and seq.times[end] - seq.times[start] <= window:
            remaining -= set(seq.raw[start])
            if not remaining:
                found.append((seq.times[start], seq.times[end]))
                break
            start -= 1
    return found


def contains_timed(
    seq: TimedSequence,
    pattern: RawSequence,
    constraints: TimeConstraints = TimeConstraints(),
) -> bool:
    """Generalised containment (GSP Section 2): windows + time gaps."""
    if not pattern:
        return True
    constraints.validate()
    window = constraints.window_size
    min_gap = constraints.min_gap
    max_gap = constraints.max_gap
    windows = [_windows(seq, itemset, window) for itemset in pattern]
    if any(not options for options in windows):
        return False

    # GSP's gap definitions between consecutive windows [l, u]:
    #   l_i - u_{i-1} >  min_gap   (end-to-start)
    #   u_i - l_{i-1} <= max_gap   (start-to-end)
    def search(index: int, prev_start: float, prev_end: float) -> bool:
        if index == len(pattern):
            return True
        for start, end in windows[index]:
            if start - prev_end <= min_gap:
                continue
            if max_gap is not None and end - prev_start > max_gap:
                continue
            if search(index + 1, start, end):
                return True
        return False

    if len(pattern) == 1:
        return True  # a window exists
    return any(search(1, start, end) for start, end in windows[0])


def mine_timed(
    sequences: Iterable[TimedSequence],
    delta: int,
    constraints: TimeConstraints = TimeConstraints(),
) -> dict[RawSequence, int]:
    """All sequences frequent under the generalised containment.

    Levelwise growth with constrained recounting; complete because a
    pattern's prefix is contained (under the same constraints) whenever
    the pattern is.
    """
    if delta < 1:
        raise InvalidParameterError(f"delta must be >= 1, got {delta}")
    constraints.validate()
    sequences = list(sequences)
    members = [(cid, ts.raw) for cid, ts in enumerate(sequences, start=1)]
    item_counts = count_frequent_items(members, delta)
    frequent_items = sorted(item_counts)
    patterns: dict[RawSequence, int] = {
        ((item,),): count for item, count in item_counts.items()
    }
    frontier: list[RawSequence] = sorted(patterns)
    while frontier:
        grown: list[RawSequence] = []
        for pattern in frontier:
            last_item = pattern[-1][-1]
            candidates = [
                itemset_extension(pattern, item)
                for item in frequent_items
                if item > last_item
            ] + [sequence_extension(pattern, item) for item in frequent_items]
            for candidate in candidates:
                count = sum(
                    1
                    for ts in sequences
                    if contains_timed(ts, candidate, constraints)
                )
                if count >= delta:
                    patterns[candidate] = count
                    grown.append(candidate)
        frontier = grown
    return patterns


def evenly_spaced_database(
    raws: TypingSequence[RawSequence], step: float = 1.0
) -> list[TimedSequence]:
    """Wrap plain raw sequences with positional timestamps."""
    return [TimedSequence.evenly_spaced(raw, step) for raw in raws]
