"""Constrained frequent-sequence mining (system S23).

The paper's related work (§1, refs [5] and [10]) mines sequential
patterns under user constraints.  This module implements the classic
positional constraints over transaction indices:

* ``max_gap`` / ``min_gap`` — bounds on the distance between the
  transactions hosting *consecutive* pattern itemsets;
* ``max_span``  — bound on the distance between the first and last
  hosting transactions;
* ``max_length`` — bound on the pattern's item count.

Removing the last item of a pattern only removes gap/span obligations,
so a constrained-frequent pattern always has a constrained-frequent
prefix: prefix-growth enumeration stays complete, and the miner grows
candidates levelwise, counting with the constrained containment test
(which needs backtracking — under ``max_gap`` the greedy leftmost
embedding is no longer sufficient).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.counting import count_frequent_items
from repro.core.sequence import (
    RawSequence,
    Transaction,
    itemset_extension,
    seq_length,
    sequence_extension,
)
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True, slots=True)
class Constraints:
    """Positional mining constraints (all optional)."""

    max_gap: int | None = None
    min_gap: int = 1
    max_span: int | None = None
    max_length: int | None = None

    def validate(self) -> None:
        """Raise InvalidParameterError on inconsistent settings."""
        if self.min_gap < 1:
            raise InvalidParameterError(f"min_gap must be >= 1, got {self.min_gap}")
        if self.max_gap is not None and self.max_gap < self.min_gap:
            raise InvalidParameterError(
                f"max_gap {self.max_gap} < min_gap {self.min_gap}"
            )
        if self.max_span is not None and self.max_span < 0:
            raise InvalidParameterError(f"max_span must be >= 0, got {self.max_span}")
        if self.max_length is not None and self.max_length < 1:
            raise InvalidParameterError(
                f"max_length must be >= 1, got {self.max_length}"
            )

    @property
    def unconstrained(self) -> bool:
        return (
            self.max_gap is None
            and self.min_gap == 1
            and self.max_span is None
            and self.max_length is None
        )


def _is_subset_sorted(sub: Transaction, sup: Transaction) -> bool:
    i = 0
    n = len(sup)
    for item in sub:
        while i < n and sup[i] < item:
            i += 1
        if i >= n or sup[i] != item:
            return False
        i += 1
    return True


def contains_constrained(
    seq: RawSequence, pattern: RawSequence, constraints: Constraints
) -> bool:
    """True when *seq* hosts *pattern* under the positional constraints.

    Backtracking over hosting transactions: greedy matching is unsound
    under ``max_gap`` (an early host can strand the next itemset), so
    all admissible hosts are explored depth-first.
    """
    if not pattern:
        return True
    hosts = [
        [t for t, txn in enumerate(seq) if _is_subset_sorted(itemset, txn)]
        for itemset in pattern
    ]
    if any(not candidates for candidates in hosts):
        return False
    max_gap = constraints.max_gap
    min_gap = constraints.min_gap
    max_span = constraints.max_span

    def search(index: int, prev: int, first: int) -> bool:
        if index == len(pattern):
            return True
        for t in hosts[index]:
            gap = t - prev
            if gap < min_gap:
                continue
            if max_gap is not None and gap > max_gap:
                break  # hosts ascend; later ones only widen the gap
            if max_span is not None and t - first > max_span:
                break
            if search(index + 1, t, first):
                return True
        return False

    for start in hosts[0]:
        if search(1, start, start):
            return True
    return False


def mine_constrained(
    members: Iterable[tuple[int, RawSequence]],
    delta: int,
    constraints: Constraints = Constraints(),
) -> dict[RawSequence, int]:
    """All sequences constrained-frequent at support >= *delta*.

    Support counts a customer once when it hosts the pattern under the
    constraints.  With default constraints this equals plain mining.
    """
    if delta < 1:
        raise InvalidParameterError(f"delta must be >= 1, got {delta}")
    constraints.validate()
    members = list(members)
    sequences = [seq for _, seq in members]
    item_counts = count_frequent_items(members, delta)
    frequent_items = sorted(item_counts)
    patterns: dict[RawSequence, int] = {
        ((item,),): count for item, count in item_counts.items()
    }
    frontier = sorted(patterns)
    while frontier:
        grown_frontier: list[RawSequence] = []
        for pattern in frontier:
            if (
                constraints.max_length is not None
                and seq_length(pattern) >= constraints.max_length
            ):
                continue
            for candidate in _extensions(pattern, frequent_items):
                count = sum(
                    1
                    for seq in sequences
                    if contains_constrained(seq, candidate, constraints)
                )
                if count >= delta:
                    patterns[candidate] = count
                    grown_frontier.append(candidate)
        frontier = grown_frontier
    if constraints.max_length is not None:
        patterns = {
            pattern: count
            for pattern, count in patterns.items()
            if seq_length(pattern) <= constraints.max_length
        }
    return patterns


def _extensions(pattern: RawSequence, items: list[int]) -> Iterable[RawSequence]:
    last_item = pattern[-1][-1]
    for item in items:
        if item > last_item:
            yield itemset_extension(pattern, item)
    for item in items:
        yield sequence_extension(pattern, item)
