"""The paper's primary contribution: the DISC strategy and DISC-all.

Submodules
----------

- :mod:`repro.core.sequence` — sequence data model (S1)
- :mod:`repro.core.order` — comparative order, Definitions 2.1/2.2 (S2)
- :mod:`repro.core.kminimum` — (conditional) k-minimum subsequences (S3)
- :mod:`repro.core.avl` — locative AVL tree (S4)
- :mod:`repro.core.sorted_db` — the k-sorted database (S5)
- :mod:`repro.core.counting` — counting arrays (S6)
- :mod:`repro.core.disc` — frequent k-sequence discovery (S7)
- :mod:`repro.core.partition` — multi-level partitioning (S8)
- :mod:`repro.core.discall` — the DISC-all algorithm (S9)
- :mod:`repro.core.nrr` — non-reduction-rate instrumentation (S10)
- :mod:`repro.core.dynamic` — the Dynamic DISC-all algorithm (S11)
"""

from repro.core.sequence import Sequence

__all__ = ["Sequence"]
