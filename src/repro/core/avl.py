"""Locative AVL tree (system S4; Section 3.2).

The k-sorted database must support three operations efficiently:

* find the smallest key (the candidate k-sequence, alpha_1);
* find the key holding the delta-th entry in sorted order (the condition
  k-sequence, alpha_delta) — the paper's *locative* access;
* remove the group of customer sequences sharing a key and re-insert them
  under their new conditional k-minimum subsequences.

This module implements an AVL tree whose nodes carry a *bucket* of entries
per distinct key plus the total number of entries in their subtree, giving
O(log n) rank selection (``key_at_rank``) alongside the usual balanced
insert/delete.  Keys are any totally ordered values satisfying the
:class:`~repro.core.comparable.Comparable` protocol; the k-sorted database
uses flattened sequences (see :mod:`repro.core.order`).
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.core.comparable import Comparable

K = TypeVar("K", bound=Comparable)
V = TypeVar("V")


class _Node(Generic[K, V]):
    __slots__ = ("key", "bucket", "left", "right", "height", "count")

    def __init__(self, key: K, value: V):
        self.key = key
        self.bucket: list[V] = [value]
        self.left: _Node[K, V] | None = None
        self.right: _Node[K, V] | None = None
        self.height = 1
        self.count = 1  # total entries (bucket sizes) in this subtree


def _height(node: _Node[K, V] | None) -> int:
    return node.height if node is not None else 0


def _count(node: _Node[K, V] | None) -> int:
    return node.count if node is not None else 0


def _refresh(node: _Node[K, V]) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    node.count = len(node.bucket) + _count(node.left) + _count(node.right)


def _rotate_right(node: _Node[K, V]) -> _Node[K, V]:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _refresh(node)
    _refresh(pivot)
    return pivot


def _rotate_left(node: _Node[K, V]) -> _Node[K, V]:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _refresh(node)
    _refresh(pivot)
    return pivot


def _balance(node: _Node[K, V]) -> _Node[K, V]:
    _refresh(node)
    tilt = _height(node.left) - _height(node.right)
    if tilt > 1:
        assert node.left is not None
        if _height(node.left.left) < _height(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if tilt < -1:
        assert node.right is not None
        if _height(node.right.right) < _height(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class LocativeAVLTree(Generic[K, V]):
    """Order-statistic AVL tree with per-key entry buckets.

    Entries inserted under equal keys accumulate in one node's bucket in
    insertion order.  ``len`` counts entries, ``num_keys`` counts distinct
    keys.
    """

    def __init__(self) -> None:
        self._root: _Node[K, V] | None = None

    def __len__(self) -> int:
        return _count(self._root)

    @property
    def num_keys(self) -> int:
        return sum(1 for _ in self.keys())

    def __bool__(self) -> bool:
        return self._root is not None

    # -- insertion ---------------------------------------------------------

    def insert(self, key: K, value: V) -> None:
        """Insert *value* under *key* in O(log n)."""
        self._root = self._insert(self._root, key, value)

    def _insert(self, node: _Node[K, V] | None, key: K, value: V) -> _Node[K, V]:
        if node is None:
            return _Node(key, value)
        if key == node.key:
            node.bucket.append(value)
            node.count += 1
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return _balance(node)

    # -- lookup ------------------------------------------------------------

    def min_key(self) -> K:
        """Smallest key in the tree; raises KeyError when empty."""
        node = self._root
        if node is None:
            raise KeyError("tree is empty")
        while node.left is not None:
            node = node.left
        return node.key

    def min_bucket(self) -> tuple[K, list[V]]:
        """Smallest key with its bucket (not removed)."""
        node = self._root
        if node is None:
            raise KeyError("tree is empty")
        while node.left is not None:
            node = node.left
        return node.key, node.bucket

    def key_at_rank(self, rank: int) -> K:
        """Key holding the *rank*-th entry (1-based) in sorted order.

        Ranks count individual entries, not keys: with buckets of sizes
        2 and 3 under keys A < B, ranks 1-2 map to A and ranks 3-5 to B.
        This is the paper's locative access for alpha_delta.
        """
        if rank < 1 or rank > len(self):
            raise IndexError(f"rank {rank} out of range 1..{len(self)}")
        node = self._root
        while node is not None:
            left = _count(node.left)
            if rank <= left:
                node = node.left
            elif rank <= left + len(node.bucket):
                return node.key
            else:
                rank -= left + len(node.bucket)
                node = node.right
        raise AssertionError("rank descent fell off the tree")

    def get(self, key: K) -> list[V] | None:
        """Bucket stored under *key*, or None."""
        node = self._root
        while node is not None:
            if key == node.key:
                return node.bucket
            node = node.left if key < node.key else node.right
        return None

    # -- removal -----------------------------------------------------------

    def pop_min_bucket(self) -> tuple[K, list[V]]:
        """Remove and return the smallest key with its whole bucket."""
        if self._root is None:
            raise KeyError("tree is empty")
        popped: list[tuple[K, list[V]]] = []
        self._root = self._pop_min(self._root, popped)
        return popped[0]

    def _pop_min(
        self, node: _Node[K, V], popped: list[tuple[K, list[V]]]
    ) -> _Node[K, V] | None:
        if node.left is None:
            popped.append((node.key, node.bucket))
            return node.right
        node.left = self._pop_min(node.left, popped)
        return _balance(node)

    def pop_while_less(self, bound: K) -> list[tuple[K, list[V]]]:
        """Remove every bucket with key < *bound*; returns them ascending."""
        removed: list[tuple[K, list[V]]] = []
        while self._root is not None:
            node = self._root
            while node.left is not None:
                node = node.left
            if not (node.key < bound):
                break
            removed.append(self.pop_min_bucket())
        return removed

    # -- iteration ---------------------------------------------------------

    def keys(self) -> Iterator[K]:
        """Distinct keys in ascending order."""
        yield from (key for key, _ in self.items())

    def items(self) -> Iterator[tuple[K, list[V]]]:
        """(key, bucket) pairs in ascending key order."""
        stack: list[_Node[K, V]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.bucket
            node = node.right

    def entries(self) -> Iterator[V]:
        """Every entry in ascending key order (bucket order within a key)."""
        for _, bucket in self.items():
            yield from bucket

    # -- invariants (used by the tests) -------------------------------------

    def check_invariants(self) -> None:
        """Assert AVL balance, ordering and count bookkeeping everywhere."""
        self._check(self._root, None, None)

    def _check(
        self, node: _Node[K, V] | None, lo: K | None, hi: K | None
    ) -> tuple[int, int]:
        if node is None:
            return 0, 0
        if lo is not None and not (lo < node.key):
            raise AssertionError(f"key {node.key!r} violates lower bound {lo!r}")
        if hi is not None and not (node.key < hi):
            raise AssertionError(f"key {node.key!r} violates upper bound {hi!r}")
        if not node.bucket:
            raise AssertionError(f"empty bucket at key {node.key!r}")
        lh, lc = self._check(node.left, lo, node.key)
        rh, rc = self._check(node.right, node.key, hi)
        if abs(lh - rh) > 1:
            raise AssertionError(f"unbalanced at key {node.key!r}")
        height = 1 + max(lh, rh)
        count = len(node.bucket) + lc + rc
        if node.height != height or node.count != count:
            raise AssertionError(f"stale bookkeeping at key {node.key!r}")
        return height, count
