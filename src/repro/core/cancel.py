"""Cooperative cancellation for long mining runs (system S26).

A :class:`CancelToken` carries a cancel flag and an optional monotonic
deadline.  Long-running miners call :meth:`CancelToken.checkpoint` at
their natural round boundaries (DISC-all does so between first-level
partitions and between per-k discovery rounds); a cancelled or expired
token makes the checkpoint raise
:class:`~repro.exceptions.OperationCancelledError`, stopping the run at
the next boundary instead of mid-comparison.

Stopping does not mean losing the work.  The same boundaries feed the
checkpoint layer (:mod:`repro.core.checkpoint`): :func:`repro.mine`
converts the unwind into a partial
:class:`~repro.mining.result.MiningResult` — ``complete=False``,
carrying every pattern from completed rounds plus a resume checkpoint —
so a deadline or cancellation yields resumable progress, not nothing.
Only the lower-level miners, called directly without a recorder, still
surface the raw exception.

The active token lives in a context variable, mirroring the
:mod:`repro.obs` design: the default is a shared never-cancelled token
whose :meth:`~CancelToken.checkpoint` is a cheap no-op, so the
uninstrumented hot path pays one context-variable read per round and
allocates nothing.  Scope a real token over a block with::

    with cancel_scope(CancelToken.with_timeout(5.0)):
        disc_all(members, delta)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.exceptions import OperationCancelledError


class CancelToken:
    """A cancel flag plus optional absolute ``time.monotonic`` deadline."""

    __slots__ = ("_cancelled", "_deadline", "_reason")

    def __init__(self, deadline: float | None = None) -> None:
        self._cancelled = False
        self._deadline = deadline
        self._reason = ""

    @classmethod
    def with_timeout(cls, seconds: float) -> "CancelToken":
        """A token whose deadline is *seconds* from now."""
        return cls(deadline=time.monotonic() + seconds)

    @property
    def deadline(self) -> float | None:
        """The absolute monotonic deadline, when one was set."""
        return self._deadline

    @property
    def reason(self) -> str:
        """Why the token was cancelled ('' while it is live)."""
        return self._reason

    def cancel(self, reason: str = "cancelled") -> None:
        """Mark the token cancelled; the first reason given sticks."""
        if not self._cancelled:
            self._cancelled = True
            self._reason = reason

    def expired(self) -> bool:
        """True when the deadline (if any) has passed."""
        return self._deadline is not None and time.monotonic() >= self._deadline

    def cancelled(self) -> bool:
        """True when cancelled explicitly or past the deadline."""
        if self._cancelled:
            return True
        if self.expired():
            self.cancel("deadline exceeded")
            return True
        return False

    def checkpoint(self) -> None:
        """Raise :class:`OperationCancelledError` when no longer live."""
        if self.cancelled():
            raise OperationCancelledError(self._reason or "cancelled")


class _NeverCancelled(CancelToken):
    """Shared default token: never cancels, checkpoints are no-ops."""

    __slots__ = ()

    def cancel(self, reason: str = "cancelled") -> None:
        raise RuntimeError(
            "the shared default token cannot be cancelled; "
            "scope a real CancelToken with cancel_scope()"
        )

    def cancelled(self) -> bool:
        return False

    def checkpoint(self) -> None:
        return None


#: The default token: never cancelled, shared by every unscoped run.
NEVER_CANCELLED = _NeverCancelled()

_ACTIVE: ContextVar[CancelToken] = ContextVar(
    "repro_active_cancel_token", default=NEVER_CANCELLED
)


def active_token() -> CancelToken:
    """The token cooperative checkpoints currently consult."""
    return _ACTIVE.get()


@contextmanager
def cancel_scope(token: CancelToken) -> Iterator[CancelToken]:
    """Make *token* the active cancellation token for the block."""
    handle = _ACTIVE.set(token)
    try:
        yield token
    finally:
        _ACTIVE.reset(handle)
