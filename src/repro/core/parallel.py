"""Process-parallel DISC-all (system S9 scaled out).

The <(lam)>-partitions of the first level are independent once their
membership is known: the partition for item lam mines exactly the
frequent sequences whose first item is lam, over the customer sequences
that contain lam.  DISC-all computes membership lazily through the
reassignment queue; here it is computed directly (one containment scan
per frequent item), after which the partitions fan out over a process
pool and the per-partition pattern maps — disjoint by construction —
are merged.

The cost model: each worker re-receives its partition's sequences, so
the win appears when per-partition mining dominates serialisation *and*
cores are actually available — on a single-CPU host the pool only adds
overhead (measured and noted in EXPERIMENTS.md).  Jobs cross the process
boundary as compact binary shard payloads
(:mod:`repro.cluster.payload` — the same format the cluster ships over
HTTP) instead of pickled ``(lam, group, ...)`` tuples; the interned
vocabulary and varint streams shrink the per-partition bytes (delta in
EXPERIMENTS.md), and the ``parallel.payload_bytes`` histogram records
the shipped sizes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

from repro.cluster.payload import ShardPayload, members_digest, mine_shard
from repro.core.cancel import active_token
from repro.core.checkpoint import active_recorder
from repro.core.counting import count_frequent_items
from repro.core.discall import DiscAllOutput, _process_first_level
from repro.core.partition import Member
from repro.core.sequence import RawSequence
from repro.faults import fault_point
from repro.obs import active


def _mine_one_partition(blob: bytes) -> dict[RawSequence, int]:
    """Worker: decode one shard payload, mine it, return its pattern map."""
    return mine_shard(ShardPayload.from_bytes(blob))


def disc_all_parallel(
    members: Iterable[Member],
    delta: int,
    processes: int | None = None,
    bilevel: bool = True,
    reduce: bool = True,
    backend: str = "table",
) -> DiscAllOutput:
    """DISC-all with first-level partitions mined in parallel processes.

    Returns the same pattern map as :func:`repro.core.discall.disc_all`
    (asserted by the tests).  *processes* defaults to the executor's
    choice; ``processes=1`` degenerates to sequential execution without
    a pool, which keeps the function usable in restricted environments.
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    obs = active()
    members = list(members)
    out = DiscAllOutput()
    frequent_items = count_frequent_items(members, delta)
    obs.metrics.counter("counting.frequent", k=1).add(len(frequent_items))
    # repro: allow[FLOW002] — one pass over the already-counted frequent
    # 1-sequences; cancellation polls in the job-building loop below
    for item, count in frequent_items.items():
        out.patterns[((item,),)] = count
    item_set = frozenset(frequent_items)

    # Checkpoint/cancel support mirrors disc_all: the recorder seeds any
    # resumed patterns, completed partitions are skipped before dispatch,
    # and the coordinator polls the cancel token between partitions.
    # Workers record nothing — their contextvars are fresh per process —
    # so snapshots only ever cover partitions fully merged here.
    token = active_token()
    recorder = active_recorder()
    recorder.attach(out.patterns)

    # Direct membership: the partition of lam holds every sequence
    # containing lam (what the reassignment chains produce lazily).
    jobs: list[tuple[int, list[Member]]] = []
    job_sizes = obs.metrics.histogram("parallel.job_size")
    # repro: allow[DISC002] — scalar int items, not sequences
    for lam in sorted(frequent_items):
        token.checkpoint()
        if recorder.should_skip(lam):
            continue  # already mined by the run this one resumes
        group = [
            (cid, seq)
            for cid, seq in members
            if any(lam in txn for txn in seq)
        ]
        job_sizes.record(len(group))
        jobs.append((lam, group))
    # Workers run in separate processes, so only coordinator-side counters
    # survive; per-partition evidence stays with the workers by design.
    obs.metrics.counter("parallel.jobs").add(len(jobs))
    out.stats.first_level_partitions = len(jobs)

    if processes == 1:
        # Sequential degeneration skips the payload encoding entirely —
        # nothing crosses a process boundary.
        with obs.tracer.span("parallel.map", jobs=len(jobs), processes=1):
            for lam, group in jobs:
                token.checkpoint()
                fault_point("disc.partition")
                part = DiscAllOutput()
                _process_first_level(
                    lam, group, delta, item_set, bilevel, reduce, backend, part
                )
                out.patterns.update(part.patterns)
                recorder.partition_done(lam)
        return out

    # Pool path: each job ships as the compact binary shard payload the
    # cluster also uses, instead of a pickled (lam, group, ...) tuple.
    digest = members_digest(members)
    options = {"backend": backend, "bilevel": bilevel, "reduce": reduce}
    payload_bytes = obs.metrics.histogram("parallel.payload_bytes")
    blobs: list[bytes] = []
    for lam, group in jobs:
        token.checkpoint()
        blob = ShardPayload.create(
            lam, delta, group, item_set,
            options=options, database_digest=digest,
        ).to_bytes()
        payload_bytes.record(len(blob))
        blobs.append(blob)

    with obs.tracer.span("parallel.map", jobs=len(jobs), processes=processes):
        with ProcessPoolExecutor(max_workers=processes) as pool:
            for (lam, _group), patterns in zip(
                jobs, pool.map(_mine_one_partition, blobs)
            ):
                token.checkpoint()
                fault_point("disc.partition")
                out.patterns.update(patterns)
                recorder.partition_done(lam)
    return out
