"""Non-reduction-rate instrumentation (system S10; Section 4.2, eq. (2)).

The NRR of a partition Q is the average, over Q's child partitions p, of
``size(p) / size(Q)``.  Following the paper, the size of a child partition
is taken to be the support count of the frequent (k+1)-sequence that keys
it.  Levels are numbered as in Table 12: level 0 is the original database
(children keyed by frequent 1-sequences), level 1 the first-level
partitions (children keyed by frequent 2-sequences), and so on; from the
level where the DISC strategy takes over, the "partitions" are the virtual
partitions of declared frequent k-sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.sequence import RawSequence, flatten, seq_length


@dataclass(slots=True)
class NRRCollector:
    """Accumulates per-partition NRR values grouped by level."""

    #: level -> list of per-partition NRR values
    samples: dict[int, list[float]] = field(default_factory=dict)

    def record(self, level: int, parent_size: int, child_sizes: Iterable[int]) -> float | None:
        """Record one partition's NRR; returns it (None when no children).

        Partitions without frequent children contribute no sample — the
        paper's formula divides by the number of child partitions, which
        would be zero.
        """
        sizes = list(child_sizes)
        if not sizes or parent_size <= 0:
            return None
        nrr = sum(size / parent_size for size in sizes) / len(sizes)
        self.samples.setdefault(level, []).append(nrr)
        return nrr

    def average(self, level: int) -> float | None:
        """Average NRR of all partitions recorded at *level* (Table 12)."""
        values = self.samples.get(level)
        if not values:
            return None
        return sum(values) / len(values)

    def averages(self) -> dict[int, float]:
        """Average NRR per level, for every level with samples."""
        return {
            level: avg
            # repro: allow[DISC002] — scalar int levels, not sequences
            for level in sorted(self.samples)
            if (avg := self.average(level)) is not None
        }

    @property
    def max_level(self) -> int:
        """Deepest level with at least one sample (-1 when empty)."""
        return max(self.samples, default=-1)


def compute_nrr_profile(
    patterns: dict[RawSequence, int], db_size: int
) -> NRRCollector:
    """Per-level NRR profile from a mining result (Tables 12 and 14).

    Following Section 4.2, the partition keyed by a frequent j-sequence
    has size equal to that sequence's support count, and its child
    partitions are the frequent (j+1)-sequences extending it (one more
    item appended, i.e. the j-prefix equals the key); the original
    database is the single level-0 partition with the frequent
    1-sequences as children.  The profile is computable from any miner's
    pattern -> support map, which keeps the instrumentation independent
    of the algorithm that produced it.
    """
    collector = NRRCollector()
    by_prefix: dict[tuple, list[int]] = {}
    lengths: dict[RawSequence, int] = {}
    for pattern, count in patterns.items():
        length = seq_length(pattern)
        lengths[pattern] = length
        if length == 1:
            by_prefix.setdefault((), []).append(count)
        else:
            prefix_key = flatten(pattern)[:-1]
            by_prefix.setdefault(prefix_key, []).append(count)
    collector.record(0, db_size, by_prefix.get((), []))
    for pattern, length in lengths.items():
        children = by_prefix.get(flatten(pattern))
        if children:
            collector.record(length, patterns[pattern], children)
    return collector
