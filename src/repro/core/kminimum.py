"""K-minimum subsequence machinery (system S3; Definitions 2.3, 2.5).

The DISC strategy never enumerates candidate sequences.  Instead each
customer sequence is represented by its *k-minimum subsequence* — the
smallest of its k-subsequences under the comparative order — and, after a
candidate has been processed, by its *conditional* k-minimum subsequence:
the smallest k-subsequence (strictly) above a moving lower bound.

Like the paper we restrict the family of k-subsequences considered to
those whose (k-1)-prefix is a *frequent* (k-1)-sequence (the apriori
pruning of Figures 5 and 6): a frequent k-sequence always has a frequent
(k-1)-prefix, so the restriction cannot lose results.  The frequent
(k-1)-sequences are supplied as an ascending *(k-1)-sorted list* whose
nodes precompute everything a match needs; apriori pointers are indices
into it.

One deliberate deviation from the paper's pseudocode: Figure 6 extends
only the *leftmost* match of the chosen (k-1)-sequence F.  Without a
lower bound that is provably optimal, but with one it is not — for
S = <(a)(a, b)>, F = <(a)> and bound >= <(a, b)>, the leftmost match
yields <(a)(b)> while the true conditional minimum is <(a, b)>, hosted by
the second transaction.  :func:`min_extension_pair` therefore scans every
transaction that can host F's last itemset (prefix matched greedily
before it), which keeps the search exact at the same asymptotic cost.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Sequence as TypingSequence

from repro.core.order import sort_key
from repro.core.sequence import (
    FlatSequence,
    RawSequence,
    Transaction,
    all_k_subsequences,
    flatten,
    itemset_extension,
    seq_length,
    sequence_extension,
)

#: An extension of a (k-1)-sequence: the appended item and its transaction
#: number within the extended pattern (m = itemset extension into the last
#: transaction, m + 1 = sequence extension into a new transaction).
ExtensionPair = tuple[int, int]


def _is_subset_sorted(sub: Transaction, sup: Transaction) -> bool:
    """Two-pointer subset test for sorted transactions."""
    i = 0
    n = len(sup)
    for item in sub:
        while i < n and sup[i] < item:
            i += 1
        if i >= n or sup[i] != item:
            return False
        i += 1
    return True


class FrequentNode:
    """One frequent (k-1)-sequence with its match data precomputed."""

    __slots__ = ("raw", "key", "head", "last", "last_item", "size")

    def __init__(self, raw: RawSequence):
        self.raw = raw
        self.key = flatten(raw)
        self.head = raw[:-1]
        self.last = raw[-1]
        self.last_item = raw[-1][-1]
        self.size = len(raw)  # number of transactions (m)


class SortedFrequentList:
    """An ascending list of frequent (k-1)-sequences with bisect support.

    This is the paper's *(k-1)-sorted list*.
    """

    __slots__ = ("nodes", "_keys")

    def __init__(self, sequences: Iterable[RawSequence]):
        self.nodes: list[FrequentNode] = sorted(
            (FrequentNode(raw) for raw in sequences), key=lambda n: n.key
        )
        self._keys = [node.key for node in self.nodes]

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index: int) -> RawSequence:
        return self.nodes[index].raw

    def index_at_or_after(self, target: RawSequence) -> int:
        """Index of the first list entry >= *target* in comparative order."""
        return bisect_left(self._keys, flatten(target))

    def index_at_or_after_key(self, key: FlatSequence) -> int:
        """Like :meth:`index_at_or_after` but for a precomputed key."""
        return bisect_left(self._keys, key)


def min_extension_pair(
    seq: RawSequence,
    node: FrequentNode,
    bound: ExtensionPair | None = None,
    strict: bool = False,
) -> ExtensionPair | None:
    """Smallest valid extension pair of *node* inside *seq*, above a bound.

    A pair ``(item, no)`` is valid when appending *item* at transaction
    number *no* to the node's pattern yields a k-sequence contained in
    *seq* whose (k-1)-prefix is that pattern.  *bound*, when given,
    restricts pairs to those > (``strict``) or >= it; pairs compare
    item-first, matching the comparative order on the full sequences
    because the first k-1 flattened positions agree.  Returns ``None``
    when the node's pattern is not contained in *seq* or no qualifying
    extension exists.
    """
    # Greedy-match the head (all itemsets but the last); pos becomes the
    # first transaction index allowed to host the last itemset.
    pos = 0
    n = len(seq)
    for itemset in node.head:
        if len(itemset) == 1:
            item = itemset[0]
            while pos < n and item not in seq[pos]:
                pos += 1
        else:
            while pos < n and not _is_subset_sorted(itemset, seq[pos]):
                pos += 1
        if pos >= n:
            return None
        pos += 1

    m = node.size
    last = node.last
    last_item = node.last_item
    single = len(last) == 1

    # The bound (b_item, b_no) admits (x, no) iff x > b_item, or
    # x == b_item and no > b_no (strict) / no >= b_no (non-strict);
    # per transaction number that reduces to an item cut point.
    if bound is not None:
        b_item, b_no = bound
        inc_m = (m > b_no) if strict else (m >= b_no)
        inc_m1 = (m + 1 > b_no) if strict else (m + 1 >= b_no)

    # Itemset extensions: the minimum allowed item over every transaction
    # that can host the last itemset (NOT just the leftmost — see the
    # module docstring on the bounded-search counterexample).
    it_best: int | None = None
    first_host = -1
    for t in range(pos, n):
        txn = seq[t]
        if single:
            if last_item not in txn:
                continue
        elif not _is_subset_sorted(last, txn):
            continue
        if first_host < 0:
            first_host = t
        start = bisect_right(txn, last_item)
        if bound is not None:
            cut = bisect_left(txn, b_item) if inc_m else bisect_right(txn, b_item)
            if cut > start:
                start = cut
        if start < len(txn) and (it_best is None or txn[start] < it_best):
            it_best = txn[start]
    if first_host < 0:
        return None

    # Sequence extensions: the minimum allowed item in any transaction
    # strictly after the earliest host.
    seq_best: int | None = None
    for t in range(first_host + 1, n):
        txn = seq[t]
        start = 0
        if bound is not None:
            start = bisect_left(txn, b_item) if inc_m1 else bisect_right(txn, b_item)
        if start < len(txn) and (seq_best is None or txn[start] < seq_best):
            seq_best = txn[start]

    if it_best is None:
        return None if seq_best is None else (seq_best, m + 1)
    if seq_best is None or it_best <= seq_best:
        return (it_best, m)
    return (seq_best, m + 1)


def extension_pairs(seq: RawSequence, prefix: RawSequence) -> set[ExtensionPair]:
    """All valid extension pairs of *prefix* realisable inside *seq*.

    The enumerating counterpart of :func:`min_extension_pair`, used by the
    counting arrays.  Returns the empty set when *seq* does not contain
    *prefix* or no extension exists.
    """
    if not prefix:
        # Extensions of the empty prefix are the 1-sequences of seq.
        return {(item, 1) for txn in seq for item in txn}
    m = len(prefix)
    head, last = prefix[:-1], prefix[-1]
    pos = 0
    n = len(seq)
    for itemset in head:
        while pos < n and not _is_subset_sorted(itemset, seq[pos]):
            pos += 1
        if pos >= n:
            return set()
        pos += 1
    last_item = last[-1]
    single = len(last) == 1
    pairs: set[ExtensionPair] = set()
    first_host = -1
    for t in range(pos, n):
        txn = seq[t]
        if (last_item not in txn) if single else (not _is_subset_sorted(last, txn)):
            continue
        if first_host < 0:
            first_host = t
        # Itemset extensions: items sorting after the last prefix item
        # keep the prefix as the (k-1)-prefix of the extension.
        for i in range(bisect_right(txn, last_item), len(txn)):
            pairs.add((txn[i], m))
    if first_host < 0:
        return set()
    for t in range(first_host + 1, n):
        for item in seq[t]:
            pairs.add((item, m + 1))
    return pairs


def build_extension(prefix: RawSequence, pair: ExtensionPair) -> RawSequence:
    """Materialise the k-sequence for an extension pair of *prefix*."""
    item, no = pair
    if no == len(prefix):
        return itemset_extension(prefix, item)
    if no == len(prefix) + 1:
        return sequence_extension(prefix, item)
    raise ValueError(f"extension pair {pair!r} does not fit prefix of size {len(prefix)}")


def min_extension(
    seq: RawSequence,
    prefix: RawSequence,
    bound: ExtensionPair | None = None,
    strict: bool = False,
) -> RawSequence | None:
    """Smallest extension of *prefix* contained in *seq*, above a bound.

    Convenience wrapper around :func:`min_extension_pair` for callers
    outside the DISC inner loop (partition keys, the dynamic algorithm,
    tests).  Returns ``None`` when no qualifying extension exists.
    """
    if not prefix:
        items = (
            item
            for txn in seq
            for item in txn
            if _pair_passes((item, 1), bound, strict)
        )
        smallest = min(items, default=None)
        if smallest is None:
            return None
        return ((smallest,),)
    pair = min_extension_pair(seq, FrequentNode(prefix), bound=bound, strict=strict)
    if pair is None:
        return None
    return build_extension(prefix, pair)


def _pair_passes(
    pair: ExtensionPair, bound: ExtensionPair | None, strict: bool
) -> bool:
    if bound is None:
        return True
    return pair > bound if strict else pair >= bound


def minimum_k_subsequence_brute(seq: RawSequence, k: int) -> RawSequence | None:
    """Reference k-minimum subsequence by exhaustive enumeration.

    Exponential in *k* — used only by the tests as ground truth.
    """
    subs = all_k_subsequences(seq, k)
    if not subs:
        return None
    return min(subs, key=flatten)


def minimum_k_subsequence(seq: RawSequence, k: int) -> RawSequence | None:
    """Unrestricted k-minimum subsequence (Definition 2.3).

    Builds the minimum incrementally: the k-minimum's (k-1)-prefix is the
    smallest (k-1)-subsequence of *seq* that still has an extension, so we
    search candidate prefixes in ascending order.  Practical for the small
    *k* the library needs outside of DISC (partition keys use k <= 2);
    worst case it enumerates (k-1)-subsequences.
    """
    if k <= 0 or seq_length(seq) < k:
        return None
    if k == 1:
        return ((min(item for txn in seq for item in txn),),)
    candidates = sorted(all_k_subsequences(seq, k - 1), key=flatten)
    for prefix in candidates:
        ext = min_extension(seq, prefix)
        if ext is not None:
            return ext
    return None


# -- Apriori-KMS / Apriori-CKMS (Figures 5 and 6) -----------------------------


def apriori_kms_entry(
    seq: RawSequence,
    flist: SortedFrequentList,
    start: int = 0,
    cache: dict[int, ExtensionPair | None] | None = None,
) -> tuple[FlatSequence, int] | None:
    """Apriori-KMS returning the k-minimum's flat key and apriori pointer.

    Scans the (k-1)-sorted list from *start* in ascending order; the first
    frequent (k-1)-sequence that admits an extension inside *seq* yields
    the k-minimum subsequence of the restricted family.  The key is the
    node's key plus the extension pair — no sequence is materialised.
    *cache* memoises the unbounded per-node results for this customer
    sequence; the apriori pointer only moves forward, so each (sequence,
    node) pair is computed at most once per discovery pass.
    """
    nodes = flist.nodes
    for pointer in range(start, len(nodes)):
        node = nodes[pointer]
        if cache is None:
            pair = min_extension_pair(seq, node)
        elif pointer in cache:
            pair = cache[pointer]
        else:
            pair = cache[pointer] = min_extension_pair(seq, node)
        if pair is not None:
            return node.key + (pair,), pointer
    return None


def apriori_kms(
    seq: RawSequence,
    flist: SortedFrequentList,
    start: int = 0,
) -> tuple[RawSequence, int] | None:
    """Apriori-KMS (Figure 5): k-minimum subsequence with frequent prefix.

    Returns the subsequence together with its apriori pointer (the index
    of its (k-1)-prefix in *flist*), or ``None`` when the restricted
    family is empty.
    """
    nodes = flist.nodes
    for pointer in range(start, len(nodes)):
        node = nodes[pointer]
        pair = min_extension_pair(seq, node)
        if pair is not None:
            return build_extension(node.raw, pair), pointer
    return None


class CkmsQuery:
    """Per-round precomputation shared by all Apriori-CKMS calls.

    One DISC iteration advances a whole group of customer sequences past
    the same ``alpha_delta`` with the same strictness; everything that
    depends only on (alpha_delta, strict, flist) is computed here once.
    """

    __slots__ = ("prefix_key", "bound", "strict", "start")

    def __init__(
        self,
        flist: SortedFrequentList,
        alpha_delta: RawSequence,
        strict: bool,
    ):
        key = flatten(alpha_delta)
        self.prefix_key = key[:-1]
        self.bound = key[-1]
        self.strict = strict
        self.start = flist.index_at_or_after_key(self.prefix_key)


def apriori_ckms_entry(
    seq: RawSequence,
    flist: SortedFrequentList,
    pointer: int,
    query: CkmsQuery,
    cache: dict[int, ExtensionPair | None] | None = None,
) -> tuple[FlatSequence, int] | None:
    """Apriori-CKMS returning the conditional k-minimum's key and pointer.

    Finds the smallest k-subsequence of *seq* with a frequent (k-1)-prefix
    that is > (``query.strict``) or >= alpha_delta.  The scan resumes from
    the entry's apriori *pointer*, skipping frequent (k-1)-sequences
    smaller than alpha_delta's (k-1)-prefix (Figure 6, Steps 4-7).
    *cache* memoises the unbounded per-node results (the bounded query
    against alpha_delta's own prefix node is never cached — its bound
    changes every round).
    """
    nodes = flist.nodes
    start = pointer if pointer > query.start else query.start
    prefix_key = query.prefix_key
    for idx in range(start, len(nodes)):
        node = nodes[idx]
        if node.key == prefix_key:
            pair = min_extension_pair(
                seq, node, bound=query.bound, strict=query.strict
            )
        else:
            # node.key > prefix_key here, so any extension already exceeds
            # alpha_delta at a position inside the prefix.
            if cache is None:
                pair = min_extension_pair(seq, node)
            elif idx in cache:
                pair = cache[idx]
            else:
                pair = cache[idx] = min_extension_pair(seq, node)
        if pair is not None:
            return node.key + (pair,), idx
    return None


def apriori_ckms(
    seq: RawSequence,
    flist: SortedFrequentList,
    pointer: int,
    alpha_delta: RawSequence,
    strict: bool,
) -> tuple[RawSequence, int] | None:
    """Apriori-CKMS (Figure 6): conditional k-minimum subsequence.

    Materialising convenience wrapper around :func:`apriori_ckms_entry`.
    """
    query = CkmsQuery(flist, alpha_delta, strict)
    found = apriori_ckms_entry(seq, flist, pointer, query)
    if found is None:
        return None
    key, idx = found
    node = flist.nodes[idx]
    return build_extension(node.raw, key[-1]), idx


def next_key_after(
    seq: RawSequence,
    first_item: int,
    current: RawSequence | None,
) -> RawSequence | None:
    """Next 2-sequence partition key for *seq* under a first-level item.

    Returns the smallest 2-subsequence of *seq* whose first item is
    *first_item* and which is strictly greater than *current* (or the very
    smallest when *current* is None).  Used to (re)assign customer
    sequences to second-level partitions.
    """
    anchor: RawSequence = ((first_item,),)
    if current is None:
        return min_extension(seq, anchor)
    pair = flatten(current)[1]
    return min_extension(seq, anchor, bound=pair, strict=True)


def verify_sorted(seqs: TypingSequence[RawSequence]) -> bool:
    """True when *seqs* is ascending in the comparative order (test aid)."""
    keys = [sort_key(s) for s in seqs]
    return all(a <= b for a, b in zip(keys, keys[1:]))
