"""The k-sorted database (system S5; Section 1.2, Tables 3/4/9/10).

A k-sorted database holds the customer sequences of one partition ordered
by their current (conditional) k-minimum subsequences.  It is backed by a
:class:`~repro.core.avl.LocativeAVLTree` keyed by the flattened k-minimum
subsequence, with one :class:`SortedEntry` per customer sequence carrying
the apriori pointer that accelerates Apriori-CKMS.  Keys live in flat
form throughout the inner loop; sequences are materialised only at the
API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.avl import LocativeAVLTree
from repro.core.keytable import SortedKeyTable
from repro.core.kminimum import SortedFrequentList, apriori_kms_entry
from repro.core.sequence import FlatSequence, RawSequence, unflatten
from repro.obs import active

#: Available k-sorted-database index backends: the array-backed table is
#: the default (fastest in CPython); the locative AVL tree matches the
#: paper's data structure and is kept for the backend ablation.
BACKENDS = {"table": SortedKeyTable, "avl": LocativeAVLTree}


@dataclass(slots=True)
class SortedEntry:
    """One customer sequence inside a k-sorted database."""

    cid: int
    seq: RawSequence
    key: FlatSequence  # flattened (conditional) k-minimum subsequence
    pointer: int  # apriori pointer: index into the (k-1)-sorted list
    #: memoised unbounded min-extension results per (k-1)-sorted-list node
    cache: dict = field(default_factory=dict)

    @property
    def kmin(self) -> RawSequence:
        """The (conditional) k-minimum subsequence, materialised."""
        return unflatten(self.key)


class KSortedDatabase:
    """Customer sequences sorted by (conditional) k-minimum subsequence."""

    def __init__(
        self,
        members: Iterable[tuple[int, RawSequence]],
        flist: SortedFrequentList,
        backend: str = "table",
    ):
        self._tree = BACKENDS[backend]()
        self.flist = flist
        metrics = active().metrics
        kms_calls = metrics.counter("sorted_db.kms_calls")
        kms_dropped = metrics.counter("sorted_db.kms_dropped")
        for cid, seq in members:
            cache: dict = {}
            kms_calls.add(1)
            found = apriori_kms_entry(seq, flist, cache=cache)
            if found is None:
                kms_dropped.add(1)
                continue  # no k-subsequence with a frequent prefix: drop (Fig 4)
            key, pointer = found
            self.add(SortedEntry(cid, seq, key, pointer, cache))
        metrics.histogram("sorted_db.initial_size").record(len(self._tree))

    def __len__(self) -> int:
        return len(self._tree)

    def add(self, entry: SortedEntry) -> None:
        """(Re-)insert an entry under its current k-minimum key."""
        self._tree.insert(entry.key, entry)

    def candidate(self) -> RawSequence:
        """alpha_1: the k-minimum subsequence at the first position."""
        key, _ = self._tree.min_bucket()
        return unflatten(key)

    def condition(self, delta: int) -> RawSequence:
        """alpha_delta: the k-minimum subsequence at the delta-th position."""
        return unflatten(self._tree.key_at_rank(delta))

    def pop_candidate_group(self) -> list[SortedEntry]:
        """Remove and return every entry whose k-minimum equals alpha_1."""
        _, bucket = self._tree.pop_min_bucket()
        return bucket

    def pop_below(self, bound_key: FlatSequence) -> list[SortedEntry]:
        """Remove and return every entry with k-minimum key < *bound_key*."""
        removed = self._tree.pop_while_less(bound_key)
        return [entry for _, bucket in removed for entry in bucket]

    def entries(self) -> Iterator[SortedEntry]:
        """Entries in ascending k-minimum order (Tables 3/4/9/10 layout)."""
        return self._tree.entries()
