"""Counting arrays (system S6; Section 3.1, Figures 3 and 7).

A counting array accumulates, in a single scan of a partition, the support
count of every (k+1)-sequence sharing a common k-prefix.  For each
extension pair — ``(x, m)`` for the itemset form ``<(prefix x)>`` and
``(x, m+1)`` for the sequence form ``<(prefix)(x)>`` — it keeps the
support count together with the last customer id that updated it, so
repetitions of an extension within one customer sequence are counted once
("the CID information can avoid counting the repetitions of a 2-sequence
in the same customer sequence").

The paper materialises this as two item-indexed arrays; a dict keyed by
extension pair is the direct Python equivalent and also serves the
(k+1)-level counting of the bi-level technique (Figure 7).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.kminimum import ExtensionPair, build_extension, extension_pairs
from repro.core.sequence import RawSequence


class CountingArray:
    """One-scan support counting for extensions of a fixed prefix."""

    __slots__ = ("prefix", "_cells")

    def __init__(self, prefix: RawSequence):
        self.prefix = prefix
        # pair -> [support_count, last_cid]
        self._cells: dict[ExtensionPair, list[int]] = {}

    def observe(self, cid: int, seq: RawSequence) -> None:
        """Account one customer sequence; repeated pairs per cid count once."""
        for pair in extension_pairs(seq, self.prefix):
            cell = self._cells.get(pair)
            if cell is None:
                self._cells[pair] = [1, cid]
            elif cell[1] != cid:
                cell[0] += 1
                cell[1] = cid

    def observe_all(self, members: Iterable[tuple[int, RawSequence]]) -> None:
        """Account every (cid, sequence) pair of a partition."""
        for cid, seq in members:
            self.observe(cid, seq)

    def support(self, pair: ExtensionPair) -> int:
        """Support count accumulated for an extension pair."""
        cell = self._cells.get(pair)
        return cell[0] if cell else 0

    def counts(self) -> dict[ExtensionPair, int]:
        """Snapshot of all pair supports (used to reproduce Figures 3/7)."""
        return {pair: cell[0] for pair, cell in self._cells.items()}

    def last_cids(self) -> dict[ExtensionPair, int]:
        """Snapshot of the last-CID column (Figures 3/7)."""
        return {pair: cell[1] for pair, cell in self._cells.items()}

    def frequent(self, delta: int) -> Iterator[tuple[RawSequence, int]]:
        """Extensions with support >= *delta*, as materialised sequences."""
        for pair, (count, _) in self._cells.items():
            if count >= delta:
                yield build_extension(self.prefix, pair), count


def count_frequent_items(
    members: Iterable[tuple[int, RawSequence]], delta: int
) -> dict[int, int]:
    """Support count of every frequent 1-sequence (item) in one scan."""
    counts: dict[int, int] = {}
    for _, seq in members:
        for item in {item for txn in seq for item in txn}:
            counts[item] = counts.get(item, 0) + 1
    return {item: count for item, count in counts.items() if count >= delta}
