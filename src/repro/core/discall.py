"""The DISC-all algorithm (system S9; Section 3, Figure 2).

DISC-all combines the four strategies of Table 5:

1. *Candidate sequence pruning* — Apriori-KMS/CKMS only consider
   k-sequences whose (k-1)-prefix is frequent;
2. *Database partitioning* — two-level partitioning by minimum 1- and
   2-sequences;
3. *Customer sequence reducing* — non-frequent 1-/2-sequences are removed
   before the second level;
4. *DISC* — from length 4 on, frequent sequences are discovered by direct
   sequence comparison, without counting non-frequent candidates.

The ``bilevel`` flag enables the virtual-partition counting of Section 3.2
(one discovery pass yields lengths k and k+1); it is on by default, as in
the paper's experiments.

Execution statistics are not counted twice: every event reports into the
active :mod:`repro.obs` registry (the same counters ``mine(observe=True)``
snapshots into its :class:`~repro.obs.RunReport`), and
:class:`DiscAllStats` is derived from that registry afterwards.  When no
observation is active, :func:`disc_all` activates a private metrics-only
one so the returned statistics stay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterable

from repro.core.cancel import active_token
from repro.core.checkpoint import active_recorder
from repro.core.counting import CountingArray, count_frequent_items
from repro.core.disc import discover_frequent_k
from repro.core.kminimum import SortedFrequentList
from repro.core.partition import (
    Member,
    iterate_first_level,
    iterate_second_level,
    reduce_sequence,
)
from repro.core.sequence import RawSequence, seq_length
from repro.faults import fault_point
from repro.obs import (
    MetricsRegistry,
    Observation,
    activated,
    active,
    stats_observation,
)


@dataclass(slots=True)
class DiscAllStats:
    """Execution counters exposed for the ablation studies.

    A read-out of the observability registry: each field mirrors one
    counter (summed across labels), captured as a before/after delta so
    several runs can share one registry.
    """

    first_level_partitions: int = 0
    second_level_partitions: int = 0
    disc_rounds: int = 0
    disc_comparisons: int = 0
    reduced_members: int = 0

    #: registry counter backing each field
    COUNTERS: ClassVar[dict[str, str]] = {
        "first_level_partitions": "discall.first_level_mined",
        "second_level_partitions": "discall.second_level_mined",
        "disc_rounds": "disc.rounds",
        "disc_comparisons": "disc.comparisons",
        "reduced_members": "discall.reduced_members",
    }

    @classmethod
    def baseline(cls, metrics: MetricsRegistry) -> dict[str, int]:
        """Current totals of the backing counters (the 'before' state)."""
        return {
            field_name: metrics.counter_total(counter_name)
            for field_name, counter_name in cls.COUNTERS.items()
        }

    @classmethod
    def since(
        cls, metrics: MetricsRegistry, baseline: dict[str, int]
    ) -> "DiscAllStats":
        """Stats accumulated in *metrics* since *baseline* was captured."""
        return cls(**{
            field_name: metrics.counter_total(counter_name)
            - baseline.get(field_name, 0)
            for field_name, counter_name in cls.COUNTERS.items()
        })


@dataclass(slots=True)
class DiscAllOutput:
    """Frequent pattern map plus execution statistics."""

    patterns: dict[RawSequence, int] = field(default_factory=dict)
    stats: DiscAllStats = field(default_factory=DiscAllStats)


def disc_all(
    members: Iterable[Member],
    delta: int,
    bilevel: bool = True,
    reduce: bool = True,
    backend: str = "table",
) -> DiscAllOutput:
    """Mine every frequent sequence with the DISC-all algorithm.

    *members* are ``(cid, sequence)`` pairs; *delta* is the minimum
    support count (a pattern is frequent when support >= delta).  *reduce*
    can disable customer sequence reducing and *backend* swaps the
    k-sorted-database index, both for the ablation benchmarks.
    Returns the pattern -> support map and execution statistics.
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    obs = active()
    if obs.enabled:
        return _disc_all(members, delta, bilevel, reduce, backend, obs)
    # Nobody is observing: back the returned stats with a private
    # observation materialising only the DiscAllStats counters — every
    # other metric and span stays the shared no-op singletons.
    with activated(stats_observation(DiscAllStats.COUNTERS.values())) as private:
        return _disc_all(members, delta, bilevel, reduce, backend, private)


def _disc_all(
    members: Iterable[Member],
    delta: int,
    bilevel: bool,
    reduce: bool,
    backend: str,
    obs: Observation,
) -> DiscAllOutput:
    """DISC-all reporting into the observation *obs*."""
    members = list(members)
    out = DiscAllOutput()
    metrics = obs.metrics
    baseline = DiscAllStats.baseline(metrics)

    # Step 1(a): one scan finds the frequent 1-sequences.
    frequent_items = count_frequent_items(members, delta)
    metrics.counter("counting.frequent", k=1).add(len(frequent_items))
    # repro: allow[FLOW002] — one pass over the already-counted frequent
    # 1-sequences; cancellation polls at the partition loop below
    for item, count in frequent_items.items():
        out.patterns[((item,),)] = count
    item_set = frozenset(frequent_items)

    # Steps 1(b)-2.2: first-level partitions in ascending order.  The
    # checkpoint recorder snapshots at the same boundaries the cancel
    # token polls; on resume it skips partitions a previous run finished
    # (the generator still reassigns their members to later minima).
    mined = metrics.counter("discall.first_level_mined")
    token = active_token()
    recorder = active_recorder()
    recorder.attach(out.patterns)
    for lam, group in iterate_first_level(members):
        if lam not in frequent_items:
            continue  # Step 2.1 guard: mine only frequent partition keys
        if recorder.should_skip(lam):
            continue  # already mined by the run this one resumes
        token.checkpoint()
        fault_point("disc.partition")
        mined.add(1)
        with obs.tracer.span("partition", lam=lam, size=len(group)):
            _process_first_level(
                lam, group, delta, item_set, bilevel, reduce, backend, out
            )
        recorder.partition_done(lam)
    out.stats = DiscAllStats.since(metrics, baseline)
    return out


def _process_first_level(
    lam: int,
    group: list[Member],
    delta: int,
    frequent_items: frozenset[int],
    bilevel: bool,
    reduce: bool,
    backend: str,
    out: DiscAllOutput,
) -> None:
    """Steps 2.1.1-2.1.3: one <(lam)>-partition."""
    anchor: RawSequence = ((lam,),)
    obs = active()
    metrics = obs.metrics

    # Step 2.1.1: frequent 2-sequences via the counting array (Figure 3).
    array = CountingArray(anchor)
    array.observe_all(group)
    frequent_pairs = set()
    found_pairs = 0
    # repro: allow[FLOW002] — bounded by the counting array's result;
    # cancellation polls once per partition in the caller
    for pattern, count in array.frequent(delta):
        out.patterns[pattern] = count
        found_pairs += 1
    metrics.counter("counting.frequent", k=2).add(found_pairs)
    # repro: allow[FLOW002] — bounded by the pair-count table
    for pair, count in array.counts().items():
        if count >= delta:
            frequent_pairs.add(pair)

    # Step 2.1.2: reduce sequences and build second-level partitions.
    reduced: list[Member] = []
    # repro: allow[FLOW002] — one reduction pass over this partition's
    # members; per-partition granularity is the checkpoint contract
    for cid, seq in group:
        if reduce:
            shorter = reduce_sequence(seq, lam, frequent_items, frequent_pairs)
        else:
            shorter = seq if seq_length(seq) >= 3 else None
        if shorter is not None:
            reduced.append((cid, shorter))
    metrics.counter("discall.reduced_members").add(len(reduced))

    # Step 2.1.3: second-level partitions in ascending order.  Only
    # frequent 2-sequence keys can yield longer frequent sequences.
    mined = metrics.counter("discall.second_level_mined")
    for key, sp_group in iterate_second_level(reduced, lam, frequent_pairs):
        mined.add(1)
        _process_second_level(key, sp_group, delta, bilevel, backend, out)


def _process_second_level(
    key: RawSequence,
    sp_group: list[Member],
    delta: int,
    bilevel: bool,
    backend: str,
    out: DiscAllOutput,
) -> None:
    """Steps 2.1.3.1-2.1.3.2: one <(lam1 lam2)>-partition."""
    if len(sp_group) < delta:
        return
    obs = active()
    metrics = obs.metrics

    # Step 2.1.3.1: frequent 3-sequences via the counting array.
    array = CountingArray(key)
    array.observe_all(sp_group)
    frequent_k = {pattern: count for pattern, count in array.frequent(delta)}
    metrics.counter("counting.frequent", k=3).add(len(frequent_k))
    # repro: allow[FLOW002] — bounded copy of the k=3 result table; the
    # k>=4 while-loop below polls the cancel token every round
    for pattern, count in frequent_k.items():
        out.patterns[pattern] = count

    # Step 2.1.3.2: DISC from k = 4 (stepping by 2 under bi-level).
    rounds = metrics.counter("disc.rounds")
    token = active_token()
    recorder = active_recorder()
    k = 4
    while frequent_k:
        token.checkpoint()
        fault_point("disc.round")
        flist = SortedFrequentList(frequent_k)
        eligible = [(cid, seq) for cid, seq in sp_group if seq_length(seq) >= k]
        if len(eligible) < delta:
            break
        rounds.add(1)
        with obs.tracer.span("discover_k", k=k, eligible=len(eligible)):
            result = discover_frequent_k(
                eligible, flist, delta, bilevel=bilevel, backend=backend, k=k
            )
        for pattern, count in result.frequent_k.items():
            out.patterns[pattern] = count
        if bilevel:
            for pattern, count in result.frequent_k_plus_1.items():
                out.patterns[pattern] = count
            frequent_k = result.frequent_k_plus_1
            recorder.round_done(k + 1)
            k += 2
        else:
            frequent_k = result.frequent_k
            recorder.round_done(k)
            k += 1
