"""Sequence data model (system S1).

A *raw sequence* is the internal representation used throughout the mining
code: a tuple of transactions, each transaction a tuple of integer items.
The canonical form sorts each transaction's items in increasing order and
forbids empty transactions and duplicate items within a transaction; every
database and every pattern handled by the miners is canonical.

The low-level operations in this module deliberately preserve the item
order *as given* instead of re-sorting, because the paper's Examples 2.1
and 2.2 apply the comparative order to itemsets written in non-alphabetic
order.  For canonical input the two behaviours coincide.

The :class:`Sequence` class is the friendly public wrapper around a raw
sequence; the functional API below is what the algorithms use internally.
"""

from __future__ import annotations

import functools
import itertools
from typing import Iterable, Iterator

from repro.exceptions import InvalidSequenceError

#: A transaction: items bought together, canonical form sorted ascending.
Transaction = tuple[int, ...]
#: A raw sequence: ordered transactions of a single customer.
RawSequence = tuple[Transaction, ...]
#: Flattened view: one (item, transaction_number) pair per item occurrence,
#: transaction numbers starting at 1 (Section 2 of the paper).
FlatSequence = tuple[tuple[int, int], ...]

EMPTY: RawSequence = ()


def canonical(itemsets: Iterable[Iterable[int]]) -> RawSequence:
    """Build a canonical raw sequence: each itemset sorted and de-duplicated.

    Raises :class:`InvalidSequenceError` on empty itemsets or non-integer
    items.
    """
    transactions = []
    for itemset in itemsets:
        items = set(itemset)
        for item in items:
            if not isinstance(item, int) or isinstance(item, bool):
                raise InvalidSequenceError(f"non-integer item {item!r}")
        if not items:
            raise InvalidSequenceError("empty itemset in sequence")
        # repro: allow[DISC002] — scalar int items within one itemset
        transactions.append(tuple(sorted(items)))
    return tuple(transactions)


def validate(seq: RawSequence) -> None:
    """Raise :class:`InvalidSequenceError` unless *seq* is canonical."""
    if not isinstance(seq, tuple):
        raise InvalidSequenceError(f"sequence must be a tuple, got {type(seq)}")
    for txn in seq:
        if not isinstance(txn, tuple) or not txn:
            raise InvalidSequenceError(f"invalid transaction {txn!r}")
        for prev, cur in zip(txn, txn[1:]):
            if prev >= cur:
                raise InvalidSequenceError(
                    f"transaction {txn!r} is not strictly increasing"
                )
        for item in txn:
            if not isinstance(item, int):
                raise InvalidSequenceError(f"non-integer item {item!r}")


def seq_length(seq: RawSequence) -> int:
    """Total number of item occurrences (the paper's *length*)."""
    return sum(len(txn) for txn in seq)


def flatten(seq: RawSequence) -> FlatSequence:
    """Flattened (item, transaction_number) view, numbers starting at 1."""
    return tuple(
        (item, no)
        for no, txn in enumerate(seq, start=1)
        for item in txn
    )


def unflatten(flat: FlatSequence) -> RawSequence:
    """Rebuild a raw sequence from its flattened view.

    Transaction numbers must be non-decreasing; gaps are tolerated (they
    occur when taking flat prefixes) and are compacted away.
    """
    transactions: list[list[int]] = []
    last_no: int | None = None
    for item, no in flat:
        if last_no is not None and no < last_no:
            raise InvalidSequenceError("transaction numbers must not decrease")
        if no != last_no:
            transactions.append([])
            last_no = no
        transactions[-1].append(item)
    return tuple(tuple(txn) for txn in transactions)


def k_prefix(seq: RawSequence, k: int) -> RawSequence:
    """The prefix of *seq* with length *k* (first k flattened items).

    Example from the paper: the 3-prefix of <(a)(a,g,h)(c)> is <(a)(a,g)>.
    """
    if k < 0:
        raise InvalidSequenceError(f"prefix length must be >= 0, got {k}")
    if k == 0:
        return EMPTY
    taken = 0
    transactions: list[Transaction] = []
    for txn in seq:
        remaining = k - taken
        if remaining <= 0:
            break
        if len(txn) <= remaining:
            transactions.append(txn)
            taken += len(txn)
        else:
            transactions.append(txn[:remaining])
            taken = k
    if taken < k:
        raise InvalidSequenceError(
            f"sequence of length {taken} has no {k}-prefix"
        )
    return tuple(transactions)


def _is_subset_sorted(sub: Transaction, sup: Transaction) -> bool:
    """Two-pointer subset test for sorted transactions."""
    if len(sub) > len(sup):
        return False
    i = 0
    n = len(sup)
    for item in sub:
        while i < n and sup[i] < item:
            i += 1
        if i >= n or sup[i] != item:
            return False
        i += 1
    return True


def leftmost_match(big: RawSequence, small: RawSequence) -> tuple[int, ...] | None:
    """Greedy leftmost embedding of *small* into *big*.

    Returns the 0-based transaction indices of *big* hosting each itemset of
    *small*, or ``None`` when *big* does not contain *small*.  The greedy
    embedding minimises every matched transaction index, in particular the
    last one — the *matching point* used by Apriori-KMS (Figure 5).
    """
    indices: list[int] = []
    pos = 0
    for itemset in small:
        while pos < len(big) and not _is_subset_sorted(itemset, big[pos]):
            pos += 1
        if pos >= len(big):
            return None
        indices.append(pos)
        pos += 1
    return tuple(indices)


def contains(big: RawSequence, small: RawSequence) -> bool:
    """True when *big* contains *small* as a subsequence (Section 1)."""
    return leftmost_match(big, small) is not None


def support_count(database: Iterable[RawSequence], pattern: RawSequence) -> int:
    """Number of customer sequences in *database* containing *pattern*."""
    return sum(1 for seq in database if contains(seq, pattern))


def all_k_subsequences(seq: RawSequence, k: int) -> set[RawSequence]:
    """Every distinct k-subsequence of *seq* (exponential; tests only).

    Item order within each transaction is preserved as given, matching the
    paper's treatment in Example 2.2.
    """
    if k <= 0:
        return set()
    results: set[RawSequence] = set()

    def extend(txn_index: int, remaining: int, acc: tuple[Transaction, ...]) -> None:
        if remaining == 0:
            results.add(acc)
            return
        if txn_index >= len(seq):
            return
        txn = seq[txn_index]
        # Either skip this transaction entirely...
        extend(txn_index + 1, remaining, acc)
        # ...or take a non-empty subset (preserving order) from it.
        max_take = min(remaining, len(txn))
        for take in range(1, max_take + 1):
            for combo in itertools.combinations(txn, take):
                extend(txn_index + 1, remaining - take, acc + (combo,))

    extend(0, k, ())
    return results


def itemset_extension(seq: RawSequence, item: int) -> RawSequence:
    """Append *item* to the last transaction (canonical position).

    The item must be greater than the last transaction's final item so the
    result stays canonical and has *seq* as its (k-1)-prefix.
    """
    if not seq:
        raise InvalidSequenceError("cannot itemset-extend the empty sequence")
    last = seq[-1]
    if item <= last[-1]:
        raise InvalidSequenceError(
            f"itemset extension item {item} must exceed {last[-1]}"
        )
    return seq[:-1] + (last + (item,),)


def sequence_extension(seq: RawSequence, item: int) -> RawSequence:
    """Append a new transaction containing only *item*."""
    return seq + ((item,),)


# ---------------------------------------------------------------------------
# Text parsing / formatting.  Single-letter tokens map to 1..26 so the
# paper's examples read naturally; integer tokens pass through.
# ---------------------------------------------------------------------------

_LETTER_BASE = ord("a") - 1


def parse(text: str) -> RawSequence:
    """Parse ``"(a, e, g)(b)(h)"`` into a canonical raw sequence.

    Tokens may be single lowercase letters (mapped to 1..26) or decimal
    integers.  Raises :class:`InvalidSequenceError` on malformed text.
    """
    text = text.strip()
    if text in ("", "<>", "()"):
        return EMPTY
    if text.startswith("<") and text.endswith(">"):
        text = text[1:-1].strip()
    if not text.startswith("(") or not text.endswith(")"):
        raise InvalidSequenceError(f"malformed sequence text {text!r}")
    itemsets: list[list[int]] = []
    for chunk in text[1:-1].split(")("):
        items: list[int] = []
        for token in chunk.split(","):
            token = token.strip()
            if not token:
                raise InvalidSequenceError(f"empty item token in {text!r}")
            if token.isdigit():
                items.append(int(token))
            elif len(token) == 1 and token.isalpha():
                items.append(ord(token.lower()) - _LETTER_BASE)
            else:
                raise InvalidSequenceError(f"bad item token {token!r}")
        itemsets.append(items)
    return canonical(itemsets)


def format_seq(seq: RawSequence, letters: bool | None = None) -> str:
    """Format a raw sequence as ``<(a, e, g)(b)>``.

    When *letters* is None, letters are used iff every item fits in 1..26.
    """
    if not seq:
        return "<>"
    if letters is None:
        letters = all(1 <= item <= 26 for txn in seq for item in txn)

    def fmt(item: int) -> str:
        return chr(item + _LETTER_BASE) if letters else str(item)

    return "<" + "".join(
        "(" + ", ".join(fmt(item) for item in txn) + ")" for txn in seq
    ) + ">"


@functools.total_ordering
class Sequence:
    """Public, immutable wrapper around a canonical raw sequence.

    Supports the paper's comparative order (Definition 2.2) via the usual
    comparison operators, containment via ``in``, and convenient parsing:

    >>> Sequence.of("(a, b)(c)") < Sequence.of("(a)(b, c)")
    True
    >>> Sequence.of("(a)(b)") in Sequence.of("(a, e, g)(b)")
    True
    """

    __slots__ = ("_raw", "_flat", "_hash")

    def __init__(self, itemsets: Iterable[Iterable[int]]):
        self._raw = canonical(itemsets)
        self._flat = flatten(self._raw)
        self._hash = hash(self._raw)

    @classmethod
    def of(cls, text: str) -> "Sequence":
        """Parse a sequence from text such as ``"(a, b)(c)"``."""
        return cls.from_raw(parse(text))

    @classmethod
    def from_raw(cls, raw: RawSequence) -> "Sequence":
        """Wrap an already-canonical raw sequence without copying."""
        obj = cls.__new__(cls)
        validate(raw)
        obj._raw = raw
        obj._flat = flatten(raw)
        obj._hash = hash(raw)
        return obj

    @property
    def raw(self) -> RawSequence:
        """The underlying raw tuple-of-tuples."""
        return self._raw

    @property
    def flat(self) -> FlatSequence:
        """Flattened (item, transaction_number) view."""
        return self._flat

    @property
    def length(self) -> int:
        """Total number of item occurrences (the paper's *length*)."""
        return len(self._flat)

    @property
    def size(self) -> int:
        """Number of transactions."""
        return len(self._raw)

    def k_prefix(self, k: int) -> "Sequence":
        """The k-prefix as a new Sequence."""
        return Sequence.from_raw(k_prefix(self._raw, k))

    def contains(self, other: "Sequence") -> bool:
        """True when *other* is a subsequence of this sequence."""
        return contains(self._raw, other._raw)

    def __contains__(self, other: object) -> bool:
        # Unlike the comparison dunders, __contains__ has no reflected
        # fallback: non-Sequence operands are simply never contained.
        if not isinstance(other, Sequence):
            return False
        return self.contains(other)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._raw)

    def __len__(self) -> int:
        return len(self._raw)

    def __getitem__(self, index: int) -> Transaction:
        return self._raw[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return self._raw == other._raw

    def __lt__(self, other: "Sequence") -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        # Lexicographic comparison of flattened (item, no) pairs implements
        # Definition 2.2; see repro.core.order for the proof obligations.
        return self._flat < other._flat

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Sequence.of({format_seq(self._raw)!r})"

    def __str__(self) -> str:
        return format_seq(self._raw)
