"""Comparison protocol for sort keys (system S3 typing support).

The k-sorted-database backends (:mod:`repro.core.avl`,
:mod:`repro.core.keytable`) order arbitrary key values with ``<`` — in
practice flattened sequences, i.e. tuples of ``(item, transaction_number)``
pairs, whose lexicographic order realises the paper's comparative order
(Definition 2.2; see :mod:`repro.core.order`).  :class:`Comparable` is the
structural protocol those containers require of their key type, replacing
the operator-suppression comments that previously papered over the
unbounded ``TypeVar``.
"""

from __future__ import annotations

from typing import Any, Protocol, TypeVar


class Comparable(Protocol):
    """Anything usable as a sort key: supports ``<`` against its own kind.

    Mirrors typeshed's ``SupportsDunderLT``: one total-order operator is
    enough because every comparison the backends perform is written in
    terms of ``<`` (and ``==``, which ``object`` always provides).
    """

    def __lt__(self, other: Any, /) -> bool: ...


#: Type variable for key types that honour the :class:`Comparable` protocol.
ComparableT = TypeVar("ComparableT", bound=Comparable)
