"""Comparative order on sequences (system S2; Definitions 2.1, 2.2, 2.4).

The paper orders two sequences by their *differential point*: the first
flattened position where they differ either in item or in transaction
number, items compared first.  (Definition 2.1(b) literally requires both
the item *and* the number to differ, but Example 2.1 — where <(a,c,d)(d,b)>
precedes <(a,c)(d,a)> because only the transaction numbers differ at
position 3 — shows the intended condition is *or*; we implement that.)

Because items are compared before transaction numbers at the differential
point, the whole order is exactly the lexicographic order on the flattened
``(item, transaction_number)`` pair lists, with a proper flat-prefix
ordered first (the paper's "special item smaller than any other item"
padding).  ``sort_key`` exposes that key; ``compare`` and
``differential_point`` are the literal transcriptions used to cross-check
the equivalence in the tests.
"""

from __future__ import annotations

from repro.core.sequence import FlatSequence, RawSequence, flatten


def differential_point(a: RawSequence, b: RawSequence) -> int | None:
    """1-based differential point of two sequences (Definition 2.1).

    Returns ``None`` when the sequences are equal.  When one flattened
    sequence is a proper prefix of the other, the differential point is the
    first position past the shorter one (the paper pads the shorter
    sequence with a virtual minimal item there).
    """
    fa, fb = flatten(a), flatten(b)
    for pos, (pa, pb) in enumerate(zip(fa, fb), start=1):
        if pa != pb:
            return pos
    if len(fa) != len(fb):
        return min(len(fa), len(fb)) + 1
    return None


def compare(a: RawSequence, b: RawSequence) -> int:
    """Three-way comparative order (Definition 2.2): -1, 0 or 1.

    Literal transcription: at the differential point the items decide
    first, then the transaction numbers; a proper flat-prefix is smaller.
    """
    fa, fb = flatten(a), flatten(b)
    for (item_a, no_a), (item_b, no_b) in zip(fa, fb):
        if item_a != item_b:
            return -1 if item_a < item_b else 1
        if no_a != no_b:
            return -1 if no_a < no_b else 1
    if len(fa) == len(fb):
        return 0
    return -1 if len(fa) < len(fb) else 1


def sort_key(seq: RawSequence) -> FlatSequence:
    """Sort key realising the comparative order: the flattened pair list.

    ``sort_key(a) < sort_key(b)`` iff ``compare(a, b) < 0``; the tests
    verify the equivalence exhaustively on random sequences.
    """
    return flatten(seq)


def seq_min(*seqs: RawSequence) -> RawSequence:
    """The minimum of the given sequences under the comparative order."""
    if not seqs:
        raise ValueError("seq_min requires at least one sequence")
    return min(seqs, key=flatten)


def seq_max(*seqs: RawSequence) -> RawSequence:
    """The maximum of the given sequences under the comparative order."""
    if not seqs:
        raise ValueError("seq_max requires at least one sequence")
    return max(seqs, key=flatten)
