"""Frequent k-sequence discovery by direct sequence comparison
(system S7; Section 3.2, Figure 4, Lemmas 2.1/2.2, Example 3.5).

Given the members of a partition and the ascending list of frequent
(k-1)-sequences sharing the partition prefix, :func:`discover_frequent_k`
finds every frequent k-sequence *without computing the support count of
any non-frequent sequence*:

* build the k-sorted database (Apriori-KMS per member);
* while it holds at least delta entries, compare the candidate k-sequence
  ``alpha_1`` (first position) with the condition k-sequence
  ``alpha_delta`` (delta-th position);
* equal      -> ``alpha_1`` is frequent (Lemma 2.1) with support equal to
  its group size; its group advances past ``alpha_delta`` (strict bound);
* different  -> every k-sequence in [alpha_1, alpha_delta) is non-frequent
  (Lemma 2.2); all entries below ``alpha_delta`` advance to at least
  ``alpha_delta`` (non-strict bound);
* entries whose conditional family is exhausted leave the database.

With ``bilevel=True`` (the configuration the paper benchmarks), each
frequent ``alpha_1``'s group is treated as a *virtual partition*: a
counting array accumulates the supports of its (k+1)-extensions during the
same pass, so lengths k and k+1 are produced by one discovery call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.counting import CountingArray
from repro.core.kminimum import CkmsQuery, SortedFrequentList, apriori_ckms_entry
from repro.core.sequence import RawSequence, unflatten
from repro.core.sorted_db import KSortedDatabase, SortedEntry
from repro.obs import active


@dataclass(slots=True)
class DiscoveryResult:
    """Output of one frequent k-sequence discovery pass."""

    frequent_k: dict[RawSequence, int] = field(default_factory=dict)
    #: populated only when bilevel counting was on
    frequent_k_plus_1: dict[RawSequence, int] = field(default_factory=dict)
    #: DISC loop iterations (comparisons of alpha_1 with alpha_delta)
    comparisons: int = 0


def discover_frequent_k(
    members: Iterable[tuple[int, RawSequence]],
    flist: SortedFrequentList,
    delta: int,
    bilevel: bool = False,
    backend: str = "table",
    k: int | None = None,
) -> DiscoveryResult:
    """Run the frequent k-sequence discovery procedure (Figure 4).

    *members* are ``(cid, customer_sequence)`` pairs of one partition;
    *flist* is the ascending list of frequent (k-1)-sequences with the
    partition prefix; *delta* is the minimum support count; *backend*
    selects the k-sorted-database index (see
    :data:`repro.core.sorted_db.BACKENDS`).  *k* is informational only —
    it labels this pass's observability metrics so per-length counters
    reconcile against the result's length histogram.
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    result = DiscoveryResult()
    if not len(flist):
        return result
    # Metric handles are fetched once per pass: with observation off these
    # are shared no-op singletons and the loop below allocates nothing.
    metrics = active().metrics
    labels = {} if k is None else {"k": k}
    lemma1_hits = metrics.counter("disc.lemma1_frequent", **labels)
    lemma2_prunes = metrics.counter("disc.lemma2_prunes", **labels)
    pruned_width = metrics.histogram("disc.pruned_width", **labels)
    ckms_calls = metrics.counter("disc.ckms_calls", **labels)
    sdb = KSortedDatabase(members, flist, backend=backend)
    tree = sdb._tree
    while len(tree) >= delta:
        result.comparisons += 1
        key_1, bucket = tree.min_bucket()
        key_delta = tree.key_at_rank(delta)
        if key_1 == key_delta:
            # Lemma 2.1: alpha_1 is frequent; its group is exactly its
            # supporter set, so the group size is the exact support count.
            alpha_1 = unflatten(key_1)
            group = sdb.pop_candidate_group()
            result.frequent_k[alpha_1] = len(group)
            lemma1_hits.add(1)
            if bilevel:
                _count_virtual_partition(alpha_1, group, delta, result)
            _advance(sdb, group, alpha_1, strict=True)
        else:
            # Lemma 2.2: nothing in [alpha_1, alpha_delta) can be frequent.
            group = sdb.pop_below(key_delta)
            lemma2_prunes.add(1)
            pruned_width.record(len(group))
            _advance(sdb, group, unflatten(key_delta), strict=False)
        ckms_calls.add(len(group))
    metrics.counter("disc.comparisons", **labels).add(result.comparisons)
    if bilevel and result.frequent_k_plus_1:
        bilevel_labels = {} if k is None else {"k": k + 1}
        metrics.counter("counting.frequent", **bilevel_labels).add(
            len(result.frequent_k_plus_1)
        )
    return result


def _count_virtual_partition(
    alpha_1: RawSequence,
    group: list[SortedEntry],
    delta: int,
    result: DiscoveryResult,
) -> None:
    """Bi-level counting over the virtual partition of a frequent alpha_1."""
    array = CountingArray(alpha_1)
    for entry in group:
        array.observe(entry.cid, entry.seq)
    for pattern, count in array.frequent(delta):
        result.frequent_k_plus_1[pattern] = count


def _advance(
    sdb: KSortedDatabase,
    group: list[SortedEntry],
    alpha_delta: RawSequence,
    strict: bool,
) -> None:
    """Move each entry to its conditional k-minimum subsequence.

    Entries with no conditional k-minimum subsequence leave the database
    (Figure 4, note under Step 2).
    """
    flist = sdb.flist
    query = CkmsQuery(flist, alpha_delta, strict)
    for entry in group:
        advanced = apriori_ckms_entry(
            entry.seq, flist, entry.pointer, query, cache=entry.cache
        )
        if advanced is None:
            continue
        entry.key, entry.pointer = advanced
        sdb.add(entry)
