"""The Dynamic DISC-all algorithm (system S11; Appendix, Section 4.3).

Static DISC-all always hands over from database partitioning to the DISC
strategy after the second level.  Section 4.2 observes that partitioning
pays off only while a partition's non-reduction rate (NRR) stays low; the
dynamic variant therefore keeps partitioning recursively while
``NRR < gamma`` and switches to DISC as soon as the NRR reaches the
threshold, per partition.

The recursion generalises the two-level scheme: a partition at level j is
keyed by a j-sequence; one counting-array scan finds the frequent
(j+1)-sequences extending the key; their supports give the partition's
NRR (each frequent (j+1)-sequence keys a child partition whose size is
its support count — the estimate the paper uses in eq. (2)).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.counting import CountingArray, count_frequent_items
from repro.core.disc import discover_frequent_k
from repro.core.discall import DiscAllOutput, DiscAllStats
from repro.core.kminimum import SortedFrequentList
from repro.core.partition import (
    Member,
    iterate_extension_partitions,
    reduce_sequence,
)
from repro.core.sequence import RawSequence, flatten, seq_length
from repro.obs import activated, active, stats_observation


#: Decision callback: (level, nrr) -> True to partition one level deeper,
#: False to let the DISC strategy finish the partition.
Decider = Callable[[int, float], bool]


def dynamic_disc_all(
    members: Iterable[Member],
    delta: int,
    gamma: float = 0.5,
    bilevel: bool = True,
    reduce: bool = True,
    backend: str = "table",
) -> DiscAllOutput:
    """Mine every frequent sequence with the Dynamic DISC-all algorithm.

    *gamma* is the maximum-NRR threshold: a partition whose NRR is below
    it is partitioned one level deeper, otherwise the DISC strategy mines
    all its remaining frequent sequences.  With ``gamma = 0`` the
    algorithm degenerates to DISC everywhere after the first level is
    unavoidable; with ``gamma = 1`` it partitions as deep as possible.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    return _drive(
        members, delta,
        decide=lambda _level, nrr: nrr < gamma,
        bilevel=bilevel, reduce=reduce, backend=backend,
    )


def multilevel_disc_all(
    members: Iterable[Member],
    delta: int,
    levels: int = 2,
    bilevel: bool = True,
    reduce: bool = True,
    backend: str = "table",
) -> DiscAllOutput:
    """DISC-all with a fixed number of static partitioning levels.

    Section 3.1 notes the number of partitioning levels "should be
    adaptive"; the paper presents (and benchmarks) the two-level scheme.
    This variant partitions down to exactly *levels* levels regardless of
    NRR and then hands over to DISC — ``levels=2`` is an independent
    re-derivation of DISC-all through the generalised recursion, and the
    partition-depth ablation sweeps *levels*.
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    return _drive(
        members, delta,
        decide=lambda level, _nrr: level < levels,
        bilevel=bilevel, reduce=reduce, backend=backend,
    )


def _drive(
    members: Iterable[Member],
    delta: int,
    decide: Decider,
    bilevel: bool,
    reduce: bool,
    backend: str,
) -> DiscAllOutput:
    """Shared recursion driver for the adaptive and fixed-depth variants."""
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    obs = active()
    if not obs.enabled:
        # Back the returned stats with a private observation materialising
        # only the DiscAllStats counters (same convention as disc_all).
        with activated(stats_observation(DiscAllStats.COUNTERS.values())):
            return _drive(members, delta, decide, bilevel, reduce, backend)
    members = list(members)
    out = DiscAllOutput()
    baseline = DiscAllStats.baseline(obs.metrics)
    frequent_items = frozenset(count_frequent_items(members, delta))
    _mine_partition(
        key=(),
        group=members,
        delta=delta,
        decide=decide,
        bilevel=bilevel,
        reduce=reduce,
        backend=backend,
        frequent_items=frequent_items,
        out=out,
    )
    out.stats = DiscAllStats.since(obs.metrics, baseline)
    return out


def _mine_partition(
    key: RawSequence,
    group: list[Member],
    delta: int,
    decide: Decider,
    bilevel: bool,
    reduce: bool,
    backend: str,
    frequent_items: frozenset[int],
    out: DiscAllOutput,
) -> None:
    """Dynamic DISC-all on one <key>-partition (Appendix pseudo-code)."""
    if len(group) < delta:
        return
    level = seq_length(key)
    obs = active()
    metrics = obs.metrics

    # Step 1: one scan finds the frequent (k+1)-sequences with prefix key.
    array = CountingArray(key)
    array.observe_all(group)
    children = dict(array.frequent(delta))
    if not children:
        return
    metrics.counter("counting.frequent", k=level + 1).add(len(children))
    for pattern, count in children.items():
        out.patterns[pattern] = count

    # Step 2: NRR of this partition (child sizes = child supports).
    nrr = sum(children.values()) / len(children) / len(group)

    if decide(level, nrr):
        # Step 3: partition one level deeper and recurse.
        if level == 0:
            metrics.counter("discall.first_level_mined").add(len(children))
        elif level == 1:
            metrics.counter("discall.second_level_mined").add(len(children))
        sub_members = _prepare_members(key, group, children, frequent_items, reduce)
        min_length = level + 2
        eligible = [
            (cid, seq) for cid, seq in sub_members if seq_length(seq) >= min_length
        ]
        child_pairs = {flatten(child)[-1] for child in children}
        for child_key, child_group in iterate_extension_partitions(
            eligible, key, child_pairs
        ):
            _mine_partition(
                child_key, child_group, delta, decide, bilevel, reduce,
                backend, frequent_items, out,
            )
    else:
        # Step 4: DISC takes over for every deeper length.
        rounds = metrics.counter("disc.rounds")
        frequent_k = children
        k = level + 2
        while frequent_k:
            flist = SortedFrequentList(frequent_k)
            eligible = [(cid, seq) for cid, seq in group if seq_length(seq) >= k]
            if len(eligible) < delta:
                break
            rounds.add(1)
            with obs.tracer.span("discover_k", k=k, eligible=len(eligible)):
                result = discover_frequent_k(
                    eligible, flist, delta, bilevel=bilevel, backend=backend, k=k
                )
            for pattern, count in result.frequent_k.items():
                out.patterns[pattern] = count
            if bilevel:
                for pattern, count in result.frequent_k_plus_1.items():
                    out.patterns[pattern] = count
                frequent_k = result.frequent_k_plus_1
                k += 2
            else:
                frequent_k = result.frequent_k
                k += 1


def _prepare_members(
    key: RawSequence,
    group: list[Member],
    children: dict[RawSequence, int],
    frequent_items: frozenset[int],
    reduce: bool,
) -> list[Member]:
    """Reduce members before descending (only meaningful at level 1)."""
    if not reduce or seq_length(key) != 1:
        return group
    lam = key[0][0]
    pairs = {flatten(child)[-1] for child in children}
    reduced: list[Member] = []
    for cid, seq in group:
        shorter = reduce_sequence(seq, lam, frequent_items, pairs)
        if shorter is not None:
            reduced.append((cid, shorter))
    active().metrics.counter("discall.reduced_members").add(len(reduced))
    return reduced
