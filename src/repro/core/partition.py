"""Multi-level partitioning (system S8; Section 3.1, Figure 2 steps 1-2.2).

First-level partitions group customer sequences by their *minimum
1-sequence* (smallest item); second-level partitions group the *reduced*
sequences of a first-level partition by their 2-minimum sequence anchored
at the partition item.  Partitions are processed in ascending key order
and, once processed, every member is reassigned by its *next* minimum
(1- or 2-) subsequence — so when a partition's turn comes it holds exactly
the sequences that contain its key, making the one-scan support counts of
the counting arrays exact.

The *reduction* step (customer sequence reducing, Example 3.2 / Table 7)
removes item occurrences to the right of the minimum point that cannot
take part in any frequent sequence starting with the partition item,
according to the paper's two conditions; items left of the minimum point
are kept untouched (they are never scanned), matching Table 7 literally.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.core.kminimum import ExtensionPair
from repro.core.sequence import RawSequence, seq_length
from repro.obs import active

#: A partition member: (customer id, customer sequence).
Member = tuple[int, RawSequence]


def minimum_item(seq: RawSequence) -> int:
    """The minimum 1-sequence of *seq* (its smallest item)."""
    return min(item for txn in seq for item in txn)


def next_minimum_item(seq: RawSequence, current: int) -> int | None:
    """The next minimum 1-sequence: smallest item > *current*, if any."""
    candidates = [item for txn in seq for item in txn if item > current]
    return min(candidates) if candidates else None


def minimum_point(seq: RawSequence, item: int) -> int:
    """0-based index of the first transaction containing *item*.

    Raises ValueError when the item is absent.
    """
    for index, txn in enumerate(seq):
        if item in txn:
            return index
    raise ValueError(f"item {item} does not occur in {seq!r}")


def first_level_partitions(
    members: Iterable[Member],
) -> dict[int, list[Member]]:
    """Step 1(b): group customer sequences by their minimum 1-sequence."""
    partitions: dict[int, list[Member]] = {}
    for cid, seq in members:
        if not seq:
            continue
        partitions.setdefault(minimum_item(seq), []).append((cid, seq))
    return partitions


def reduce_sequence(
    seq: RawSequence,
    lam: int,
    frequent_items: frozenset[int] | set[int],
    frequent_pairs: frozenset[ExtensionPair] | set[ExtensionPair],
) -> RawSequence | None:
    """Customer sequence reducing for the <(lam)>-partition (Section 3.1).

    *frequent_pairs* holds the frequent 2-sequences with first item *lam*
    as extension pairs: ``(x, 1)`` for ``<(lam x)>`` and ``(x, 2)`` for
    ``<(lam)(x)>``.  Occurrences of *lam* and items left of the minimum
    point survive; every other occurrence is dropped when the 2-sequences
    it could realise are all non-frequent, or when its item is not a
    frequent 1-sequence.  Returns ``None`` when the reduced sequence is
    too short to host any 3-sequence.
    """
    t_min = minimum_point(seq, lam)
    reduced: list[tuple[int, ...]] = []
    for t, txn in enumerate(seq):
        if t < t_min:
            kept = tuple(item for item in txn if item in frequent_items)
        else:
            has_lam = lam in txn
            kept_items = []
            for item in txn:
                if item == lam:
                    kept_items.append(item)
                    continue
                if item not in frequent_items:
                    continue
                if t == t_min:
                    # Right of the minimum point inside its own transaction:
                    # only the itemset form <(lam item)> is realisable.
                    keep = (item, 1) in frequent_pairs
                elif has_lam:
                    keep = (item, 1) in frequent_pairs or (item, 2) in frequent_pairs
                else:
                    keep = (item, 2) in frequent_pairs
                if keep:
                    kept_items.append(item)
            kept = tuple(kept_items)
        if kept:
            reduced.append(kept)
    result = tuple(reduced)
    if seq_length(result) < 3:
        return None
    return result


class PartitionQueue:
    """Ascending-key partition scheduler with reassignment support.

    Keys must be totally ordered; reassignments may only target keys
    strictly greater than the one being processed (the paper's "next
    minimum subsequence"), which the queue asserts.
    """

    def __init__(self) -> None:
        self._partitions: dict = {}
        self._heap: list = []
        self._current = None

    def add(self, key, member: Member) -> None:
        """Add *member* to the partition keyed *key*."""
        if self._current is not None and not (self._current < key):
            raise ValueError(
                f"reassignment key {key!r} must exceed current {self._current!r}"
            )
        bucket = self._partitions.get(key)
        if bucket is None:
            self._partitions[key] = [member]
            heapq.heappush(self._heap, key)
        else:
            bucket.append(member)

    def __bool__(self) -> bool:
        return bool(self._partitions)

    def __iter__(self) -> Iterator[tuple[object, list[Member]]]:
        """Yield (key, members) in ascending key order, allowing adds."""
        while self._heap:
            key = heapq.heappop(self._heap)
            members = self._partitions.pop(key, None)
            if members is None:
                continue  # key re-pushed then consumed; skip stale entry
            self._current = key
            yield key, members
            self._current = None


def iterate_first_level(
    members: Iterable[Member],
) -> Iterator[tuple[int, list[Member]]]:
    """Process first-level partitions in order, reassigning after each.

    Yields ``(lam, partition_members)`` for every first-level key in
    ascending order; after the caller finishes with a partition the
    members are reassigned by their next minimum 1-sequence (Step 2.2),
    dropping sequences with no further items.
    """
    metrics = active().metrics
    visited = metrics.counter("partition.first_level")
    sizes = metrics.histogram("partition.first_level_size")
    queue = PartitionQueue()
    partitions = first_level_partitions(members)
    for lam in sorted(partitions, key=int):
        group = partitions[lam]
        for member in group:
            queue.add(lam, member)
    for lam, group in queue:
        visited.add(1)
        sizes.record(len(group))
        yield lam, group
        for cid, seq in group:
            nxt = next_minimum_item(seq, lam)
            if nxt is not None:
                queue.add(nxt, (cid, seq))


def iterate_extension_partitions(
    members: Iterable[Member],
    prefix: RawSequence,
    frequent_pairs: set[ExtensionPair] | frozenset[ExtensionPair] | None = None,
) -> Iterator[tuple[RawSequence, list[Member]]]:
    """Process the child partitions of a <prefix>-partition in order.

    Child partitions are keyed by the extension pairs of *prefix* (pair
    order equals the comparative order of the extended sequences because
    the flattened prefix positions are shared).  Each member's extension
    pairs are enumerated once, so advancing a member to its next child
    partition is a pointer increment, not a rescan.  When its turn comes
    a child partition holds exactly the members containing its key.

    *frequent_pairs* restricts the visit to the given keys: a frequent
    pattern extending child key P needs support(P) >= delta, so child
    partitions with infrequent keys can never produce patterns and are
    skipped wholesale.
    """
    from repro.core.kminimum import build_extension, extension_pairs

    metrics = active().metrics
    visited = metrics.counter("partition.extension")
    sizes = metrics.histogram("partition.extension_size")
    queue = PartitionQueue()
    #: member -> (sorted extension pairs, index of the current one)
    cursors: list[list] = []
    for cid, seq in members:
        pairs = extension_pairs(seq, prefix)
        if frequent_pairs is not None:
            pairs &= frequent_pairs
        if not pairs:
            continue
        # repro: allow[DISC002] — extension pairs are flat (item, no) keys;
        # their natural order *is* the comparative order (shared prefix)
        ordered = sorted(pairs)
        cursor = [cid, seq, ordered, 0]
        cursors.append(cursor)
        queue.add(ordered[0], cursor)
    for pair, group in queue:
        visited.add(1)
        sizes.record(len(group))
        yield build_extension(prefix, pair), [(c[0], c[1]) for c in group]
        for cursor in group:
            cursor[3] += 1
            ordered = cursor[2]
            if cursor[3] < len(ordered):
                queue.add(ordered[cursor[3]], cursor)


def iterate_second_level(
    reduced_members: Iterable[Member],
    lam: int,
    frequent_pairs: set[ExtensionPair] | None = None,
) -> Iterator[tuple[RawSequence, list[Member]]]:
    """Process second-level partitions of the <(lam)>-partition in order.

    *reduced_members* are the reduced customer sequences.  Keys are
    2-sequences with first item *lam*; after a partition is processed its
    members move to their next 2-minimum key (Step 2.1.3.3).
    """
    yield from iterate_extension_partitions(
        reduced_members, ((lam,),), frequent_pairs
    )
