"""Array-backed sorted key table — the fast k-sorted-database backend.

Functionally equivalent to :class:`~repro.core.avl.LocativeAVLTree` for
the operations the DISC loop needs (insert, min bucket, rank select, pop
min, pop below a bound), but backed by a sorted Python list of keys plus
a bucket dict.  Insertion is O(n) in theory, yet the shifts are C-level
``memmove`` over a list that holds one slot per *distinct* key — in
CPython this beats a pure-Python balanced tree by a wide margin at every
scale the reproduction runs.  The locative AVL tree remains available as
a backend for fidelity to the paper and for the backend ablation
benchmark.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Generic, Iterator, TypeVar

from repro.core.comparable import Comparable

K = TypeVar("K", bound=Comparable)
V = TypeVar("V")


class SortedKeyTable(Generic[K, V]):
    """Sorted multimap with per-key buckets and entry-rank selection."""

    __slots__ = ("_keys", "_buckets", "_size")

    def __init__(self) -> None:
        self._keys: list[K] = []
        self._buckets: dict[K, list[V]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def num_keys(self) -> int:
        return len(self._keys)

    def insert(self, key: K, value: V) -> None:
        """Insert *value* under *key*."""
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [value]
            insort(self._keys, key)
        else:
            bucket.append(value)
        self._size += 1

    def min_key(self) -> K:
        """Smallest key; raises KeyError when empty."""
        if not self._keys:
            raise KeyError("table is empty")
        return self._keys[0]

    def min_bucket(self) -> tuple[K, list[V]]:
        """Smallest key with its bucket (not removed)."""
        key = self.min_key()
        return key, self._buckets[key]

    def key_at_rank(self, rank: int) -> K:
        """Key holding the *rank*-th entry (1-based) in sorted order."""
        if rank < 1 or rank > self._size:
            raise IndexError(f"rank {rank} out of range 1..{self._size}")
        seen = 0
        for key in self._keys:
            seen += len(self._buckets[key])
            if seen >= rank:
                return key
        raise AssertionError("rank walk fell off the table")

    def get(self, key: K) -> list[V] | None:
        """Bucket stored under *key*, or None."""
        return self._buckets.get(key)

    def pop_min_bucket(self) -> tuple[K, list[V]]:
        """Remove and return the smallest key with its whole bucket."""
        if not self._keys:
            raise KeyError("table is empty")
        key = self._keys.pop(0)
        bucket = self._buckets.pop(key)
        self._size -= len(bucket)
        return key, bucket

    def pop_while_less(self, bound: K) -> list[tuple[K, list[V]]]:
        """Remove every bucket with key < *bound*; returns them ascending."""
        cut = bisect_left(self._keys, bound)
        removed = []
        for key in self._keys[:cut]:
            bucket = self._buckets.pop(key)
            self._size -= len(bucket)
            removed.append((key, bucket))
        del self._keys[:cut]
        return removed

    def keys(self) -> Iterator[K]:
        """Distinct keys in ascending order."""
        return iter(self._keys)

    def items(self) -> Iterator[tuple[K, list[V]]]:
        """(key, bucket) pairs in ascending key order."""
        for key in self._keys:
            yield key, self._buckets[key]

    def entries(self) -> Iterator[V]:
        """Every entry in ascending key order (bucket order within a key)."""
        for key in self._keys:
            yield from self._buckets[key]

    def check_invariants(self) -> None:
        """Assert ordering and size bookkeeping (test aid)."""
        for a, b in zip(self._keys, self._keys[1:]):
            if not a < b:
                raise AssertionError(f"keys out of order: {a!r} >= {b!r}")
        if set(self._keys) != set(self._buckets):
            raise AssertionError("keys and buckets disagree")
        if sum(len(b) for b in self._buckets.values()) != self._size:
            raise AssertionError("stale size")
        if any(not b for b in self._buckets.values()):
            raise AssertionError("empty bucket")
