"""Mining checkpoints: resumable snapshots of a levelwise DISC run.

DISC is levelwise — first-level partitions, then one discovery round per
pattern length ``k`` — and the miners already pause at every boundary to
poll the cancel token (:mod:`repro.core.cancel`).  This module turns
those same boundaries into snapshot points: a
:class:`CheckpointRecorder` rides along with a run and, at each
boundary, advances a watermark over the output pattern dict; a
:class:`MiningCheckpoint` captured from the watermark holds exactly the
patterns of completed work plus a fingerprint of the run that produced
it.

The watermark trick is what keeps recording cheap and resume exact.
Every pattern is written exactly once per run (first-level partitions
are disjoint by minimum item; within a partition, per-k rounds write
disjoint keys), and every written support value is already final — so
"completed work" is simply the first *N* insertion-ordered entries of
the output dict, and a boundary costs one ``len()``.  Resuming seeds the
output with those entries, skips completed partitions outright, and
re-runs the interrupted partition from scratch; the rerun rewrites
identical values, so a resumed run's final pattern set is byte-identical
to an uninterrupted one.

A checkpoint only fits the run it came from.  Its
:class:`CheckpointIdentity` — database digest, delta, algorithm, options
fingerprint — is validated on resume and any mismatch raises
:class:`~repro.exceptions.CheckpointMismatchError`: resuming across a
changed database or threshold would silently produce wrong patterns.

Like the cancel token, the active recorder is ambient state scoped with
a context manager (:func:`recording_scope`); the default
:data:`NOOP_RECORDER` makes uninstrumented runs free.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterator, Mapping

from repro.core.sequence import RawSequence, canonical
from repro.exceptions import CheckpointMismatchError, DataFormatError

#: Serialization format marker and version for checkpoint payloads.
CHECKPOINT_FORMAT = "repro.mining-checkpoint"
CHECKPOINT_VERSION = 1


def options_fingerprint(options: Mapping[str, Any]) -> str:
    """A stable digest of miner options, for checkpoint identity.

    Options are JSON-serialized with sorted keys so dict ordering and
    insertion history cannot change the fingerprint.
    """
    payload = json.dumps(
        # repro: allow[DISC002] — option names are strings, not sequences
        {str(key): options[key] for key in sorted(options)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class CheckpointIdentity:
    """The fingerprint tying a checkpoint to one exact run configuration."""

    database_digest: str
    delta: int
    algorithm: str
    options_fingerprint: str

    def mismatch(self, other: "CheckpointIdentity") -> str | None:
        """Human-readable description of the first differing field, if any."""
        if self.database_digest != other.database_digest:
            return (
                f"database digest {other.database_digest[:12]}… does not "
                f"match checkpoint digest {self.database_digest[:12]}…"
            )
        if self.delta != other.delta:
            return f"delta {other.delta} does not match checkpoint delta {self.delta}"
        if self.algorithm != other.algorithm:
            return (
                f"algorithm {other.algorithm!r} does not match checkpoint "
                f"algorithm {self.algorithm!r}"
            )
        if self.options_fingerprint != other.options_fingerprint:
            return "miner options do not match the checkpoint's options"
        return None


def _pattern_sort_key(entry: tuple[RawSequence, int]) -> RawSequence:
    return entry[0]


@dataclass(frozen=True, slots=True)
class MiningCheckpoint:
    """A resumable snapshot of a partially-completed mining run.

    ``patterns`` holds every frequent sequence discovered by *completed*
    boundaries only — each with its final support count.
    ``completed_partitions`` lists the first-level minimum items whose
    partitions finished entirely; ``completed_k`` is the highest pattern
    length whose round completed inside the partition that was running
    when the snapshot was taken (0 when between partitions).
    """

    identity: CheckpointIdentity
    completed_partitions: tuple[int, ...] = ()
    completed_k: int = 0
    patterns: Mapping[RawSequence, int] = field(default_factory=dict)

    def matches(self, identity: CheckpointIdentity) -> bool:
        """Whether this checkpoint fits a run with *identity*."""
        return self.identity.mismatch(identity) is None

    def validate_for(self, identity: CheckpointIdentity) -> None:
        """Raise :class:`CheckpointMismatchError` unless identities match."""
        reason = self.identity.mismatch(identity)
        if reason is not None:
            raise CheckpointMismatchError(f"cannot resume: {reason}")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable payload (see :data:`CHECKPOINT_FORMAT`)."""
        patterns = sorted(self.patterns.items(), key=_pattern_sort_key)
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "database_digest": self.identity.database_digest,
            "delta": self.identity.delta,
            "algorithm": self.identity.algorithm,
            "options_fingerprint": self.identity.options_fingerprint,
            "completed_partitions": list(self.completed_partitions),
            "completed_k": self.completed_k,
            "patterns": [
                [[list(itemset) for itemset in seq], count]
                for seq, count in patterns
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MiningCheckpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping):
            raise DataFormatError("checkpoint payload must be an object")
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise DataFormatError(
                f"not a mining checkpoint: format={payload.get('format')!r}"
            )
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise DataFormatError(
                f"unsupported checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        try:
            identity = CheckpointIdentity(
                database_digest=str(payload["database_digest"]),
                delta=int(payload["delta"]),
                algorithm=str(payload["algorithm"]),
                options_fingerprint=str(payload["options_fingerprint"]),
            )
            completed_partitions = tuple(
                int(item) for item in payload["completed_partitions"]
            )
            completed_k = int(payload["completed_k"])
            patterns: dict[RawSequence, int] = {}
            for entry in payload["patterns"]:
                raw_seq, count = entry
                patterns[canonical(raw_seq)] = int(count)
        except (KeyError, TypeError, ValueError) as exc:
            raise DataFormatError(f"malformed checkpoint payload: {exc}") from exc
        return cls(
            identity=identity,
            completed_partitions=completed_partitions,
            completed_k=completed_k,
            patterns=patterns,
        )

    def to_json(self) -> str:
        """Serialize to a compact JSON string."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "MiningCheckpoint":
        """Parse a checkpoint from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataFormatError(f"checkpoint is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


#: Callback fed freshly captured checkpoints at every completed boundary.
CheckpointSink = Callable[[MiningCheckpoint], None]


class CheckpointRecorder:
    """Rides along with one mining run, snapshotting at round boundaries.

    The miner calls :meth:`attach` once its output dict exists (seeding
    any resumed patterns), :meth:`should_skip` before each first-level
    partition, and :meth:`partition_done` / :meth:`round_done` at the
    existing cancel-checkpoint boundaries.  :meth:`capture` builds a
    :class:`MiningCheckpoint` from the watermark prefix of the output.

    Not thread-safe by design: one recorder belongs to one run, and the
    parallel coordinator only records on the coordinating thread.
    """

    def __init__(
        self,
        resume_from: MiningCheckpoint | None = None,
        sink: CheckpointSink | None = None,
    ) -> None:
        self._resume = resume_from
        self._sink = sink
        self._patterns: dict[RawSequence, int] | None = None
        self._watermark = 0
        self._completed_partitions: list[int] = []
        self._completed_k = 0
        self._sink_identity: CheckpointIdentity | None = None
        if resume_from is not None:
            self._completed_partitions.extend(resume_from.completed_partitions)

    @property
    def attached(self) -> bool:
        """Whether a run has attached its output dict yet."""
        return self._patterns is not None

    @property
    def completed_k(self) -> int:
        """Highest completed round length in the current partition."""
        return self._completed_k

    @property
    def completed_partitions(self) -> tuple[int, ...]:
        """First-level minimum items whose partitions completed."""
        return tuple(self._completed_partitions)

    def attach(self, patterns: dict[RawSequence, int]) -> None:
        """Bind the run's output dict; seeds resumed patterns into it.

        Must be called before any boundary notification, after the miner
        has written its 1-sequences (resumed patterns are inserted
        first, so the watermark prefix stays a pure insertion-order
        prefix).
        """
        if self._resume is not None and self._resume.patterns:
            seeded = dict(self._resume.patterns)
            seeded.update(patterns)
            patterns.clear()
            patterns.update(seeded)
        self._patterns = patterns
        self._watermark = len(patterns)

    def should_skip(self, minimum_item: int) -> bool:
        """Whether the first-level partition of *minimum_item* is done."""
        return minimum_item in self._completed_partitions

    def round_done(self, k: int) -> None:
        """Mark the per-``k`` discovery round complete; advance watermark."""
        if self._patterns is None:
            return
        self._watermark = len(self._patterns)
        self._completed_k = k
        self._emit()

    def partition_done(self, minimum_item: int) -> None:
        """Mark a first-level partition complete; advance watermark."""
        if self._patterns is None:
            return
        self._watermark = len(self._patterns)
        if minimum_item not in self._completed_partitions:
            self._completed_partitions.append(minimum_item)
        self._completed_k = 0
        self._emit()

    def capture(self, identity: CheckpointIdentity) -> MiningCheckpoint:
        """Snapshot completed work as a :class:`MiningCheckpoint`."""
        patterns: dict[RawSequence, int] = {}
        if self._patterns is not None:
            patterns = dict(islice(self._patterns.items(), self._watermark))
        return MiningCheckpoint(
            identity=identity,
            completed_partitions=tuple(self._completed_partitions),
            completed_k=self._completed_k,
            patterns=patterns,
        )

    def _emit(self) -> None:
        if self._sink is None:
            return
        identity = self._sink_identity
        if identity is not None:
            self._sink(self.capture(identity))

    def bind_identity(self, identity: CheckpointIdentity) -> None:
        """Set the identity stamped onto sink-emitted checkpoints."""
        self._sink_identity = identity


class _NoopRecorder(CheckpointRecorder):
    """Shared default recorder: every notification is a cheap no-op."""

    def __init__(self) -> None:
        super().__init__()

    def attach(self, patterns: dict[RawSequence, int]) -> None:
        pass

    def should_skip(self, minimum_item: int) -> bool:
        return False

    def round_done(self, k: int) -> None:
        pass

    def partition_done(self, minimum_item: int) -> None:
        pass


#: Shared inert recorder used when no recording scope is active.
NOOP_RECORDER = _NoopRecorder()

_ACTIVE_RECORDER: ContextVar[CheckpointRecorder] = ContextVar(
    "repro_checkpoint_recorder", default=NOOP_RECORDER
)


def active_recorder() -> CheckpointRecorder:
    """The recorder for the current context (the no-op one by default)."""
    return _ACTIVE_RECORDER.get()


@contextmanager
def recording_scope(recorder: CheckpointRecorder) -> Iterator[CheckpointRecorder]:
    """Make *recorder* the ambient recorder within a ``with`` block."""
    handle = _ACTIVE_RECORDER.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE_RECORDER.reset(handle)
