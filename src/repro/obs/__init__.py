"""Observability layer: metrics, tracing, run reports (system S25).

The DISC strategy's value proposition is *work avoided* — sequences
proven frequent (Lemma 2.1) or pruned in whole ``[alpha_1, alpha_delta)``
intervals (Lemma 2.2) without support counting.  This package makes that
evidence first-class: a metrics registry and a span tracer that the
mining stack reports into, frozen per run into a :class:`RunReport`.

Design rule: the default observation is a shared no-op, so instrumented
hot paths fetch metric handles once, call them unconditionally, and pay
nothing beyond a method call when observation is off.  Enable collection
with ``mine(..., observe=True)``, the CLI flags ``repro mine --trace /
--metrics-json``, or explicitly::

    from repro import obs

    with obs.activated(obs.observation()) as ob:
        disc_all(members, delta)
    print(ob.report().render())
"""

from repro.obs.context import (
    NOOP_OBSERVATION,
    Observation,
    activated,
    active,
    observation,
    stats_observation,
)
from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_VERSION,
    EVENT_VOCABULARY,
    LEVELS,
    NOOP_EVENT_LOG,
    EventLog,
    NoopEventLog,
    event_log,
    read_events,
    validate_event,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    FilteredMetricsRegistry,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
    render_name,
)
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.report import REPORT_FORMAT, REPORT_VERSION, RunReport
from repro.obs.trace_context import TraceContext, current_trace, trace_scope
from repro.obs.tracing import NoopTracer, SpanRecord, Tracer

__all__ = [
    "NOOP_OBSERVATION",
    "Observation",
    "activated",
    "active",
    "observation",
    "stats_observation",
    "EVENT_SCHEMA",
    "EVENT_VERSION",
    "EVENT_VOCABULARY",
    "LEVELS",
    "NOOP_EVENT_LOG",
    "EventLog",
    "NoopEventLog",
    "event_log",
    "read_events",
    "validate_event",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "TraceContext",
    "current_trace",
    "trace_scope",
    "DEFAULT_BUCKETS",
    "Counter",
    "FilteredMetricsRegistry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "render_name",
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "RunReport",
    "NoopTracer",
    "SpanRecord",
    "Tracer",
]
