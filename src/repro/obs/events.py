"""Structured, schema-versioned event log (system S25).

Where :class:`~repro.obs.report.RunReport` freezes one run's evidence
after the fact, the event log narrates the *lifecycle* as it happens:
leveled JSONL records (``job.accepted``, ``job.checkpoint``,
``fault.injected``, ...) correlated by trace id and job id, so a job's
story can be replayed in order across queueing, retries, a crash and
the recovered resume.

Discipline (same as the metrics layer): the default sink is a shared
no-op singleton and the module-level :func:`emit` returns immediately
when nothing is installed, so the uninstrumented path stays free — no
formatting, no I/O, no record dict escapes.  The active log is a
process-wide module global (like :mod:`repro.faults`): scheduler worker
threads are started before any request arrives, so a context-variable
would not propagate into them.  Install with ``repro serve --events`` /
``repro mine --events`` or :func:`install`; tests scope installation
with the :func:`event_log` context manager.

Record shape (schema ``repro.event`` version 1)::

    {"schema": "repro.event", "version": 1, "ts": 1700000000.123,
     "level": "info", "event": "job.started",
     "trace_id": "4bf9...", "job_id": "a1b2...", "attempt": 1}

``trace_id`` is auto-filled from the ambient
:func:`~repro.obs.trace_context.current_trace` when not passed.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator, Mapping

from repro import contracts
from repro.exceptions import DataFormatError, InvalidParameterError
from repro.obs.trace_context import current_trace

#: schema identifier stamped on every event record
EVENT_SCHEMA = "repro.event"
#: bump when the record shape changes incompatibly
EVENT_VERSION = 1

#: severity levels, least to most severe
LEVELS = ("debug", "info", "warn", "error")
_LEVEL_ORDER = {name: index for index, name in enumerate(LEVELS)}

#: event vocabulary: event name -> fields required beyond the envelope.
#: Declared once in :mod:`repro.contracts` (with the optional fields the
#: static WIRE001 rule also checks); re-exported here for callers that
#: predate the manifest.
EVENT_VOCABULARY: Mapping[str, tuple[str, ...]] = contracts.EVENT_VOCABULARY


class EventLog:
    """A leveled JSONL event sink, safe to share across threads."""

    def __init__(self, target: str | Path | IO[str], min_level: str = "debug") -> None:
        if min_level not in _LEVEL_ORDER:
            raise InvalidParameterError(
                f"min_level must be one of {LEVELS}, got {min_level!r}"
            )
        self._min_level = _LEVEL_ORDER[min_level]
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            handle: IO[str] | None = Path(target).open("a", encoding="utf-8")
            self._owns_handle = True
        else:
            handle = target
            self._owns_handle = False
        self._handle = handle  # guarded-by: _lock

    def emit(
        self,
        event: str,
        *,
        level: str = "info",
        trace_id: str | None = None,
        job_id: str | None = None,
        **fields: object,
    ) -> None:
        """Append one event record (a no-op below ``min_level``)."""
        rank = _LEVEL_ORDER.get(level)
        if rank is None:
            raise InvalidParameterError(
                f"level must be one of {LEVELS}, got {level!r}"
            )
        if rank < self._min_level:
            return
        if trace_id is None:
            ambient = current_trace()
            if ambient is not None:
                trace_id = ambient.trace_id
        record: dict[str, object] = {
            "schema": EVENT_SCHEMA,
            "version": EVENT_VERSION,
            "ts": time.time(),
            "level": level,
            "event": event,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        if job_id is not None:
            record["job_id"] = job_id
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._handle is not None:
                self._handle.write(line + "\n")
                self._handle.flush()

    def close(self) -> None:
        """Flush and release the sink; later emits are dropped."""
        with self._lock:
            handle = self._handle
            self._handle = None
        if handle is not None and self._owns_handle:
            handle.close()


class NoopEventLog(EventLog):
    """Shared disabled sink: every emit returns immediately."""

    def __init__(self) -> None:
        # deliberately skip EventLog.__init__: no handle, no lock traffic
        pass

    def emit(
        self,
        event: str,
        *,
        level: str = "info",
        trace_id: str | None = None,
        job_id: str | None = None,
        **fields: object,
    ) -> None:
        return None

    def close(self) -> None:
        return None


#: the shared disabled sink — identity-compared by the fast path
NOOP_EVENT_LOG = NoopEventLog()

_ACTIVE: EventLog = NOOP_EVENT_LOG


def install(log: EventLog | None) -> None:
    """Install *log* as the process-wide sink (``None`` restores no-op)."""
    global _ACTIVE
    _ACTIVE = log if log is not None else NOOP_EVENT_LOG


def installed() -> EventLog:
    """The currently installed sink (the no-op singleton by default)."""
    return _ACTIVE


def enabled() -> bool:
    """True when a real sink is installed."""
    return _ACTIVE is not NOOP_EVENT_LOG


def emit(
    event: str,
    *,
    level: str = "info",
    trace_id: str | None = None,
    job_id: str | None = None,
    **fields: object,
) -> None:
    """Emit through the installed sink; free when nothing is installed."""
    log = _ACTIVE
    if log is NOOP_EVENT_LOG:
        return
    log.emit(event, level=level, trace_id=trace_id, job_id=job_id, **fields)


@contextmanager
def event_log(log: EventLog | None) -> Iterator[EventLog | None]:
    """Scope installation of *log* to a block (tests, CLI runs)."""
    previous = _ACTIVE
    install(log)
    try:
        yield log
    finally:
        install(previous if previous is not NOOP_EVENT_LOG else None)


def validate_event(record: object) -> list[str]:
    """Problems with one decoded event record (empty list when valid)."""
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    problems: list[str] = []
    if record.get("schema") != EVENT_SCHEMA:
        problems.append(f"schema is {record.get('schema')!r}, not {EVENT_SCHEMA!r}")
    if record.get("version") != EVENT_VERSION:
        problems.append(f"version is {record.get('version')!r}, not {EVENT_VERSION}")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        problems.append(f"ts is not a number: {ts!r}")
    level = record.get("level")
    if level not in _LEVEL_ORDER:
        problems.append(f"level {level!r} not in {LEVELS}")
    name = record.get("event")
    if not isinstance(name, str):
        problems.append(f"event name is not a string: {name!r}")
    else:
        # the manifest checks required *and* undeclared fields, so a
        # field the vocabulary never heard of fails here exactly as it
        # fails the static WIRE001 gate
        problems.extend(contracts.validate_event_fields(name, record))
    return problems


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Decode an event-log JSONL file, skipping torn/blank lines.

    Raises :class:`DataFormatError` only when the file contains no valid
    records at all but is non-empty — a sign it is not an event log.
    """
    records: list[dict[str, Any]] = []
    seen_content = False
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            seen_content = True
            try:
                decoded = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crash — forgiven, like the journal
            if isinstance(decoded, dict):
                records.append(decoded)
    if seen_content and not records:
        raise DataFormatError(f"{path} contains no decodable event records")
    return records
