"""Span-based phase tracer (system S25).

A :class:`Tracer` records *where wall-clock time goes*: every
``with tracer.span("discover_k", k=4):`` block produces a
:class:`SpanRecord` nested under the enclosing span, building the run's
phase tree (mine -> algorithm -> partition -> discover_k ...).  Spans
survive exceptions — the record is closed and stamped with the exception
type before the exception propagates.

:class:`NoopTracer` returns one shared, stateless context manager, so a
disabled trace point costs a method call and allocates nothing beyond
the caller's keyword dict.
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager, contextmanager
from typing import Any, Callable, Iterator


class SpanRecord:
    """One timed phase, with attributes and nested children."""

    __slots__ = ("name", "attrs", "started", "ended", "error", "children")

    def __init__(
        self,
        name: str,
        attrs: dict[str, object] | None = None,
        started: float = 0.0,
    ) -> None:
        self.name = name
        self.attrs: dict[str, object] = attrs if attrs is not None else {}
        self.started = started
        self.ended: float | None = None
        self.error: str | None = None
        self.children: list[SpanRecord] = []

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.ended is None:
            return 0.0
        return self.ended - self.started

    def to_dict(self) -> dict[str, object]:
        """Plain-data form (JSON-serialisable)."""
        payload: dict[str, object] = {
            "name": self.name,
            "duration_seconds": self.duration,
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.error is not None:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanRecord":
        """Rebuild a record written by :meth:`to_dict`."""
        record = cls(str(payload["name"]), dict(payload.get("attrs", {})))
        record.ended = float(payload.get("duration_seconds", 0.0))
        record.error = payload.get("error")
        record.children = [
            cls.from_dict(child) for child in payload.get("children", ())
        ]
        return record

    def render(self, indent: int = 0) -> str:
        """This span and its children as indented text lines."""
        attrs = " ".join(f"{key}={value}" for key, value in self.attrs.items())
        suffix = f"  [{attrs}]" if attrs else ""
        if self.error is not None:
            suffix += f"  !{self.error}"
        lines = [f"{'  ' * indent}{self.name}  {self.duration * 1000:.2f}ms{suffix}"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


class Tracer:
    """Builds the span tree of one observed run."""

    __slots__ = ("roots", "_stack", "_clock")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.roots: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []
        self._clock = clock

    def span(self, name: str, **attrs: object) -> AbstractContextManager[SpanRecord]:
        """Open a child span of the innermost open span."""
        return self._span(name, attrs)

    @contextmanager
    def _span(self, name: str, attrs: dict[str, object]) -> Iterator[SpanRecord]:
        record = SpanRecord(name, attrs, self._clock())
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.error = type(exc).__name__
            raise
        finally:
            record.ended = self._clock()
            self._stack.pop()

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def render(self) -> str:
        """The full span forest as indented text."""
        return "\n".join(root.render() for root in self.roots)


class _NoopSpan(AbstractContextManager[SpanRecord]):
    """Shared reusable span context: enter/exit do nothing.

    Stateless, so one instance serves every disabled trace point — even
    re-entrantly.
    """

    __slots__ = ()

    def __enter__(self) -> SpanRecord:
        return _NOOP_RECORD

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_RECORD = SpanRecord("noop")
_NOOP_SPAN = _NoopSpan()


class NoopTracer(Tracer):
    """Tracer that records nothing and allocates nothing per span."""

    __slots__ = ()

    def span(self, name: str, **attrs: object) -> AbstractContextManager[SpanRecord]:
        return _NOOP_SPAN
