"""Structured run reports (system S25).

A :class:`RunReport` is the durable output of one observed run: the
metrics snapshot plus the span tree, JSON round-trippable so benchmark
trajectories (``BENCH_*.json``) can accumulate across commits and the
CLI can render the same data for humans (``repro mine --trace``) or
machines (``--metrics-json``).
"""

from __future__ import annotations

from typing import Any, Callable, cast

from repro.exceptions import DataFormatError
from repro.obs.metrics import render_name
from repro.obs.tracing import SpanRecord

REPORT_FORMAT = "repro.run-report"
REPORT_VERSION = 1


def _num(entry: dict[str, object], field: str) -> int | float:
    """Numeric field of a metric entry (0 when absent)."""
    value = entry.get(field, 0)
    if not isinstance(value, (int, float)):
        raise DataFormatError(
            f"metric field {field!r} is not numeric: {value!r}"
        )
    return value


def _extreme(
    pick: "Callable[[float, float], float]",
    ours: object,
    theirs: object,
) -> int | float | None:
    """min/max of two optional extremes, ignoring absent sides."""
    left = ours if isinstance(ours, (int, float)) else None
    right = theirs if isinstance(theirs, (int, float)) else None
    if left is None:
        return right
    if right is None:
        return left
    return pick(left, right)


class RunReport:
    """Metrics snapshot + span tree of one observed run."""

    __slots__ = ("metrics", "spans")

    def __init__(
        self,
        metrics: dict[str, dict[str, object]],
        spans: list[SpanRecord],
    ) -> None:
        self.metrics = metrics
        self.spans = spans

    # -- queries -----------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> int:
        """Value of one counter (0 when absent)."""
        # repro: allow[DISC002] — scalar label names, not sequences
        entry = self.metrics.get(render_name(name, tuple(sorted(labels.items()))))
        if entry is None or entry.get("type") != "counter":
            return 0
        return int(cast("int | float", entry.get("value", 0)))

    def counter_total(self, name: str) -> int:
        """Sum of all counters named *name* across label sets."""
        return sum(
            int(cast("int | float", entry.get("value", 0)))
            for entry in self.metrics.values()
            if entry.get("type") == "counter" and entry.get("name") == name
        )

    def phase_totals(self) -> dict[str, float]:
        """Total seconds per span name, summed over the whole tree."""
        totals: dict[str, float] = {}

        def walk(record: SpanRecord) -> None:
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
            for child in record.children:
                walk(child)

        for root in self.spans:
            walk(root)
        return totals

    # -- merge algebra -----------------------------------------------------

    def merge(self, other: "RunReport") -> "RunReport":
        """This report combined with *other*, associatively and commutatively.

        Counters add, gauges keep the larger value (and maximum),
        histograms add counts/sums/buckets and combine extremes; metric
        keys present in only one report pass through.  Root spans are
        concatenated and canonically ordered by their serialised form, so
        ``a.merge(b)`` and ``b.merge(a)`` produce identical ``to_dict()``
        documents — the algebra the cluster coordinator folds per-shard
        worker reports with.  A metric key whose type differs between the
        two reports raises :class:`DataFormatError`.
        """
        import json

        merged = {key: dict(entry) for key, entry in self.metrics.items()}
        for key, entry in other.metrics.items():
            ours = merged.get(key)
            if ours is None:
                merged[key] = dict(entry)
                continue
            kind = ours.get("type")
            if kind != entry.get("type"):
                raise DataFormatError(
                    f"cannot merge metric {key!r}: {kind!r} vs "
                    f"{entry.get('type')!r}"
                )
            if kind == "counter":
                ours["value"] = _num(ours, "value") + _num(entry, "value")
            elif kind == "gauge":
                ours["value"] = max(_num(ours, "value"), _num(entry, "value"))
                ours["max"] = max(_num(ours, "max"), _num(entry, "max"))
            elif kind == "histogram":
                ours["count"] = _num(ours, "count") + _num(entry, "count")
                ours["sum"] = _num(ours, "sum") + _num(entry, "sum")
                ours["min"] = _extreme(min, ours.get("min"), entry.get("min"))
                ours["max"] = _extreme(max, ours.get("max"), entry.get("max"))
                buckets = dict(cast("dict[str, int]", ours.get("buckets") or {}))
                for bound, count in cast(
                    "dict[str, int]", entry.get("buckets") or {}
                ).items():
                    buckets[bound] = buckets.get(bound, 0) + count
                ours["buckets"] = buckets
            else:
                raise DataFormatError(
                    f"cannot merge metric {key!r} of unknown type {kind!r}"
                )
        # repro: allow[DISC002] — render_name keys, not sequence values
        ordered = {key: merged[key] for key in sorted(merged)}
        spans = sorted(
            list(self.spans) + list(other.spans),
            key=lambda record: json.dumps(
                record.to_dict(), sort_keys=True, default=str
            ),
        )
        return RunReport(ordered, spans)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Plain-data document (the ``repro.run-report`` schema)."""
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "metrics": {key: dict(entry) for key, entry in self.metrics.items()},
            "spans": [root.to_dict() for root in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunReport":
        """Rebuild a report written by :meth:`to_dict`."""
        if not isinstance(payload, dict) or payload.get("format") != REPORT_FORMAT:
            raise DataFormatError("not a repro run-report document")
        if payload.get("version") != REPORT_VERSION:
            raise DataFormatError(
                f"unsupported run-report version {payload.get('version')!r}"
            )
        try:
            metrics = {
                str(key): dict(entry)
                for key, entry in dict(payload["metrics"]).items()
            }
            spans = [SpanRecord.from_dict(span) for span in payload["spans"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise DataFormatError(f"malformed run-report document: {exc}") from exc
        return cls(metrics, spans)

    def to_json(self) -> str:
        """The report as a JSON string."""
        import json

        return json.dumps(self.to_dict(), indent=1)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a report from :meth:`to_json` output."""
        import json

        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise DataFormatError(f"run-report is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Human-readable phase tree followed by the metrics table."""
        lines: list[str] = []
        if self.spans:
            lines.append("phases:")
            lines.extend(root.render(indent=1) for root in self.spans)
        if self.metrics:
            lines.append("metrics:")
            for key, entry in self.metrics.items():
                kind = entry.get("type")
                if kind == "counter":
                    lines.append(f"  {key} = {entry.get('value')}")
                elif kind == "gauge":
                    lines.append(f"  {key} = {entry.get('value')} (max {entry.get('max')})")
                else:
                    lines.append(
                        f"  {key}: count={entry.get('count')} sum={entry.get('sum')} "
                        f"min={entry.get('min')} max={entry.get('max')}"
                    )
        return "\n".join(lines)
