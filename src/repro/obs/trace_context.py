"""End-to-end trace identity for mining jobs (system S25).

A :class:`TraceContext` names one logical unit of work — a mining job —
with a 128-bit trace id and a 64-bit span id, in the W3C ``traceparent``
wire format (``00-<trace>-<span>-01``).  The trace id is minted once at
the edge (HTTP handler or service submit) and follows the job through
queueing, worker attempts, ``mine()`` spans, journal records, a crash
and the recovered re-run, so every artifact of the job's life can be
joined on a single id.

The ambient context is a :class:`~contextvars.ContextVar`: the scheduler
worker enters :func:`trace_scope` around each attempt, and anything that
runs inside — ``mine()``, checkpoint sinks, fault injection — reads
:func:`current_trace` without threading a parameter through every layer.
The default is ``None``; un-traced callers pay one context-variable read.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import InvalidParameterError

#: version prefix of the ``traceparent`` headers this module emits
TRACEPARENT_VERSION = "00"

_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16
_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex_id(value: str, width: int) -> bool:
    if len(value) != width or set(value) - _HEX_DIGITS:
        return False
    return set(value) != {"0"}


def _random_hex(nbytes: int) -> str:
    while True:
        value = os.urandom(nbytes).hex()
        if set(value) != {"0"}:
            return value


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One job's trace identity: trace id, current span id, parent span."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def __post_init__(self) -> None:
        if not _is_hex_id(self.trace_id, _TRACE_ID_HEX):
            raise InvalidParameterError(
                f"trace_id must be {_TRACE_ID_HEX} lowercase hex digits and "
                f"not all zero, got {self.trace_id!r}"
            )
        if not _is_hex_id(self.span_id, _SPAN_ID_HEX):
            raise InvalidParameterError(
                f"span_id must be {_SPAN_ID_HEX} lowercase hex digits and "
                f"not all zero, got {self.span_id!r}"
            )

    @classmethod
    def mint(cls) -> TraceContext:
        """A fresh root context with random trace and span ids."""
        return cls(
            trace_id=_random_hex(_TRACE_ID_HEX // 2),
            span_id=_random_hex(_SPAN_ID_HEX // 2),
        )

    @classmethod
    def continue_trace(cls, trace_id: str) -> TraceContext:
        """A new span continuing an existing trace id.

        Used when a job's identity outlives a single process: resuming a
        journaled job after a crash, or answering from cache with the
        trace id of the run that actually mined the result.
        """
        return cls(trace_id=trace_id, span_id=_random_hex(_SPAN_ID_HEX // 2))

    @classmethod
    def from_traceparent(cls, header: str | None) -> TraceContext | None:
        """Parse an incoming ``traceparent`` header, tolerantly.

        Returns ``None`` on anything malformed (wrong field count, bad
        hex, all-zero ids, the forbidden ``ff`` version) so callers can
        fall back to :meth:`mint` instead of failing the request.  The
        caller's span id becomes ``parent_id``; a new span id is minted
        for our side of the trace.
        """
        if header is None:
            return None
        parts = header.strip().lower().split("-")
        if len(parts) < 4:
            return None
        version, trace_id, parent_span = parts[0], parts[1], parts[2]
        if len(version) != 2 or set(version) - _HEX_DIGITS or version == "ff":
            return None
        if version == TRACEPARENT_VERSION and len(parts) != 4:
            return None
        if not _is_hex_id(trace_id, _TRACE_ID_HEX):
            return None
        if not _is_hex_id(parent_span, _SPAN_ID_HEX):
            return None
        return cls(
            trace_id=trace_id,
            span_id=_random_hex(_SPAN_ID_HEX // 2),
            parent_id=parent_span,
        )

    def child(self) -> TraceContext:
        """A child span within the same trace."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_random_hex(_SPAN_ID_HEX // 2),
            parent_id=self.span_id,
        )

    def to_traceparent(self) -> str:
        """This context rendered as an outgoing ``traceparent`` header."""
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-01"


_CURRENT: ContextVar[TraceContext | None] = ContextVar(
    "repro_trace_context", default=None
)


def current_trace() -> TraceContext | None:
    """The trace context the current work is running under, if any."""
    return _CURRENT.get()


@contextmanager
def trace_scope(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make *ctx* the ambient trace for the block (``None`` clears it)."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
