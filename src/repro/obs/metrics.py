"""Metrics registry: counters, gauges, histograms (system S25).

The registry is the single vocabulary every instrumented layer reports
into: counters accumulate event counts (DISC comparisons, Lemma 2.1
hits), gauges record point-in-time values, histograms bucket magnitudes
(partition sizes, pruned-interval widths) against fixed boundaries.

Metrics may carry labels (``registry.counter("disc.comparisons", k=4)``)
so the same event can be split by phase without inventing new names; a
labelled metric is a distinct time series keyed by ``(name, labels)``.

Every class has a no-op twin whose mutators do nothing and whose
instances are shared singletons, so the uninstrumented hot path pays one
method call per event and allocates nothing — see
:class:`NoopMetricsRegistry`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Iterator

#: A label set in canonical form: sorted ``(key, value)`` pairs.
LabelItems = tuple[tuple[str, object], ...]

#: Default histogram bucket boundaries (upper-inclusive, plus overflow).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
)


def _label_items(labels: dict[str, object]) -> LabelItems:
    """Canonical (sorted) form of a label mapping."""
    # repro: allow[DISC002] — scalar label names, not sequences
    return tuple(sorted(labels.items()))


def render_name(name: str, labels: LabelItems) -> str:
    """``name{k=4}`` rendering used by snapshots and reports."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter by *amount*."""
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A point-in-time value (last write wins; extremes tracked)."""

    __slots__ = ("name", "labels", "value", "maximum")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.maximum = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value
        if value > self.maximum:
            self.maximum = value

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "max": self.maximum,
        }


class Histogram:
    """A distribution bucketed against fixed upper boundaries.

    A value lands in the first bucket whose boundary is >= the value;
    values above the last boundary land in the overflow bucket.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "total", "minimum", "maximum")

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        labels: LabelItems = (),
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must be sorted and unique: {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def record(self, value: float) -> None:
        """Account one observation of *value*."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def buckets(self) -> dict[str, int]:
        """Bucket counts keyed by their rendered upper boundary."""
        keys = [f"<={bound:g}" for bound in self.bounds] + ["+Inf"]
        return dict(zip(keys, self.bucket_counts))

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": self.buckets(),
        }


#: Anything the registry hands out.
Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of named (optionally labelled) metrics.

    The registry is shared across the service's worker and HTTP threads,
    so the get-or-create table is lock-protected: without it two threads
    racing on a first ``counter(name)`` call each build their own handle
    and one of the two loses every increment it ever records.  Handle
    mutators (``Counter.add`` etc.) stay lock-free by design — the hot
    loop only ever touches pre-fetched handles.
    """

    __slots__ = ("_lock", "_metrics")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelItems], Metric] = {}  # guarded-by: _lock

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``(name, labels)``."""
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Counter(name, key[1])
                self._metrics[key] = metric
        if not isinstance(metric, Counter):
            raise TypeError(f"{name!r} is already a {type(metric).__name__}")
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Gauge(name, key[1])
                self._metrics[key] = metric
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} is already a {type(metric).__name__}")
        return metric

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram registered under ``(name, labels)``."""
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = Histogram(name, bounds, key[1])
                self._metrics[key] = metric
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is already a {type(metric).__name__}")
        return metric

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        yield from metrics

    def counter_total(self, name: str) -> int:
        """Sum of all counters named *name*, across every label set."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sum(
            metric.value
            for metric in metrics
            if isinstance(metric, Counter) and metric.name == name
        )

    def snapshot(self) -> dict[str, dict[str, object]]:
        """All metrics as plain data, keyed by rendered name."""
        with self._lock:
            entries = list(self._metrics.items())
        # repro: allow[DISC002] — (name, labels) string keys, not sequences
        return {
            render_name(name, labels): metric.snapshot()
            for (name, labels), metric in sorted(
                entries, key=lambda kv: (kv[0][0], str(kv[0][1]))
            )
        }


class _NoopCounter(Counter):
    """Shared counter that records nothing."""

    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        return None


class _NoopGauge(Gauge):
    """Shared gauge that records nothing."""

    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NoopHistogram(Histogram):
    """Shared histogram that records nothing."""

    __slots__ = ()

    def record(self, value: float) -> None:
        return None


_NOOP_COUNTER = _NoopCounter("noop")
_NOOP_GAUGE = _NoopGauge("noop")
_NOOP_HISTOGRAM = _NoopHistogram("noop")


class FilteredMetricsRegistry(MetricsRegistry):
    """Registry that materialises only a fixed set of counter names.

    Counters outside the set — and every gauge and histogram — are the
    shared no-op singletons.  This keeps an always-on read-out (e.g.
    ``DiscAllStats``) exact without paying for the full instrumentation
    vocabulary when nobody asked to observe.
    """

    __slots__ = ("_names",)

    def __init__(self, names: Iterable[str]) -> None:
        super().__init__()
        self._names = frozenset(names)

    def counter(self, name: str, **labels: object) -> Counter:
        if name in self._names:
            return super().counter(name, **labels)
        return _NOOP_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NOOP_GAUGE

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return _NOOP_HISTOGRAM


class NoopMetricsRegistry(MetricsRegistry):
    """Registry whose metrics are shared do-nothing singletons.

    Every accessor returns a pre-built instance, so instrumented code
    can fetch handles and call them unconditionally without allocating
    on the uninstrumented path.
    """

    __slots__ = ()

    def counter(self, name: str, **labels: object) -> Counter:
        return _NOOP_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NOOP_GAUGE

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return _NOOP_HISTOGRAM
