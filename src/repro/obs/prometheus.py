"""Prometheus text exposition of a metrics snapshot (system S25).

Renders the registry's :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
into the text format (version 0.0.4) scrapers understand, without taking
a client dependency: dotted names become underscore names
(``service.queue_depth`` -> ``service_queue_depth``), the internal
``name{k=4}`` label syntax maps onto Prometheus labels (``{k="4"}``),
and histograms — bucketed per-interval internally — are re-rendered as
the cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``
the format requires.  Gauges additionally expose their tracked maximum
as ``<name>_max``.
"""

from __future__ import annotations

from typing import Mapping

#: the Content-Type Prometheus scrapers negotiate for
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _sanitize_name(name: str) -> str:
    cleaned = "".join(ch if ch in _NAME_OK else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: object) -> str:
    text = str(value)
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, object], extra: str = "") -> str:
    parts = [
        f'{_sanitize_name(key)}="{_escape_label_value(labels[key])}"'
        for key in sorted(labels)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _bucket_bound(key: str) -> str:
    """The ``le`` value for one internal bucket key (``<=5`` or ``+Inf``)."""
    return key[2:] if key.startswith("<=") else key


def render_prometheus(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """The snapshot in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.values():
        kind = entry.get("type")
        name = _sanitize_name(str(entry.get("name", "")))
        labels = entry.get("labels")
        label_map: Mapping[str, object] = labels if isinstance(labels, dict) else {}
        rendered = _render_labels(label_map)
        if kind == "counter":
            type_line(name, "counter")
            lines.append(f"{name}{rendered} {_format_value(entry.get('value', 0))}")
        elif kind == "gauge":
            type_line(name, "gauge")
            lines.append(f"{name}{rendered} {_format_value(entry.get('value', 0))}")
            type_line(f"{name}_max", "gauge")
            lines.append(
                f"{name}_max{rendered} {_format_value(entry.get('max', 0))}"
            )
        elif kind == "histogram":
            type_line(name, "histogram")
            buckets = entry.get("buckets")
            bucket_map: Mapping[str, object] = (
                buckets if isinstance(buckets, dict) else {}
            )
            cumulative = 0
            for key, count in bucket_map.items():
                if isinstance(count, int):
                    cumulative += count
                bound = _escape_label_value(_bucket_bound(str(key)))
                le = _render_labels(label_map, extra=f'le="{bound}"')
                lines.append(f"{name}_bucket{le} {cumulative}")
            lines.append(f"{name}_sum{rendered} {_format_value(entry.get('sum', 0))}")
            lines.append(
                f"{name}_count{rendered} {_format_value(entry.get('count', 0))}"
            )
    return "\n".join(lines) + "\n" if lines else ""
