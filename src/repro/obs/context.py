"""Observation bundles and the active-observer context (system S25).

An :class:`Observation` pairs a metrics registry with a tracer.  The
module-level context variable holds the *active* observation that every
instrumented call site reports into; the default is a disabled, no-op
observation, so code may call :func:`active` and use the result
unconditionally — the uninstrumented path stays allocation-free.

``with activated(observation()): ...`` enables collection for a block
(context-variable scoped, so threads and nested activations behave);
worker processes always start at the no-op default.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, Iterator

from repro.obs.metrics import (
    FilteredMetricsRegistry,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.report import RunReport
from repro.obs.tracing import NoopTracer, Tracer


class Observation:
    """A metrics registry + tracer pair collecting one run's evidence."""

    __slots__ = ("metrics", "tracer", "enabled")

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: Tracer,
        enabled: bool = True,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.enabled = enabled

    def report(self) -> RunReport:
        """Freeze the collected evidence into a :class:`RunReport`."""
        return RunReport(self.metrics.snapshot(), list(self.tracer.roots))


#: Shared disabled observation: every metric/span call is a cheap no-op.
NOOP_OBSERVATION = Observation(NoopMetricsRegistry(), NoopTracer(), enabled=False)

_ACTIVE: ContextVar[Observation] = ContextVar(
    "repro_active_observation", default=NOOP_OBSERVATION
)


def observation(trace: bool = True) -> Observation:
    """A fresh enabled observation (metrics-only when ``trace=False``)."""
    return Observation(
        MetricsRegistry(), Tracer() if trace else NoopTracer(), enabled=True
    )


def stats_observation(counter_names: Iterable[str]) -> Observation:
    """A metrics-only observation materialising just *counter_names*.

    The cheap self-activation miners use to keep their returned statistics
    exact when nobody else is observing: the named counters are real,
    everything else stays the shared no-op singletons.
    """
    return Observation(
        FilteredMetricsRegistry(counter_names), NoopTracer(), enabled=True
    )


def active() -> Observation:
    """The observation instrumented code is currently reporting into."""
    return _ACTIVE.get()


@contextmanager
def activated(obs: Observation | None = None) -> Iterator[Observation]:
    """Make *obs* (or a fresh observation) active for the block."""
    target = obs if obs is not None else observation()
    token = _ACTIVE.set(target)
    try:
        yield target
    finally:
        _ACTIVE.reset(token)
