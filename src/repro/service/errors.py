"""Typed errors of the mining service (system S27).

Every service failure mode gets its own class so callers — and the HTTP
front-end mapping errors to status codes — dispatch on type, never on
message text.  All derive from :class:`~repro.exceptions.ReproError`, so
``except ReproError`` at the CLI boundary keeps covering the service.
"""

from __future__ import annotations

from repro.exceptions import ReproError


class ServiceError(ReproError):
    """Base class for mining-service failures."""


class ServiceOverloadedError(ServiceError):
    """The submission queue is full; the job was rejected, not queued.

    Backpressure is explicit: the caller learns immediately and may retry
    later, instead of the server accumulating unbounded queued work.
    """


class ServiceClosedError(ServiceError):
    """The service is shutting down and no longer accepts submissions."""


class UnknownDatabaseError(ServiceError, KeyError):
    """No registered database matches the given name or digest."""


class UnknownJobError(ServiceError, KeyError):
    """No job with the given id exists (or it was pruned from history)."""


class UnknownWorkerError(ServiceError, KeyError):
    """No membership lease exists for the given worker URL.

    Answered 404 on the heartbeat endpoint; a worker receiving it must
    re-register (its lease was reaped, or the coordinator restarted).
    """
