"""Durable write-ahead journal for mining jobs (system S27).

The scheduler's job table lives in memory; a crash or SIGKILL forgets
every queued and running job.  :class:`JobJournal` fixes that with the
oldest trick in the book: an append-only JSONL file recording each job's
lifecycle — ``accepted`` → ``started`` → ``checkpoint`` (with a full
resume payload at partition boundaries) → ``finished`` — fsynced on
every state transition.  On startup, :func:`replay_journal` folds the
file back into per-job last-known states; the service re-enqueues
interrupted jobs from their last checkpoint and marks unresumable ones
failed with a reason (see :meth:`MiningService.recover`).

Record shape: one JSON object per line, always with ``event``, ``job``
and ``ts`` (wall-clock seconds) keys, plus event-specific fields::

    {"event": "accepted", "job": "j000001", "ts": ..., "database": ...,
     "digest": ..., "delta": 3, "algorithm": "disc-all", "options": {},
     "deadline_seconds": null, "trace_id": "4bf9..."}

Records written by a traced service additionally carry the job's
``trace_id``, so journal lines join against the structured event log
and the resumed run keeps the original trace identity across a crash.
    {"event": "started", "job": "j000001", "ts": ..., "attempt": 1}
    {"event": "checkpoint", "job": "j000001", "ts": ..., "completed_k": 0,
     "partitions": 4, "checkpoint": {...MiningCheckpoint.to_dict()...}}
    {"event": "finished", "job": "j000001", "ts": ..., "state": "done",
     "error": null, "code": null, "complete": true}

Replay is deliberately forgiving: a torn final line (the process died
mid-write) and garbage from interleaved writers are counted and skipped,
never fatal — the journal exists precisely for ungraceful exits, so its
reader must not demand a graceful one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.exceptions import InvalidParameterError
from repro.faults import fault_point

#: Journal events a job can no longer progress past.
FINISHED_EVENT = "finished"


class JobJournal:
    """Append-only, fsynced JSONL journal of job lifecycle events.

    Thread-safe: the scheduler's workers, the checkpoint sink, and the
    submission path all append concurrently; a lock serialises writes so
    records never interleave *within* one process.  (Two processes
    appending to one file can still tear lines — replay tolerates it.)
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        if self._path.is_dir():
            raise InvalidParameterError(
                f"journal path {self._path} is a directory; pass a file path"
            )
        self._lock = threading.Lock()
        self._handle = open(self._path, "a", encoding="utf-8")  # guarded-by: _lock

    @property
    def path(self) -> Path:
        """The journal file location."""
        return self._path

    def append(self, event: str, job_id: str, **fields: Any) -> None:
        """Durably append one lifecycle record.

        Flushes and fsyncs before returning: once this method returns,
        the record survives a crash.  The ``journal.fsync`` fault site
        fires *before* the fsync, modelling a write that reached the OS
        but was never made durable.
        """
        record: dict[str, Any] = {"event": event, "job": job_id, "ts": time.time()}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._handle.closed:
                raise InvalidParameterError(
                    f"journal {self._path} is closed"
                )
            self._handle.write(line + "\n")
            self._handle.flush()
            fault_point("journal.fsync")
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file handle."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class JournalEntry:
    """The folded last-known state of one journaled job."""

    __slots__ = (
        "job_id", "accepted", "last_event", "state", "attempts",
        "checkpoint", "error", "code", "trace_id",
    )

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.accepted: dict[str, Any] | None = None
        self.last_event = ""
        self.state: str | None = None
        self.attempts = 0
        self.checkpoint: dict[str, Any] | None = None
        self.error: str | None = None
        self.code: str | None = None
        self.trace_id: str | None = None

    @property
    def finished(self) -> bool:
        """True once a ``finished`` record was journaled for this job."""
        return self.last_event == FINISHED_EVENT

    def absorb(self, record: Mapping[str, Any]) -> None:
        """Fold one journal record into this entry (last state wins)."""
        event = str(record.get("event", ""))
        self.last_event = event
        trace_id = record.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            self.trace_id = trace_id
        if event == "accepted":
            self.accepted = dict(record)
        elif event == "started":
            attempt = record.get("attempt")
            if isinstance(attempt, int):
                self.attempts = max(self.attempts, attempt)
        elif event == "checkpoint":
            payload = record.get("checkpoint")
            if isinstance(payload, dict):
                self.checkpoint = payload
        elif event == FINISHED_EVENT:
            state = record.get("state")
            self.state = str(state) if state is not None else None
            error = record.get("error")
            self.error = str(error) if error is not None else None
            code = record.get("code")
            self.code = str(code) if code is not None else None


class JournalReplay:
    """Everything :func:`replay_journal` learned from one journal file."""

    __slots__ = ("entries", "corrupt_lines", "total_lines")

    def __init__(self) -> None:
        #: per-job folded state, in order of first appearance
        self.entries: dict[str, JournalEntry] = {}
        #: lines that were not valid one-object JSON records
        self.corrupt_lines = 0
        self.total_lines = 0

    def interrupted(self) -> list[JournalEntry]:
        """Jobs the journal never saw finish, in journal order."""
        return [entry for entry in self.entries.values() if not entry.finished]

    def __iter__(self) -> Iterator[JournalEntry]:
        return iter(self.entries.values())


def replay_journal(path: str | Path) -> JournalReplay:
    """Fold a journal file into per-job last-known states.

    Corrupt lines — a torn final write, or bytes interleaved by a second
    writer — are counted in ``corrupt_lines`` and skipped.  Records
    without a usable ``job`` id are treated the same way.  A missing
    file replays as empty: a fresh journal has no history to recover.
    """
    replay = JournalReplay()
    journal_path = Path(path)
    if not journal_path.exists():
        return replay
    with open(journal_path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            replay.total_lines += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                replay.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                replay.corrupt_lines += 1
                continue
            job_id = record.get("job")
            if not isinstance(job_id, str) or not job_id:
                replay.corrupt_lines += 1
                continue
            entry = replay.entries.get(job_id)
            if entry is None:
                entry = JournalEntry(job_id)
                replay.entries[job_id] = entry
            entry.absorb(record)
    return replay
