"""Worker supervision: retry classification and backoff (system S27).

A job that dies with an unexpected exception used to fail permanently on
the first attempt.  Under supervision the scheduler classifies the
failure and retries the retryable class with capped exponential backoff
plus deterministic jitter.

Classification is by exception type, never message text:

==========================================  =========  =====================
exception                                   class      rationale
==========================================  =========  =====================
``OperationCancelledError``                 terminal   the caller asked for
                                                       cancellation; retrying
                                                       would defy them
``InjectedFaultError``                      retryable  stands in for the
                                                       transient infrastructure
                                                       failures it simulates
any other ``ReproError``                    terminal   deterministic input /
                                                       validation failures
                                                       repeat identically
anything else (``MemoryError``, bugs, ...)  retryable  unexpected — the crash
                                                       the supervisor exists
                                                       for
==========================================  =========  =====================

Between attempts the scheduler resumes from the job's last recorded
checkpoint (``Job.progress``), so a retry repeats only the interrupted
partition, not the whole run.

Jitter is *deterministic*: drawn from a ``random.Random`` seeded with
``(policy seed, attempt)``, so a retry schedule replays identically
under test and in post-mortems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import contracts
from repro.exceptions import InvalidParameterError

#: Classification outcomes of :func:`classify`.
RETRYABLE = "retryable"
TERMINAL = "terminal"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times, and how patiently, failed attempts are retried."""

    #: retries after the first attempt (0 disables retrying)
    max_retries: int = 2
    #: backoff before retry n is ``base_delay * 2**(n-1)``, capped
    base_delay: float = 0.1
    max_delay: float = 5.0
    #: jitter adds up to this fraction of the computed backoff
    jitter: float = 0.1
    #: seeds the deterministic jitter stream
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise InvalidParameterError(
                f"need 0 <= base_delay <= max_delay, got "
                f"[{self.base_delay}, {self.max_delay}]"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )


def classify(exc: BaseException) -> str:
    """Sort a job failure into :data:`RETRYABLE` or :data:`TERMINAL`.

    The verdict comes from :data:`repro.contracts.RETRYABLE_BY_CLASS` —
    the same table the worker's error bodies and the coordinator's retry
    decisions are checked against — walked over the exception's MRO.
    """
    return RETRYABLE if contracts.is_retryable(exc) else TERMINAL


def backoff_delay(attempt: int, policy: RetryPolicy) -> float:
    """Seconds to wait before retry number *attempt* (1-based).

    Capped exponential in the attempt number, plus deterministic jitter
    so colliding retries de-synchronise without becoming irreproducible.
    """
    if attempt < 1:
        raise InvalidParameterError(f"attempt must be >= 1, got {attempt}")
    base = min(policy.max_delay, policy.base_delay * (2 ** (attempt - 1)))
    if policy.jitter == 0.0 or base == 0.0:
        return base
    rng = random.Random(f"{policy.seed}:{attempt}")
    return base + rng.uniform(0.0, policy.jitter * base)
