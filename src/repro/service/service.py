"""The mining service: registry + cache + scheduler + metrics (system S27).

:class:`MiningService` is the long-lived object behind ``repro serve``
(and directly embeddable in tests or other servers).  It loads each
database once, resolves every submission to a cache key
``(db_digest, delta, algorithm, frozen options)``, serves repeats from
the LRU cache, and schedules misses onto the worker pool under
admission control.

Fault tolerance is layered on top when a :class:`JobJournal` is
attached: submissions are journaled before the caller sees the job id,
resumable runs journal a checkpoint at every completed first-level
partition, and :meth:`recover` replays the journal on startup —
re-enqueueing interrupted jobs from their last checkpoint under their
original ids, and failing unresumable ones with a reason.  A
:class:`~repro.service.supervise.RetryPolicy` makes workers retry
retryable failures, resuming from the job's freshest checkpoint so a
retry repeats only the interrupted partition.

Telemetry shares the :mod:`repro.obs` vocabulary: the service owns a
live :class:`MetricsRegistry` holding ``service.queue_depth``,
``service.cache_hits`` / ``service.cache_misses`` / ``service.rejected``,
``service.retries`` / ``service.recovered_jobs`` /
``service.partial_results``, the ``service.job_seconds`` latency
histogram — and, merged in from each completed job's
:class:`RunReport`, the cumulative mining counters (``disc.rounds``,
``disc.comparisons``, ...), so server telemetry and ``repro bench``
trajectories read the same names.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.checkpoint import MiningCheckpoint
from repro.db.database import SequenceDatabase
from repro.exceptions import (
    CheckpointMismatchError,
    DataFormatError,
    InvalidParameterError,
)
from repro.mining.api import mine, run_identity
from repro.mining.registry import get_algorithm, supports_resume
from repro.mining.result import MiningResult
from repro.obs import MetricsRegistry, RunReport
from repro.obs.events import emit as emit_event
from repro.obs.trace_context import TraceContext
from repro.service.cache import CacheKey, FrozenOptions, ResultCache, freeze_options
from repro.service.errors import UnknownDatabaseError, UnknownWorkerError
from repro.service.journal import (
    JobJournal,
    JournalEntry,
    JournalReplay,
    replay_journal,
)
from repro.service.registry import DatabaseRegistry, RegisteredDatabase
from repro.service.scheduler import (
    CANCELLED,
    FAILED,
    LATENCY_BUCKETS,
    TERMINAL_STATES,
    Job,
    JobScheduler,
)

if TYPE_CHECKING:
    from repro.cluster.coordinator import WorkerClient, WorkerPool
    from repro.cluster.membership import WorkerMembership
    from repro.service.supervise import RetryPolicy


@dataclass(frozen=True, slots=True)
class MineRequest:
    """A resolved, validated mining submission (what a job carries)."""

    database: str
    digest: str
    db: SequenceDatabase
    delta: int
    algorithm: str
    options: FrozenOptions
    #: checkpoint a recovered job resumes from (excluded from identity:
    #: a resumed request is the *same* request, and checkpoints are not
    #: hashable anyway)
    resume_from: MiningCheckpoint | None = field(
        default=None, compare=False, hash=False
    )

    def cache_key(self) -> CacheKey:
        return CacheKey(self.digest, self.delta, self.algorithm, self.options)


@dataclass(frozen=True, slots=True)
class MineOutcome:
    """A completed job's payload: the result and where it came from."""

    result: MiningResult
    cached: bool


class MiningService:
    """Load-once, cache-aware, admission-controlled mining server core."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 32,
        cache_entries: int = 128,
        job_history: int = 1024,
        journal: JobJournal | None = None,
        retry_policy: "RetryPolicy | None" = None,
        role: str = "standalone",
        worker_pool: "WorkerPool | None" = None,
        default_algorithm: str = "disc-all",
    ) -> None:
        self.metrics = MetricsRegistry()
        self.registry = DatabaseRegistry()
        self.cache = ResultCache(cache_entries)
        self.journal = journal
        #: "standalone", "coordinator" (with a worker pool) — reported on
        #: ``/healthz``; a cluster coordinator also defaults ``POST /mine``
        #: submissions to *default_algorithm* (``disc-all-cluster``)
        self.role = role
        self.worker_pool = worker_pool
        if worker_pool is not None:
            # breaker/membership gauges land in the service registry, and
            # the reaper sweeps leases for as long as the service lives
            worker_pool.membership.metrics = self.metrics
            worker_pool.membership.start()
        self.default_algorithm = default_algorithm
        self._workers = workers
        self._merge_lock = threading.Lock()
        self._cache_hits = self.metrics.counter("service.cache_hits")
        self._cache_misses = self.metrics.counter("service.cache_misses")
        self._recovered = self.metrics.counter("service.recovered_jobs")
        self._partials = self.metrics.counter("service.partial_results")
        #: ids of jobs this process journaled an "accepted" record for;
        #: lifecycle events of any other job (cache hits, pre-journal
        #: submissions) are not journaled
        self._journaled: set[str] = set()  # guarded-by: _journaled_lock
        self._journaled_lock = threading.Lock()
        self.scheduler = JobScheduler(
            self._run_job,
            workers=workers,
            queue_size=queue_size,
            metrics=self.metrics,
            job_history=job_history,
            retry_policy=retry_policy,
            listener=self._on_job_event,
        )

    # -- databases -----------------------------------------------------------

    def register_database(
        self, name: str, db: SequenceDatabase
    ) -> tuple[RegisteredDatabase, bool]:
        """Register *db* under *name*; returns ``(entry, replaced)``.

        Re-registering a name with different content invalidates every
        cache entry of the previous content's digest.
        """
        entry, replaced_digest = self.registry.register(name, db)
        if replaced_digest is not None:
            dropped = self.cache.invalidate_digest(replaced_digest)
            self.metrics.counter("service.cache_invalidated").add(dropped)
        return entry, replaced_digest is not None

    # -- submissions ---------------------------------------------------------

    def submit_mine(
        self,
        database: str,
        min_support: float | int,
        algorithm: str = "disc-all",
        options: Mapping[str, object] | None = None,
        deadline_seconds: float | None = None,
        trace: TraceContext | None = None,
    ) -> Job:
        """Validate, consult the cache, and queue a mining job.

        A cache hit returns an already-finished job without touching the
        queue (hits are never subject to backpressure); a miss enqueues
        and may raise :class:`ServiceOverloadedError` immediately.

        *trace* is the caller's trace context (parsed from a
        ``traceparent`` header by the HTTP layer); omitted, the service
        mints one, so every job has a trace identity.  Cache hits answer
        under the trace id of the run that actually mined the result.
        """
        entry = self.registry.get(database)
        delta = entry.db.delta_for(min_support)
        get_algorithm(algorithm)  # validates the name before queueing
        if trace is None:
            trace = TraceContext.mint()
        request = MineRequest(
            database=entry.name,
            digest=entry.digest,
            db=entry.db,
            delta=delta,
            algorithm=algorithm,
            options=freeze_options(options),
        )
        cached = self.cache.get(request.cache_key())
        if cached is not None:
            job = self.scheduler.submit_finished(
                request,
                MineOutcome(cached, cached=True),
                trace=_continued_trace(cached, trace),
            )
            # counted only after submit_finished: a hit during shutdown
            # is a 503, not a served response
            with self._merge_lock:
                self._cache_hits.add(1)
            return job
        return self._submit_request(request, deadline_seconds, trace=trace)

    def _submit_request(
        self,
        request: MineRequest,
        deadline_seconds: float | None,
        job_id: str | None = None,
        trace: TraceContext | None = None,
    ) -> Job:
        """Enqueue a cache-missing request and journal its acceptance."""
        if trace is None:
            trace = TraceContext.mint()
        job = self.scheduler.submit(
            request, deadline_seconds=deadline_seconds, job_id=job_id, trace=trace
        )
        if self.journal is not None:
            with self._journaled_lock:
                self._journaled.add(job.id)
            self.journal.append(
                "accepted",
                job.id,
                database=request.database,
                digest=request.digest,
                delta=request.delta,
                algorithm=request.algorithm,
                options=dict(request.options),
                deadline_seconds=deadline_seconds,
                resumed=request.resume_from is not None,
                trace_id=trace.trace_id,
            )
        emit_event(
            "job.accepted",
            job_id=job.id,
            trace_id=trace.trace_id,
            database=request.database,
            algorithm=request.algorithm,
            delta=request.delta,
            resumed=request.resume_from is not None,
        )
        return job

    def job(self, job_id: str) -> Job:
        """Look a job up by id."""
        return self.scheduler.get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job finishes (test and CLI convenience)."""
        return self.scheduler.wait(job_id, timeout)

    # -- crash recovery ------------------------------------------------------

    def recover(self) -> dict[str, int]:
        """Replay the journal and re-enqueue interrupted jobs.

        Call once at startup, after registering databases and before
        serving traffic.  For each job the journal never saw finish:

        - its database is gone or its content digest changed → the job
          is journaled ``failed`` with an ``unresumable`` code (mining a
          different database than the client asked for would be worse
          than failing);
        - its stored checkpoint is missing, malformed, or does not
          fingerprint-match the run → the job restarts from scratch;
        - otherwise it resumes from the checkpoint, skipping completed
          partitions, under its **original job id** so clients polling
          across the restart keep working.

        Returns a summary: ``resumed`` / ``restarted`` / ``failed`` job
        counts plus ``corrupt_lines`` skipped during replay.  The same
        tallies — including torn/garbage line counts that the summary's
        callers historically dropped — are exported as
        ``service.journal_*`` counters and narrated as a
        ``journal.replayed`` event, so replay health is visible on
        ``/metrics`` instead of only in the return value.
        """
        summary = {"resumed": 0, "restarted": 0, "failed": 0, "corrupt_lines": 0}
        if self.journal is None:
            return summary
        replay = replay_journal(self.journal.path)
        summary["corrupt_lines"] = replay.corrupt_lines
        self.scheduler.ensure_ids_above(_highest_job_number(replay))
        for entry in replay.interrupted():
            if self._recover_one(entry):
                summary["resumed" if entry.checkpoint is not None else
                        "restarted"] += 1
            else:
                summary["failed"] += 1
        with self._merge_lock:
            self.metrics.counter("service.journal_replayed_lines").add(
                replay.total_lines
            )
            self.metrics.counter("service.journal_corrupt_lines").add(
                replay.corrupt_lines
            )
            self.metrics.counter("service.journal_resumed").add(summary["resumed"])
            self.metrics.counter("service.journal_restarted").add(
                summary["restarted"]
            )
            self.metrics.counter("service.journal_unresumable").add(
                summary["failed"]
            )
        emit_event(
            "journal.replayed",
            level="warn" if replay.corrupt_lines else "info",
            total_lines=replay.total_lines,
            corrupt_lines=replay.corrupt_lines,
            jobs=len(replay.entries),
            resumed=summary["resumed"],
            restarted=summary["restarted"],
            unresumable=summary["failed"],
        )
        return summary

    def _recover_one(self, entry: JournalEntry) -> bool:
        """Re-enqueue one interrupted journal entry; False when failed."""
        accepted = entry.accepted
        if accepted is None:
            self._journal_unresumable(
                entry, "journal has no accepted record for this job"
            )
            return False
        try:
            registered = self.registry.get(str(accepted.get("database")))
        except UnknownDatabaseError:
            self._journal_unresumable(
                entry,
                f"database {accepted.get('database')!r} is not registered",
            )
            return False
        if registered.digest != accepted.get("digest"):
            self._journal_unresumable(
                entry,
                f"database {registered.name!r} content changed "
                "since the job was accepted",
            )
            return False
        try:
            delta = int(accepted["delta"])
            algorithm = str(accepted["algorithm"])
            raw_options = accepted.get("options") or {}
            options = freeze_options(
                raw_options if isinstance(raw_options, dict) else {}
            )
            raw_deadline = accepted.get("deadline_seconds")
            deadline = float(raw_deadline) if raw_deadline is not None else None
        except (KeyError, TypeError, ValueError):
            self._journal_unresumable(entry, "accepted record is malformed")
            return False
        checkpoint = self._usable_checkpoint(
            entry, registered.db, delta, algorithm, dict(options)
        )
        if checkpoint is None:
            entry.checkpoint = None  # downgraded to a from-scratch restart
        request = MineRequest(
            database=registered.name,
            digest=registered.digest,
            db=registered.db,
            delta=delta,
            algorithm=algorithm,
            options=options,
            resume_from=checkpoint,
        )
        trace = _recovered_trace(entry.trace_id)
        emit_event(
            "job.recovered",
            job_id=entry.job_id,
            trace_id=trace.trace_id,
            resumed=checkpoint is not None,
            attempts=entry.attempts,
        )
        self._submit_request(request, deadline, job_id=entry.job_id, trace=trace)
        with self._merge_lock:
            self._recovered.add(1)
        return True

    def _usable_checkpoint(
        self,
        entry: JournalEntry,
        db: SequenceDatabase,
        delta: int,
        algorithm: str,
        options: dict[str, object],
    ) -> MiningCheckpoint | None:
        """The entry's checkpoint if it fits the recovered run, else None.

        A bad checkpoint downgrades the job to a from-scratch restart —
        re-mining is always correct, resuming from the wrong snapshot
        never is.
        """
        payload = entry.checkpoint
        if payload is None or not supports_resume(algorithm):
            return None
        try:
            checkpoint = MiningCheckpoint.from_dict(payload)
            checkpoint.validate_for(run_identity(db, delta, algorithm, options))
        except (DataFormatError, CheckpointMismatchError):
            return None
        return checkpoint

    def _journal_unresumable(self, entry: JournalEntry, reason: str) -> None:
        """Journal a terminal failure for a job that cannot be recovered."""
        if self.journal is not None:
            fields: dict[str, object] = {}
            if entry.trace_id is not None:
                fields["trace_id"] = entry.trace_id
            self.journal.append(
                "finished",
                entry.job_id,
                state="failed",
                error=f"not recoverable after restart: {reason}",
                code="unresumable",
                complete=False,
                **fields,
            )
        emit_event(
            "job.finished",
            level="error",
            job_id=entry.job_id,
            trace_id=entry.trace_id,
            state="failed",
            complete=False,
            code="unresumable",
            reason=reason,
        )

    # -- cluster membership --------------------------------------------------

    def _membership(self) -> "WorkerMembership[WorkerClient]":
        pool = self.worker_pool
        if pool is None:
            raise InvalidParameterError(
                f"this {self.role} server has no worker pool; "
                "start it with --role coordinator to accept workers"
            )
        return pool.membership

    def register_worker(self, url: str) -> dict[str, object]:
        """Admit (or revive/renew) a worker lease (``POST /workers``)."""
        return self._membership().register(url)

    def heartbeat_worker(self, url: str) -> dict[str, object]:
        """Renew a worker's lease (``POST /workers/heartbeat``).

        Raises :class:`UnknownWorkerError` (→ 404) when no live lease
        exists — the signal for the worker to re-register.
        """
        membership = self._membership()
        if not membership.heartbeat(url):
            raise UnknownWorkerError(
                f"no lease for worker {url!r}; register it first"
            )
        return {
            "worker": url,
            "renewed": True,
            "lease_seconds": membership.lease_seconds,
        }

    def deregister_worker(self, url: str) -> dict[str, object]:
        """Gracefully retire a worker (``DELETE /workers?url=...``)."""
        if not self._membership().deregister(url):
            raise UnknownWorkerError(f"no lease for worker {url!r}")
        return {"worker": url, "left": True}

    def workers_detail(self) -> dict[str, object]:
        """Membership table + state counts (``GET /workers``)."""
        membership = self._membership()
        return {
            "workers": membership.describe(),
            "counts": membership.counts(),
            "lease_seconds": membership.lease_seconds,
        }

    # -- introspection -------------------------------------------------------

    def retry_after_hint(self) -> int:
        """Seconds a 429-rejected client should wait before retrying.

        Estimated from the job-latency histogram (average completed-job
        seconds) scaled by how many jobs stand in line per worker, then
        clamped to [1, 60] — an honest hint, not a promise.
        """
        histogram = self.metrics.histogram(
            "service.job_seconds", bounds=LATENCY_BUCKETS
        )
        average = histogram.total / histogram.count if histogram.count else 1.0
        waiting = self.scheduler.queue_depth() + 1
        estimate = average * waiting / max(1, self._workers)
        return max(1, min(60, math.ceil(estimate)))

    def health(self) -> dict[str, object]:
        """Liveness summary for ``GET /healthz``.

        A coordinator additionally probes its worker pool and reports
        connected/live worker counts, mirrored as the
        ``cluster.workers_connected``/``cluster.workers_live`` gauges so
        the same facts appear on ``/metrics`` (including Prometheus).
        """
        doc: dict[str, object] = {
            "status": "shutting_down" if self.scheduler.closed else "ok",
            "role": self.role,
            "databases": len(self.registry),
            "cache_entries": len(self.cache),
            "queue_depth": self.scheduler.queue_depth(),
            "jobs": len(self.scheduler.jobs()),
        }
        pool = self.worker_pool
        if pool is not None:
            membership = pool.membership
            counts = membership.counts()
            # "connected" keeps its pre-membership meaning: workers the
            # coordinator would still consider (anything not retired)
            connected = counts["live"] + counts["suspect"]
            live = pool.live_count()
            with self._merge_lock:
                self.metrics.gauge("cluster.workers_connected").set(connected)
                self.metrics.gauge("cluster.workers_live").set(live)
            doc["workers_connected"] = connected
            doc["workers_live"] = live
            doc["worker_states"] = counts
            doc["workers"] = membership.describe()
            doc["dispatch_threads"] = _dispatch_thread_count()
        return doc

    def metrics_snapshot(self) -> dict[str, dict[str, object]]:
        """The live registry as plain data for ``GET /metrics``."""
        with self._merge_lock:
            return self.metrics.snapshot()

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down, draining in-flight jobs unless told otherwise."""
        self.scheduler.close(drain=drain, timeout=timeout)
        if self.worker_pool is not None:
            self.worker_pool.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=True)

    # -- the worker-side runner ----------------------------------------------

    def _run_job(self, job: Job) -> MineOutcome:
        request = job.request
        assert isinstance(request, MineRequest)
        key = request.cache_key()
        cached = self.cache.get(key)
        if cached is not None:
            # An identical job completed while this one waited in line.
            with self._merge_lock:
                self._cache_hits.add(1)
            # answer under the trace id of the run that mined the result
            job.trace = _continued_trace(cached, job.trace)
            return MineOutcome(cached, cached=True)
        resumable = supports_resume(request.algorithm)
        # A retry resumes from the job's freshest checkpoint, falling
        # back to the one recovery attached (if any).
        resume_from = job.progress or request.resume_from
        sink = self._checkpoint_sink(job) if resumable else None
        result = mine(
            request.db,
            request.delta,
            algorithm=request.algorithm,
            observe=True,
            resume_from=resume_from if resumable else None,
            checkpoint_to=sink,
            **dict(request.options),
        )
        if result.complete:
            self.cache.put(key, result)
        else:
            # Partial results are real progress but not the answer the
            # request asked for: never cache them.
            with self._merge_lock:
                self._partials.add(1)
        with self._merge_lock:
            self._cache_misses.add(1)
            if result.report is not None:
                self._absorb_report(result.report)
        return MineOutcome(result, cached=False)

    def _checkpoint_sink(self, job: Job) -> Callable[[MiningCheckpoint], None]:
        """A per-job sink journaling partition-boundary checkpoints.

        Every emitted checkpoint refreshes the in-memory ``job.progress``
        (what an in-process retry resumes from).  Only partition
        boundaries — where ``completed_k`` resets to 0 and the
        completed-partition set grew — are made durable, so the journal
        grows with partitions, not with every discovery round.
        ``job.progress`` is updated *after* the journal append: if the
        append dies (crash, injected ``journal.fsync`` fault), the retry
        resumes from the last checkpoint that is actually durable.
        """
        def sink(checkpoint: MiningCheckpoint) -> None:
            at_partition_boundary = checkpoint.completed_k == 0 and (
                job.progress is None
                or len(checkpoint.completed_partitions)
                > len(job.progress.completed_partitions)
            )
            if at_partition_boundary:
                self._journal_event(
                    job,
                    "checkpoint",
                    completed_k=checkpoint.completed_k,
                    partitions=len(checkpoint.completed_partitions),
                    patterns=len(checkpoint.patterns),
                    checkpoint=checkpoint.to_dict(),
                )
                emit_event(
                    "job.checkpoint",
                    job_id=job.id,
                    trace_id=(
                        job.trace.trace_id if job.trace is not None else None
                    ),
                    partitions=len(checkpoint.completed_partitions),
                    completed_k=checkpoint.completed_k,
                    patterns=len(checkpoint.patterns),
                )
            job.progress = checkpoint

        return sink

    def _journal_event(self, job: Job, event: str, **fields: object) -> None:
        """Journal one lifecycle record for a job this process accepted."""
        journal = self.journal
        if journal is None:
            return
        with self._journaled_lock:
            if job.id not in self._journaled:
                return
        if job.trace is not None:
            fields.setdefault("trace_id", job.trace.trace_id)
        journal.append(event, job.id, **fields)

    def _on_job_event(self, job: Job, event: str) -> None:
        """Scheduler lifecycle listener: journal + narrate transitions."""
        trace_id = job.trace.trace_id if job.trace is not None else None
        if event == "started":
            self._journal_event(job, "started", attempt=job.attempts)
            emit_event(
                "job.started",
                job_id=job.id,
                trace_id=trace_id,
                attempt=job.attempts,
            )
        elif event == "retry":
            partitions = (
                len(job.progress.completed_partitions)
                if job.progress is not None else 0
            )
            self._journal_event(
                job, "retry", attempt=job.attempts, partitions=partitions
            )
            emit_event(
                "job.retry",
                level="warn",
                job_id=job.id,
                trace_id=trace_id,
                attempt=job.attempts,
                partitions=partitions,
            )
        elif event in TERMINAL_STATES:
            complete = True
            outcome = job.result
            if isinstance(outcome, MineOutcome):
                complete = outcome.result.complete
            self._journal_event(
                job, "finished", state=event,
                error=job.error, code=job.error_code, complete=complete,
            )
            if self.journal is not None:
                with self._journaled_lock:
                    self._journaled.discard(job.id)
            born_finished = (
                isinstance(outcome, MineOutcome)
                and outcome.cached
                and job.attempts == 0
            )
            if event == CANCELLED:
                emit_event(
                    "job.cancelled",
                    level="warn",
                    job_id=job.id,
                    trace_id=trace_id,
                    reason=job.error,
                )
            elif born_finished:
                # a cache hit served without running: narrate it as a
                # hit, under the original mining run's trace id
                emit_event("job.cache_hit", job_id=job.id, trace_id=trace_id)
            else:
                emit_event(
                    "job.finished",
                    level="error" if event == FAILED else "info",
                    job_id=job.id,
                    trace_id=trace_id,
                    state=event,
                    complete=complete,
                    cached=(
                        outcome.cached
                        if isinstance(outcome, MineOutcome)
                        else False
                    ),
                )

    def _absorb_report(self, report: RunReport) -> None:
        """Merge one job's counters into the cumulative service registry.

        Jobs run under their own per-run observation (so reports stay
        per-job exact); the service accumulates only the counters, which
        merge by addition.  Called with ``_merge_lock`` held.
        """
        for entry in report.metrics.values():
            if entry.get("type") != "counter":
                continue
            name = entry.get("name")
            value = entry.get("value")
            if not isinstance(name, str) or not isinstance(value, int):
                continue
            labels = entry.get("labels")
            label_map = labels if isinstance(labels, dict) else {}
            self.metrics.counter(name, **label_map).add(value)


def _dispatch_thread_count() -> int:
    """Live shard-dispatch threads in this process.

    Exposed on ``/healthz`` so the soak harness can assert none are
    orphaned once every job has finished.
    """
    return sum(
        1 for thread in threading.enumerate()
        if thread.name.startswith("shard-dispatch-")
    )


def _continued_trace(
    result: MiningResult, fallback: TraceContext | None
) -> TraceContext | None:
    """The trace identity a cache hit answers under.

    A cached result carries the trace id of the run that actually mined
    it, stamped on the root span of its :class:`RunReport`; a hit must
    answer under *that* id — not a freshly minted one — so clients can
    join their response to the run that produced the bytes.  Falls back
    to the caller's context when the result was mined unobserved.
    """
    report = result.report
    if report is not None and report.spans:
        value = report.spans[0].attrs.get("trace_id")
        if isinstance(value, str):
            try:
                return TraceContext.continue_trace(value)
            except InvalidParameterError:
                return fallback
    return fallback


def _recovered_trace(trace_id: str | None) -> TraceContext:
    """The trace a recovered job resumes under: journaled id, new span."""
    if trace_id is not None:
        try:
            return TraceContext.continue_trace(trace_id)
        except InvalidParameterError:
            return TraceContext.mint()
    return TraceContext.mint()


def _highest_job_number(replay: JournalReplay) -> int:
    """The largest numeric suffix among journaled job ids (0 when none)."""
    highest = 0
    for entry in replay:
        job_id = entry.job_id
        if job_id.startswith("j") and job_id[1:].isdigit():
            highest = max(highest, int(job_id[1:]))
    return highest
