"""The mining service: registry + cache + scheduler + metrics (system S27).

:class:`MiningService` is the long-lived object behind ``repro serve``
(and directly embeddable in tests or other servers).  It loads each
database once, resolves every submission to a cache key
``(db_digest, delta, algorithm, frozen options)``, serves repeats from
the LRU cache, and schedules misses onto the worker pool under
admission control.

Telemetry shares the :mod:`repro.obs` vocabulary: the service owns a
live :class:`MetricsRegistry` holding ``service.queue_depth``,
``service.cache_hits`` / ``service.cache_misses`` / ``service.rejected``,
the ``service.job_seconds`` latency histogram — and, merged in from each
completed job's :class:`RunReport`, the cumulative mining counters
(``disc.rounds``, ``disc.comparisons``, ...), so server telemetry and
``repro bench`` trajectories read the same names.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping

from repro.db.database import SequenceDatabase
from repro.mining.api import mine
from repro.mining.registry import get_algorithm
from repro.mining.result import MiningResult
from repro.obs import MetricsRegistry, RunReport
from repro.service.cache import CacheKey, FrozenOptions, ResultCache, freeze_options
from repro.service.registry import DatabaseRegistry, RegisteredDatabase
from repro.service.scheduler import Job, JobScheduler


@dataclass(frozen=True, slots=True)
class MineRequest:
    """A resolved, validated mining submission (what a job carries)."""

    database: str
    digest: str
    db: SequenceDatabase
    delta: int
    algorithm: str
    options: FrozenOptions

    def cache_key(self) -> CacheKey:
        return CacheKey(self.digest, self.delta, self.algorithm, self.options)


@dataclass(frozen=True, slots=True)
class MineOutcome:
    """A completed job's payload: the result and where it came from."""

    result: MiningResult
    cached: bool


class MiningService:
    """Load-once, cache-aware, admission-controlled mining server core."""

    def __init__(
        self,
        workers: int = 2,
        queue_size: int = 32,
        cache_entries: int = 128,
        job_history: int = 1024,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.registry = DatabaseRegistry()
        self.cache = ResultCache(cache_entries)
        self._merge_lock = threading.Lock()
        self._cache_hits = self.metrics.counter("service.cache_hits")
        self._cache_misses = self.metrics.counter("service.cache_misses")
        self.scheduler = JobScheduler(
            self._run_job,
            workers=workers,
            queue_size=queue_size,
            metrics=self.metrics,
            job_history=job_history,
        )

    # -- databases -----------------------------------------------------------

    def register_database(
        self, name: str, db: SequenceDatabase
    ) -> tuple[RegisteredDatabase, bool]:
        """Register *db* under *name*; returns ``(entry, replaced)``.

        Re-registering a name with different content invalidates every
        cache entry of the previous content's digest.
        """
        entry, replaced_digest = self.registry.register(name, db)
        if replaced_digest is not None:
            dropped = self.cache.invalidate_digest(replaced_digest)
            self.metrics.counter("service.cache_invalidated").add(dropped)
        return entry, replaced_digest is not None

    # -- submissions ---------------------------------------------------------

    def submit_mine(
        self,
        database: str,
        min_support: float | int,
        algorithm: str = "disc-all",
        options: Mapping[str, object] | None = None,
        deadline_seconds: float | None = None,
    ) -> Job:
        """Validate, consult the cache, and queue a mining job.

        A cache hit returns an already-finished job without touching the
        queue (hits are never subject to backpressure); a miss enqueues
        and may raise :class:`ServiceOverloadedError` immediately.
        """
        entry = self.registry.get(database)
        delta = entry.db.delta_for(min_support)
        get_algorithm(algorithm)  # validates the name before queueing
        request = MineRequest(
            database=entry.name,
            digest=entry.digest,
            db=entry.db,
            delta=delta,
            algorithm=algorithm,
            options=freeze_options(options),
        )
        cached = self.cache.get(request.cache_key())
        if cached is not None:
            job = self.scheduler.submit_finished(
                request, MineOutcome(cached, cached=True)
            )
            # counted only after submit_finished: a hit during shutdown
            # is a 503, not a served response
            with self._merge_lock:
                self._cache_hits.add(1)
            return job
        return self.scheduler.submit(request, deadline_seconds=deadline_seconds)

    def job(self, job_id: str) -> Job:
        """Look a job up by id."""
        return self.scheduler.get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until a job finishes (test and CLI convenience)."""
        return self.scheduler.wait(job_id, timeout)

    # -- introspection -------------------------------------------------------

    def health(self) -> dict[str, object]:
        """Liveness summary for ``GET /healthz``."""
        return {
            "status": "shutting_down" if self.scheduler.closed else "ok",
            "databases": len(self.registry),
            "cache_entries": len(self.cache),
            "queue_depth": self.scheduler.queue_depth(),
            "jobs": len(self.scheduler.jobs()),
        }

    def metrics_snapshot(self) -> dict[str, dict[str, object]]:
        """The live registry as plain data for ``GET /metrics``."""
        with self._merge_lock:
            return self.metrics.snapshot()

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down, draining in-flight jobs unless told otherwise."""
        self.scheduler.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(drain=True)

    # -- the worker-side runner ----------------------------------------------

    def _run_job(self, job: Job) -> MineOutcome:
        request = job.request
        assert isinstance(request, MineRequest)
        key = request.cache_key()
        cached = self.cache.get(key)
        if cached is not None:
            # An identical job completed while this one waited in line.
            with self._merge_lock:
                self._cache_hits.add(1)
            return MineOutcome(cached, cached=True)
        result = mine(
            request.db,
            request.delta,
            algorithm=request.algorithm,
            observe=True,
            **dict(request.options),
        )
        self.cache.put(key, result)
        with self._merge_lock:
            self._cache_misses.add(1)
            if result.report is not None:
                self._absorb_report(result.report)
        return MineOutcome(result, cached=False)

    def _absorb_report(self, report: RunReport) -> None:
        """Merge one job's counters into the cumulative service registry.

        Jobs run under their own per-run observation (so reports stay
        per-job exact); the service accumulates only the counters, which
        merge by addition.  Called with ``_merge_lock`` held.
        """
        for entry in report.metrics.values():
            if entry.get("type") != "counter":
                continue
            name = entry.get("name")
            value = entry.get("value")
            if not isinstance(name, str) or not isinstance(value, int):
                continue
            labels = entry.get("labels")
            label_map = labels if isinstance(labels, dict) else {}
            self.metrics.counter(name, **label_map).add(value)
