"""HTTP front-end for the mining service (system S27).

A thin JSON layer over :class:`MiningService` on stdlib
``http.server.ThreadingHTTPServer`` (one thread per connection; the
mining work itself stays on the scheduler's bounded worker pool, so
request threads only validate, enqueue and poll).

Endpoints::

    GET  /                      endpoint index
    GET  /healthz               liveness + queue/cache summary
    GET  /metrics               metrics registry; JSON by default, the
                                Prometheus text format via
                                ``?format=prometheus`` or
                                ``Accept: text/plain``
    POST /databases             register {name, format, content}
    DELETE /databases/<name>    evict a registered database
    POST /mine                  submit {database, min_support, ...} -> job id
    GET  /jobs                  job summaries
    GET  /jobs/<id>[?top=N]     job status; patterns once done
    POST /workers               register a worker {url} -> lease (coordinator)
    POST /workers/heartbeat     renew a worker lease {url}
    GET  /workers               membership table + state counts
    DELETE /workers?url=<url>   graceful worker leave

``POST /mine`` participates in distributed tracing: an incoming
``traceparent`` header (W3C format) is parsed and its trace id adopted
for the job; the response echoes a ``traceparent`` for the job's trace
and carries ``trace_id`` in the body.  Cache hits answer under the
trace id of the run that originally mined the result.

Error responses are ``{"error": {"code": ..., "message": ...}}`` with
the HTTP status carrying the class: 429 ``overloaded`` (backpressure),
503 ``shutting_down``, 404 ``unknown_database`` / ``unknown_job`` /
``unknown_worker`` (heartbeat without a lease → worker must
re-register), 400 for bad parameters or malformed databases.
"""

from __future__ import annotations

import io
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro import contracts
from repro.core.sequence import format_seq
from repro.db import io as dbio
from repro.exceptions import (
    DataFormatError,
    InvalidParameterError,
    ReproError,
    UnknownAlgorithmError,
)
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.trace_context import TraceContext
from repro.service.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownDatabaseError,
    UnknownJobError,
    UnknownWorkerError,
)
from repro.service.scheduler import DONE, Job
from repro.service.service import MineOutcome, MineRequest, MiningService

#: Error class -> (HTTP status, machine-readable error code).
_ERROR_STATUS: tuple[tuple[type[ReproError], int, str], ...] = (
    (ServiceOverloadedError, 429, "overloaded"),
    (ServiceClosedError, 503, "shutting_down"),
    (UnknownDatabaseError, 404, "unknown_database"),
    (UnknownJobError, 404, "unknown_job"),
    (UnknownWorkerError, 404, "unknown_worker"),
    (UnknownAlgorithmError, 400, "unknown_algorithm"),
    (DataFormatError, 400, "bad_database"),
    (InvalidParameterError, 400, "bad_parameter"),
    (ReproError, 400, "error"),
)

# A table that drifts from the declared taxonomy answers with statuses
# the coordinator's retry policy was never told about — fail at import,
# not in a handler.
contracts.verify_error_status(_ERROR_STATUS)


def _error_payload(exc: ReproError) -> tuple[int, dict[str, object]]:
    """Map a service/library error to (status, JSON body)."""
    message = str(exc.args[0]) if exc.args else str(exc)
    for klass, status, code in _ERROR_STATUS:
        if isinstance(exc, klass):
            return status, {"error": {"code": code, "message": message}}
    return 500, {"error": {"code": "internal", "message": message}}


def job_payload(job: Job, top: int | None = None) -> dict[str, object]:
    """The JSON document for one job (``GET /jobs/<id>``)."""
    payload: dict[str, object] = {
        "id": job.id,
        "status": job.state,
        "attempts": job.attempts,
        "queued_seconds": round(job.queued_seconds(), 6),
        # same value under the documented name; ``queued_seconds`` stays
        # for compatibility with existing clients
        "queue_wait_seconds": round(job.queued_seconds(), 6),
        "run_seconds": round(job.run_seconds(), 6),
    }
    if job.trace is not None:
        payload["trace_id"] = job.trace.trace_id
    request = job.request
    if isinstance(request, MineRequest):
        payload["request"] = {
            "database": request.database,
            "digest": request.digest,
            "delta": request.delta,
            "algorithm": request.algorithm,
            "options": dict(request.options),
        }
    if job.error is not None:
        payload["error"] = {"code": job.error_code, "message": job.error}
    outcome = job.result
    if job.state == DONE and isinstance(outcome, MineOutcome):
        result = outcome.result
        ranked = result.sorted_patterns()
        shown = ranked if top is None else ranked[:top]
        payload["cached"] = outcome.cached
        payload["result"] = {
            "algorithm": result.algorithm,
            "delta": result.delta,
            "database_size": result.database_size,
            "elapsed_seconds": result.elapsed_seconds,
            "complete": result.complete,
            "completed_k": result.completed_k,
            "pattern_count": len(result),
            "patterns": [
                {"pattern": format_seq(raw), "support": result.patterns[raw]}
                for raw in shown
            ],
        }
    return payload


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's MiningService."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Quiet by default: telemetry lives in /metrics, not stderr."""

    def _send_json(
        self,
        status: int,
        payload: dict[str, object],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, body: str, content_type: str = "text/plain"
    ) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_error(self, exc: ReproError) -> None:
        status, payload = _error_payload(exc)
        headers: dict[str, str] | None = None
        if isinstance(exc, ServiceOverloadedError):
            # An actionable 429: estimate the wait from the latency
            # histogram and current queue depth, RFC-9110 Retry-After.
            hint = self.service.retry_after_hint()
            headers = {"Retry-After": str(hint)}
            error = payload.get("error")
            if isinstance(error, dict):
                error["retry_after_seconds"] = hint
        problems = contracts.validate_error_body(payload)
        assert not problems, problems  # the contract is ours to keep
        self._send_json(status, payload, headers=headers)

    def _read_json(self) -> dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise InvalidParameterError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise InvalidParameterError("request body must be a JSON object")
        return payload

    @property
    def service(self) -> MiningService:
        return self.server.service

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        try:
            if not parts:
                self._send_json(200, _INDEX)
            elif parts == ["healthz"]:
                self._send_json(200, self.service.health())
            elif parts == ["metrics"]:
                self._get_metrics(parse_qs(split.query))
            elif parts == ["jobs"]:
                self._send_json(200, {
                    "jobs": [
                        {"id": job.id, "status": job.state}
                        for job in self.service.scheduler.jobs()
                    ]
                })
            elif parts == ["workers"]:
                self._send_json(200, self.service.workers_detail())
            elif len(parts) == 2 and parts[0] == "jobs":
                top = _query_int(parse_qs(split.query), "top")
                job = self.service.job(parts[1])
                headers = None
                if job.trace is not None:
                    headers = {"traceparent": job.trace.to_traceparent()}
                self._send_json(200, job_payload(job, top=top), headers=headers)
            else:
                self._send_json(404, _NOT_FOUND)
        except ReproError as exc:
            self._send_error(exc)

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        parts = [part for part in urlsplit(self.path).path.split("/") if part]
        try:
            if parts == ["mine"]:
                self._post_mine()
            elif parts == ["databases"]:
                self._post_database()
            elif parts == ["workers"]:
                self._send_json(
                    200, self.service.register_worker(self._worker_url())
                )
            elif parts == ["workers", "heartbeat"]:
                self._send_json(
                    200, self.service.heartbeat_worker(self._worker_url())
                )
            else:
                self._send_json(404, _NOT_FOUND)
        except ReproError as exc:
            self._send_error(exc)

    def do_DELETE(self) -> None:  # noqa: N802 (http.server naming)
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        try:
            if parts == ["workers"]:
                values = parse_qs(split.query).get("url")
                if not values or not values[-1]:
                    raise InvalidParameterError(
                        "query parameter 'url' must name the worker to remove"
                    )
                self._send_json(
                    200, self.service.deregister_worker(values[-1])
                )
            elif len(parts) == 2 and parts[0] == "databases":
                entry = self.service.registry.evict(parts[1])
                dropped = self.service.cache.invalidate_digest(entry.digest)
                self._send_json(200, {
                    "evicted": entry.name,
                    "digest": entry.digest,
                    "cache_entries_dropped": dropped,
                })
            else:
                self._send_json(404, _NOT_FOUND)
        except ReproError as exc:
            self._send_error(exc)

    # -- handlers ------------------------------------------------------------

    def _get_metrics(self, query: dict[str, list[str]]) -> None:
        """``GET /metrics`` with content negotiation.

        JSON by default (the existing machine-readable document); the
        Prometheus text exposition format when the client asks for it —
        either explicitly (``?format=prometheus``) or via an ``Accept``
        header preferring ``text/plain``.
        """
        values = query.get("format")
        fmt = values[-1] if values else None
        accept = self.headers.get("Accept") or ""
        if fmt is None and "text/plain" in accept:
            fmt = "prometheus"
        if fmt == "prometheus":
            self._send_text(
                200,
                render_prometheus(self.service.metrics_snapshot()),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        elif fmt in (None, "json"):
            self._send_json(200, {
                "format": "repro.service-metrics",
                "version": 1,
                "metrics": self.service.metrics_snapshot(),
            })
        else:
            raise InvalidParameterError(
                f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
            )

    def _post_mine(self) -> None:
        payload = self._read_json()
        database = payload.get("database")
        if not isinstance(database, str) or not database:
            raise InvalidParameterError("'database' must be a registered name")
        min_support = payload.get("min_support")
        if not isinstance(min_support, (int, float)) or isinstance(
            min_support, bool
        ):
            raise InvalidParameterError(
                "'min_support' must be a number (int = absolute count, "
                "float in (0, 1] = fraction)"
            )
        # a coordinator defaults submissions to its cluster algorithm;
        # a standalone server keeps the single-box default
        algorithm = payload.get("algorithm", self.service.default_algorithm)
        if not isinstance(algorithm, str):
            raise InvalidParameterError("'algorithm' must be a string")
        options = payload.get("options")
        if options is not None and not isinstance(options, dict):
            raise InvalidParameterError("'options' must be a JSON object")
        deadline = payload.get("deadline_seconds")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or isinstance(deadline, bool)
            or deadline <= 0
        ):
            raise InvalidParameterError("'deadline_seconds' must be > 0")
        # adopt the caller's trace when a well-formed traceparent header
        # arrives; malformed or absent headers mint a fresh trace —
        # every job gets an identity either way
        trace = TraceContext.from_traceparent(self.headers.get("traceparent"))
        if trace is None:
            trace = TraceContext.mint()
        job = self.service.submit_mine(
            database,
            min_support,
            algorithm=algorithm,
            options=options,
            deadline_seconds=float(deadline) if deadline is not None else None,
            trace=trace,
        )
        status = 200 if job.state == DONE else 202
        body: dict[str, object] = {"job_id": job.id, "status": job.state}
        if job.state == DONE and isinstance(job.result, MineOutcome):
            body["cached"] = job.result.cached
        headers: dict[str, str] | None = None
        if job.trace is not None:
            # the job's trace, not the request's: a cache hit answers
            # under the trace id of the run that mined the result
            body["trace_id"] = job.trace.trace_id
            headers = {"traceparent": job.trace.to_traceparent()}
        self._send_json(status, body, headers=headers)

    def _worker_url(self) -> str:
        """The worker base URL carried by a membership POST body."""
        payload = self._read_json()
        url = payload.get("url")
        if not isinstance(url, str) or not url:
            raise InvalidParameterError(
                "'url' must be the worker's base URL (http(s)://host:port)"
            )
        return url

    def _post_database(self) -> None:
        payload = self._read_json()
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise InvalidParameterError("'name' must be a non-empty string")
        fmt = payload.get("format", "spmf")
        if fmt not in ("spmf", "paper"):
            raise InvalidParameterError("'format' must be 'spmf' or 'paper'")
        content = payload.get("content")
        if not isinstance(content, str) or not content.strip():
            raise InvalidParameterError("'content' must be the database text")
        reader = dbio.read_spmf if fmt == "spmf" else dbio.read_paper
        db = reader(io.StringIO(content))
        entry, replaced = self.service.register_database(name, db)
        self._send_json(200, {
            "name": entry.name,
            "digest": entry.digest,
            "sequences": len(entry.db),
            "replaced": replaced,
        })


_INDEX: dict[str, object] = {
    "service": "repro.service",
    "endpoints": [
        "GET /healthz",
        "GET /metrics",
        "POST /databases",
        "DELETE /databases/<name>",
        "POST /mine",
        "GET /jobs",
        "GET /jobs/<id>",
        "POST /workers",
        "POST /workers/heartbeat",
        "GET /workers",
        "DELETE /workers?url=<url>",
    ],
}

_NOT_FOUND: dict[str, object] = {
    "error": {"code": "not_found", "message": "unknown endpoint"}
}


def _query_int(query: dict[str, list[str]], name: str) -> int | None:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[-1])
    except ValueError:
        raise InvalidParameterError(
            f"query parameter {name!r} must be an integer"
        ) from None


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`MiningService`."""

    daemon_threads = True
    allow_reuse_address = True
    # Admission control belongs to the scheduler's bounded queue, not the
    # TCP accept backlog: hold concurrent connection bursts long enough
    # to answer each with a proper 202/429 instead of a connection reset.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], service: MiningService) -> None:
        self.service = service
        super().__init__(address, ServiceRequestHandler)


def make_server(
    service: MiningService, host: str = "127.0.0.1", port: int = 8765
) -> ServiceHTTPServer:
    """Bind (but do not start) the HTTP front-end; port 0 picks a free one."""
    return ServiceHTTPServer((host, port), service)
