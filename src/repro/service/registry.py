"""Database registry: load once, key by content digest (system S27).

A long-lived server must not re-read and re-canonicalise a database on
every request — the registry holds each :class:`SequenceDatabase` in
memory under a user-chosen name *and* a stable content digest.  The
digest is what result-cache keys embed: two names for identical content
share cache entries, and re-registering a name with different content
changes the digest, orphaning (and thereby invalidating) the old
entries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator

from repro.db.database import SequenceDatabase
from repro.service.errors import UnknownDatabaseError


def database_digest(db: SequenceDatabase) -> str:
    """A stable hex digest of the database *content*.

    Delegates to :meth:`SequenceDatabase.content_digest`, which caches —
    checkpoint fingerprints, cache keys, and journal records all share
    one digest computation per loaded database.
    """
    return db.content_digest()


@dataclass(frozen=True, slots=True)
class RegisteredDatabase:
    """One registry entry: a named, digested, loaded database."""

    name: str
    digest: str
    db: SequenceDatabase


class DatabaseRegistry:
    """Thread-safe name/digest -> loaded database mapping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, RegisteredDatabase] = {}  # guarded-by: _lock

    def register(
        self, name: str, db: SequenceDatabase
    ) -> tuple[RegisteredDatabase, str | None]:
        """Register *db* under *name*; return ``(entry, replaced_digest)``.

        ``replaced_digest`` is the digest of the content previously
        registered under *name* when that content differed (the caller
        uses it to invalidate cache entries), else ``None``.
        """
        entry = RegisteredDatabase(name, database_digest(db), db)
        with self._lock:
            previous = self._by_name.get(name)
            self._by_name[name] = entry
        if previous is not None and previous.digest != entry.digest:
            return entry, previous.digest
        return entry, None

    def get(self, name_or_digest: str) -> RegisteredDatabase:
        """Resolve an entry by name, falling back to digest lookup."""
        with self._lock:
            entry = self._by_name.get(name_or_digest)
            if entry is not None:
                return entry
            for entry in self._by_name.values():
                if entry.digest == name_or_digest:
                    return entry
        raise UnknownDatabaseError(
            f"no registered database named {name_or_digest!r}"
        )

    def evict(self, name: str) -> RegisteredDatabase:
        """Remove and return the entry registered under *name*."""
        with self._lock:
            entry = self._by_name.pop(name, None)
        if entry is None:
            raise UnknownDatabaseError(f"no registered database named {name!r}")
        return entry

    def names(self) -> list[str]:
        """Registered names, sorted."""
        with self._lock:
            # repro: allow[DISC002] — database name strings, not sequences
            return sorted(self._by_name)

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_name)

    def __iter__(self) -> Iterator[RegisteredDatabase]:
        with self._lock:
            entries = list(self._by_name.values())
        return iter(entries)
