"""Mining service: registry, result cache, scheduler, HTTP (system S27).

The service layer turns the one-shot :func:`repro.mine` call into a
long-lived server: databases are loaded once and keyed by content
digest, results are cached by ``(digest, delta, algorithm, options)``,
jobs run on a bounded worker pool with explicit backpressure and per-job
deadlines, and a stdlib HTTP front-end exposes submit/poll/health/
metrics.  Zero dependencies beyond the standard library, like the rest
of the repository.

Quickstart::

    from repro.service import MiningService
    from repro.service.http import make_server

    service = MiningService(workers=2, queue_size=32, cache_entries=128)
    service.register_database("demo", db)
    job = service.submit_mine("demo", min_support=0.01)
    service.wait(job.id, timeout=60.0)

or from the shell: ``repro serve demo.spmf --port 8765``.
"""

from repro.service.cache import CacheKey, ResultCache, freeze_options
from repro.service.journal import (
    JobJournal,
    JournalEntry,
    JournalReplay,
    replay_journal,
)
from repro.service.supervise import (
    RETRYABLE,
    TERMINAL,
    RetryPolicy,
    backoff_delay,
    classify,
)
from repro.service.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    UnknownDatabaseError,
    UnknownJobError,
)
from repro.service.registry import (
    DatabaseRegistry,
    RegisteredDatabase,
    database_digest,
)
from repro.service.scheduler import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobScheduler,
)
from repro.service.service import MineOutcome, MineRequest, MiningService

__all__ = [
    "CacheKey",
    "ResultCache",
    "freeze_options",
    "JobJournal",
    "JournalEntry",
    "JournalReplay",
    "replay_journal",
    "RETRYABLE",
    "TERMINAL",
    "RetryPolicy",
    "backoff_delay",
    "classify",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "UnknownDatabaseError",
    "UnknownJobError",
    "DatabaseRegistry",
    "RegisteredDatabase",
    "database_digest",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "Job",
    "JobScheduler",
    "MineOutcome",
    "MineRequest",
    "MiningService",
]
