"""Job scheduler: bounded queue, worker pool, deadlines (system S27).

Admission control is the point: the submission queue is bounded, and a
submission finding it full is rejected *immediately* with
:class:`ServiceOverloadedError` — explicit backpressure instead of
unbounded queueing.  Worker threads pop jobs in FIFO order and hand them
to the runner under a :mod:`repro.core.cancel` scope, so a per-job
deadline unwinds the miner cooperatively at its next round boundary.

The scheduler is generic: it knows nothing about mining.  The runner
callable receives the :class:`Job` and returns the job's result payload;
the service layer supplies a runner that consults the result cache and
calls :func:`repro.mine`.

With a :class:`~repro.service.supervise.RetryPolicy` attached, a worker
whose attempt dies with a *retryable* exception (see
:func:`~repro.service.supervise.classify`) re-runs the job after a
capped, jittered backoff instead of failing it; without one (the
default) the first failure is final, as before.  A *listener* callback
observes lifecycle transitions (``started`` / ``retry`` / terminal
state) outside the scheduler lock — the service layer uses it to write
the durable job journal.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro import contracts
from repro.core.cancel import CancelToken, cancel_scope
from repro.exceptions import (
    InvalidParameterError,
    OperationCancelledError,
    ReproError,
)
from repro.faults import fault_point
from repro.obs.metrics import MetricsRegistry, NoopMetricsRegistry
from repro.obs.trace_context import TraceContext, trace_scope
from repro.service.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    UnknownJobError,
)
from repro.service.supervise import RETRYABLE, RetryPolicy, backoff_delay, classify

if TYPE_CHECKING:
    from repro.core.checkpoint import MiningCheckpoint

#: Job lifecycle states (terminal: done / failed / cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

contracts.verify_states("job", (QUEUED, RUNNING, DONE, FAILED, CANCELLED), QUEUED)

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Bucket bounds (seconds) for the job-latency histogram.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)

_SENTINEL = object()


class Job:
    """One scheduled unit of work and its lifecycle record."""

    __slots__ = (
        "id", "request", "state", "result", "error", "error_code",
        "token", "submitted_at", "started_at", "finished_at", "done_event",
        "attempts", "progress", "trace",
    )

    def __init__(
        self,
        job_id: str,
        request: object,
        token: CancelToken,
        trace: TraceContext | None = None,
    ) -> None:
        self.id = job_id
        self.request = request
        self.state = QUEUED
        self.result: object | None = None
        self.error: str | None = None
        self.error_code: str | None = None
        self.token = token
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.done_event = threading.Event()
        #: runner invocations so far (0 until the first start)
        self.attempts = 0
        #: freshest mining checkpoint; retries resume from here
        self.progress: "MiningCheckpoint | None" = None
        #: the trace identity this job runs (and journals, retries) under
        self.trace = trace

    @property
    def finished(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def queued_seconds(self) -> float:
        """Time spent waiting in the queue."""
        reference = self.started_at or self.finished_at or time.monotonic()
        return max(0.0, reference - self.submitted_at)

    def run_seconds(self) -> float:
        """Time spent inside the runner (0.0 before it starts)."""
        if self.started_at is None:
            return 0.0
        reference = self.finished_at or time.monotonic()
        return max(0.0, reference - self.started_at)


class JobScheduler:
    """Bounded-queue worker pool with typed rejection and deadlines."""

    def __init__(
        self,
        runner: Callable[[Job], object],
        workers: int = 2,
        queue_size: int = 32,
        metrics: MetricsRegistry | None = None,
        job_history: int = 1024,
        retry_policy: RetryPolicy | None = None,
        listener: Callable[[Job, str], None] | None = None,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise InvalidParameterError(
                f"queue_size must be >= 1, got {queue_size}"
            )
        self._runner = runner
        self._retry_policy = retry_policy
        self._listener = listener
        self._metrics = metrics if metrics is not None else NoopMetricsRegistry()
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock
        self._finished_order: deque[str] = deque()  # guarded-by: _lock
        self._job_history = job_history
        self._ids = itertools.count(1)  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._depth = self._metrics.gauge("service.queue_depth")
        self._rejected = self._metrics.counter("service.rejected")
        self._retries = self._metrics.counter("service.retries")
        self._listener_errors = self._metrics.counter("service.listener_errors")
        self._latency = self._metrics.histogram(
            "service.job_seconds", bounds=LATENCY_BUCKETS
        )
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{n}", daemon=True
            )
            for n in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        request: object,
        deadline_seconds: float | None = None,
        job_id: str | None = None,
        trace: TraceContext | None = None,
    ) -> Job:
        """Queue *request*; reject immediately when the queue is full.

        *job_id* lets crash recovery re-enqueue a journaled job under
        its original id, so clients polling across a restart keep
        working; omitted, a fresh id is generated.  *trace* is the trace
        identity the job's attempts run under.
        """
        token = (
            CancelToken.with_timeout(deadline_seconds)
            if deadline_seconds is not None
            else CancelToken()
        )
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shutting down")
            if job_id is not None and job_id in self._jobs:
                raise InvalidParameterError(f"job id {job_id!r} already exists")
            job = Job(
                job_id or self._generate_id_locked(), request, token, trace=trace
            )
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._rejected.add(1)
                raise ServiceOverloadedError(
                    f"submission queue is full ({self._queue.maxsize} "
                    "pending); retry later"
                ) from None
            self._jobs[job.id] = job
        self._depth.set(self._queue.qsize())
        return job

    def submit_finished(
        self,
        request: object,
        result: object,
        trace: TraceContext | None = None,
    ) -> Job:
        """A job born finished (e.g. a cache hit): no queue, no worker.

        The caller gets a normal job id and payload, but the submission
        never occupies queue capacity, so cache hits are exempt from
        backpressure by construction.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shutting down")
            job = Job(self._generate_id_locked(), request, CancelToken(), trace=trace)
            self._jobs[job.id] = job
            job.result = result
            job.started_at = job.submitted_at
            self._finish_locked(job, DONE, None, None)
        self._notify(job, DONE)
        return job

    def _generate_id_locked(self) -> str:
        """A fresh job id, skipping any explicitly-submitted ones."""
        while True:
            job_id = f"j{next(self._ids):06d}"
            if job_id not in self._jobs:
                return job_id

    def ensure_ids_above(self, floor: int) -> None:
        """Never generate ids numbered <= *floor* (recovery support).

        Recovery replays a journal whose finished jobs are gone from the
        in-memory table; without advancing the counter a new submission
        could reuse one of their ids and corrupt the journal's per-job
        history.
        """
        with self._lock:
            current = next(self._ids) - 1
            self._ids = itertools.count(max(current, floor) + 1)

    def get(self, job_id: str) -> Job:
        """The job with *job_id*; raises :class:`UnknownJobError`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no job {job_id!r}")
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes; raises ``TimeoutError`` if not."""
        job = self.get(job_id)
        if not job.done_event.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state} after {timeout}s")
        return job

    def cancel(self, job_id: str, reason: str = "cancelled by caller") -> Job:
        """Request cooperative cancellation of a job.

        A queued job is finished as cancelled immediately; a running job
        stops at its next checkpoint; a finished job is left untouched.
        """
        job = self.get(job_id)
        finished_here = False
        with self._lock:
            if job.state == QUEUED:
                finished_here = self._finish_locked(
                    job, CANCELLED, reason, "cancelled"
                )
        if finished_here:
            self._notify(job, CANCELLED)
            return job
        if not job.finished:
            job.token.cancel(reason)
        return job

    def jobs(self) -> list[Job]:
        """Snapshot of all retained jobs, submission order."""
        with self._lock:
            return [job for _, job in sorted(self._jobs.items(), key=lambda kv: kv[0])]

    def queue_depth(self) -> int:
        """Jobs currently waiting in the queue."""
        return self._queue.qsize()

    # -- lifecycle -----------------------------------------------------------

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and shut the pool down.

        With ``drain=True`` (the default) queued jobs are completed
        before the workers exit; with ``drain=False`` queued jobs are
        finished as cancelled without running.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(item, Job):
                    changed = False
                    with self._lock:
                        if item.state == QUEUED:
                            changed = self._finish_locked(
                                item, CANCELLED, "service shutdown", "shutdown"
                            )
                    if changed:
                        self._notify(item, CANCELLED)
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for worker in self._workers:
            worker.join(timeout)
        self._depth.set(self._queue.qsize())

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun."""
        with self._lock:
            return self._closed

    # -- internals -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            self._depth.set(self._queue.qsize())
            if item is _SENTINEL:
                return
            assert isinstance(item, Job)
            self._run_job(item)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            if job.state != QUEUED:
                return  # cancelled while waiting in the queue
            if job.token.cancelled():
                changed = self._finish_locked(
                    job, CANCELLED, "deadline exceeded before start", "deadline"
                )
            else:
                changed = False
                job.state = RUNNING
                job.started_at = time.monotonic()
        if job.finished:
            if changed:
                self._notify(job, CANCELLED)
            return
        # every attempt (including fault injection and retries) runs under
        # the job's trace identity, so mine() spans, checkpoint sinks and
        # journal records all correlate on one trace id
        with trace_scope(job.trace):
            while True:
                job.attempts += 1
                self._notify(job, "started")
                try:
                    with cancel_scope(job.token):
                        fault_point("worker.crash")
                        result = self._runner(job)
                except OperationCancelledError as exc:
                    code = (
                        "deadline" if "deadline" in job.token.reason else "cancelled"
                    )
                    self._finish(job, CANCELLED, str(exc), code)
                    return
                except Exception as exc:  # keep the worker alive on runner bugs
                    policy = self._retry_policy
                    if policy is not None and self._retry_allowed(job, exc):
                        self._retries.add(1)
                        self._notify(job, "retry")
                        if self._backoff_wait(
                            job, backoff_delay(job.attempts, policy)
                        ):
                            self._finish(
                                job, CANCELLED,
                                job.token.reason or "cancelled during retry backoff",
                                "cancelled",
                            )
                            return
                        continue
                    if isinstance(exc, ReproError):
                        self._finish(job, FAILED, str(exc), "error")
                    else:
                        self._finish(
                            job, FAILED, f"{type(exc).__name__}: {exc}", "internal"
                        )
                    return
                else:
                    job.result = result
                    self._finish(job, DONE, None, None)
                    return

    def _retry_allowed(self, job: Job, exc: BaseException) -> bool:
        policy = self._retry_policy
        if policy is None:
            return False
        with self._lock:
            closed = self._closed
        return (
            not closed
            and classify(exc) == RETRYABLE
            and job.attempts <= policy.max_retries
            and not job.token.cancelled()
        )

    def _backoff_wait(self, job: Job, delay: float) -> bool:
        """Sleep *delay* seconds in slices; True when interrupted."""
        end = time.monotonic() + delay
        while True:
            with self._lock:
                closed = self._closed
            if closed or job.token.cancelled():
                return True
            remaining = end - time.monotonic()
            if remaining <= 0:
                return False
            time.sleep(min(0.05, remaining))

    def _notify(self, job: Job, event: str) -> None:
        """Invoke the lifecycle listener outside the scheduler lock.

        Listener failures must never take a worker down or wedge a job,
        so they are swallowed here — but counted, because a failing
        journal is an operational problem someone needs to see.
        """
        if self._listener is None:
            return
        try:
            self._listener(job, event)
        except Exception:
            self._listener_errors.add(1)

    def _finish(
        self, job: Job, state: str, error: str | None, code: str | None
    ) -> None:
        with self._lock:
            changed = self._finish_locked(job, state, error, code)
        if changed:
            self._notify(job, state)

    def _finish_locked(
        self, job: Job, state: str, error: str | None, code: str | None
    ) -> bool:
        if job.finished:
            return False
        job.state = state
        job.error = error
        job.error_code = code
        job.finished_at = time.monotonic()
        self._metrics.counter("service.jobs", state=state).add(1)
        self._latency.record(job.finished_at - job.submitted_at)
        job.done_event.set()
        self._finished_order.append(job.id)
        while len(self._finished_order) > self._job_history:
            stale = self._finished_order.popleft()
            removed = self._jobs.get(stale)
            if removed is not None and removed.finished:
                del self._jobs[stale]
        return True
