"""Result cache: LRU over (digest, delta, algorithm, options) (system S27).

Real deployments re-issue the same (database, delta) queries constantly;
mining is deterministic, so a completed :class:`MiningResult` can be
served again for free.  Keys embed the database *content digest* — not
the name — so renaming a database keeps its entries warm while
re-registering a name with new content naturally misses, and the old
digest's entries are dropped explicitly via :meth:`invalidate_digest`.

The key also freezes the resolved delta (a fractional ``min_support``
and the equivalent absolute count share one entry), the algorithm name,
and the extra miner options.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import InvalidParameterError
from repro.mining.result import MiningResult

#: Frozen miner options: sorted (name, value) pairs.
FrozenOptions = tuple[tuple[str, object], ...]


def freeze_options(options: Mapping[str, object] | None) -> FrozenOptions:
    """Canonical hashable form of a miner options mapping.

    Only hashable option values are cacheable; anything else (lists,
    dicts) is rejected up front so the error surfaces at submission,
    not at some later cache lookup.
    """
    if not options:
        return ()
    for name, value in options.items():
        try:
            hash(value)
        except TypeError:
            raise InvalidParameterError(
                f"option {name!r} has unhashable value {value!r}; "
                "cacheable miner options must be scalars"
            ) from None
    return tuple(sorted(options.items(), key=lambda kv: kv[0]))


@dataclass(frozen=True, slots=True)
class CacheKey:
    """Identity of one mining request against one database content."""

    digest: str
    delta: int
    algorithm: str
    options: FrozenOptions


class ResultCache:
    """Thread-safe LRU cache of mining results with an entry budget."""

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 0:
            raise InvalidParameterError(
                f"cache max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, MiningResult] = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock

    def get(self, key: CacheKey) -> MiningResult | None:
        """The cached result for *key*, refreshing its LRU position."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: CacheKey, result: MiningResult) -> None:
        """Store *result* under *key*, evicting LRU entries over budget."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate_digest(self, digest: str) -> int:
        """Drop every entry keyed on *digest*; returns how many."""
        with self._lock:
            stale = [key for key in self._entries if key.digest == digest]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[CacheKey]:
        """Current keys, least- to most-recently used (test aid)."""
        with self._lock:
            return list(self._entries)
