"""Synthetic data substrate (system S18): the Quest-style generator."""

from repro.datagen.quest import QuestParams, generate

__all__ = ["QuestParams", "generate"]
