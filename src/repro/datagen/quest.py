"""IBM Quest-style synthetic sequence generator (system S18).

The paper evaluates on databases from the IBM Quest data generator
(Agrawal & Srikant, ICDE 1995; binary dated July 22 1997), which is
proprietary and long unavailable.  This module re-implements the
two-phase generation process described in that paper with the same
command-option names the paper's Table 11 tunes:

======  ==========================================================
ncust   number of customers (|D|)
slen    average number of transactions per customer (Poisson)
tlen    average number of items per transaction (Poisson)
nitems  number of different items
patlen  average number of itemsets per maximal potential pattern
        (the paper's ``seq.patlen``; Poisson)
npats   number of maximal potentially frequent sequences (N_S)
nlits   number of maximal potentially frequent itemsets (N_I)
litlen  average size of those itemsets (Poisson)
corr    correlation: probability that a table entry reuses parts of
        its predecessor
corrupt mean corruption level (items dropped when a pattern is
        embedded), clipped normal with sd ``corrupt_sd`` as in Quest
======  ==========================================================

Phase 1 builds the table of *potentially frequent itemsets*: item sets
of Poisson(litlen) size over a uniform item universe, each sharing a
``corr`` fraction of items with its predecessor, weighted by a
normalised exponential.  Phase 2 builds the *potentially frequent
sequences*: Poisson(patlen) many elements, each element an itemset
drawn from the phase-1 table by weight, again with predecessor
correlation and exponential weights.

Each customer sequence then embeds weighted random patterns — every
embedding independently *corrupted* by dropping items at the pattern's
corruption level — into consecutive transactions until its
Poisson-drawn size budget is met, so all data ultimately derives from
the pattern tables, as in Quest.

Everything is driven by an explicit seed: the same parameters always
produce byte-identical databases.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from repro.db.database import SequenceDatabase
from repro.exceptions import InvalidParameterError

#: A potentially frequent sequence: elements, sampling weight,
#: per-pattern corruption level.
_Pattern = tuple[tuple[tuple[int, ...], ...], float, float]


@dataclass(frozen=True, slots=True)
class QuestParams:
    """Knobs of the Quest-style generator (names follow Table 11)."""

    ncust: int = 1000
    slen: float = 10.0
    tlen: float = 2.5
    nitems: int = 1000
    patlen: float = 4.0
    npats: int = 500
    nlits: int = 1000
    litlen: float = 1.25
    corr: float = 0.25
    corrupt_mean: float = 0.75
    corrupt_sd: float = 0.1
    seed: int = 0

    def validate(self) -> None:
        """Raise InvalidParameterError on out-of-range settings."""
        for name in ("ncust", "nitems", "npats", "nlits"):
            if getattr(self, name) < 1:
                raise InvalidParameterError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        for name in ("slen", "tlen", "patlen", "litlen"):
            value = getattr(self, name)
            if value <= 0:
                raise InvalidParameterError(f"{name} must be > 0, got {value}")
        if not 0.0 <= self.corr <= 1.0:
            raise InvalidParameterError(f"corr must be in [0,1], got {self.corr}")
        if not 0.0 <= self.corrupt_mean <= 1.0:
            raise InvalidParameterError(
                f"corrupt_mean must be in [0,1], got {self.corrupt_mean}"
            )
        if self.corrupt_sd < 0:
            raise InvalidParameterError(
                f"corrupt_sd must be >= 0, got {self.corrupt_sd}"
            )

    def scaled(self, **overrides) -> "QuestParams":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **overrides)


def generate(params: QuestParams) -> SequenceDatabase:
    """Generate a deterministic synthetic database from *params*."""
    params.validate()
    rng = random.Random(params.seed)
    itemsets, itemset_weights = _itemset_table(params, rng)
    patterns = _pattern_table(params, rng, itemsets, itemset_weights)
    weights = [weight for _, weight, _ in patterns]
    sequences = [
        _customer_sequence(params, patterns, weights, rng)
        for _ in range(params.ncust)
    ]
    return SequenceDatabase(sequences)


# -- sampling helpers --------------------------------------------------------------


def _poisson_at_least_one(rng: random.Random, mean: float) -> int:
    """Poisson sample clamped to >= 1 (Quest uses small positive means)."""
    # Knuth's algorithm; the means used here are < 50.
    threshold = math.exp(-mean)
    k, product = 0, 1.0
    while True:
        k += 1
        product *= rng.random()
        if product <= threshold:
            break
    return max(1, k - 1)


def _exponential_weights(rng: random.Random, count: int) -> list[float]:
    """Normalised exponential weights (Quest's pattern popularity)."""
    raw = [rng.expovariate(1.0) for _ in range(count)]
    total = sum(raw)
    return [value / total for value in raw]


# -- phase 1: potentially frequent itemsets ----------------------------------------


def _itemset_table(
    params: QuestParams, rng: random.Random
) -> tuple[list[tuple[int, ...]], list[float]]:
    """The N_I potentially frequent itemsets with their weights.

    Each entry shares (on average) a ``corr`` fraction of its items with
    its predecessor — Quest's way of modelling related product groups —
    and draws the rest uniformly from the item universe.
    """
    table: list[tuple[int, ...]] = []
    previous: tuple[int, ...] = ()
    for _ in range(params.nlits):
        size = _poisson_at_least_one(rng, params.litlen)
        chosen: set[int] = set()
        for _ in range(size):
            if previous and rng.random() < params.corr:
                chosen.add(rng.choice(previous))
            else:
                chosen.add(rng.randint(1, params.nitems))
        entry = tuple(sorted(chosen))
        table.append(entry)
        previous = entry
    return table, _exponential_weights(rng, len(table))


# -- phase 2: potentially frequent sequences ----------------------------------------


def _pattern_table(
    params: QuestParams,
    rng: random.Random,
    itemsets: list[tuple[int, ...]],
    itemset_weights: list[float],
) -> list[_Pattern]:
    """The N_S potentially frequent sequences.

    Elements are itemsets drawn from the phase-1 table by weight; with
    probability ``corr`` an element is reused from the previous pattern
    instead.  Every pattern carries an exponential sampling weight and a
    clipped-normal corruption level.
    """
    weights = _exponential_weights(rng, params.npats)
    patterns: list[_Pattern] = []
    previous_elements: tuple[tuple[int, ...], ...] = ()
    for index in range(params.npats):
        length = _poisson_at_least_one(rng, params.patlen)
        elements: list[tuple[int, ...]] = []
        for _ in range(length):
            if previous_elements and rng.random() < params.corr:
                elements.append(rng.choice(previous_elements))
            else:
                elements.append(
                    rng.choices(itemsets, weights=itemset_weights, k=1)[0]
                )
        corruption = min(
            1.0, max(0.0, rng.gauss(params.corrupt_mean, params.corrupt_sd))
        )
        entry = tuple(elements)
        patterns.append((entry, weights[index], corruption))
        previous_elements = entry
    return patterns


# -- customer sequences --------------------------------------------------------------


def _corrupted(
    pattern: tuple[tuple[int, ...], ...],
    level: float,
    rng: random.Random,
) -> list[list[int]]:
    """Drop items from a pattern embedding (Quest's corruption step)."""
    kept: list[list[int]] = []
    for itemset in pattern:
        survivors = [item for item in itemset if rng.random() >= level]
        if survivors:
            kept.append(survivors)
    return kept


def _customer_sequence(
    params: QuestParams,
    patterns: list[_Pattern],
    weights: list[float],
    rng: random.Random,
) -> tuple[tuple[int, ...], ...]:
    """Assemble one customer sequence from corrupted pattern embeddings."""
    n_txn = _poisson_at_least_one(rng, params.slen)
    budget = [_poisson_at_least_one(rng, params.tlen) for _ in range(n_txn)]
    transactions: list[set[int]] = [set() for _ in range(n_txn)]
    target = sum(budget)
    placed = 0
    attempts = 0
    max_attempts = 4 * n_txn + 8
    while placed < target and attempts < max_attempts:
        attempts += 1
        pattern, _, corruption = rng.choices(patterns, weights=weights, k=1)[0]
        embedding = _corrupted(pattern, corruption, rng)
        if not embedding:
            continue
        if len(embedding) > n_txn:
            embedding = embedding[:n_txn]
        offset = rng.randrange(0, n_txn - len(embedding) + 1)
        for shift, itemset in enumerate(embedding):
            txn = transactions[offset + shift]
            for item in itemset:
                if item not in txn:
                    txn.add(item)
                    placed += 1
    result = tuple(tuple(sorted(txn)) for txn in transactions if txn)
    if result:
        return result
    # Degenerate fallback (all embeddings fully corrupted): one item.
    return ((rng.randint(1, params.nitems),),)
