"""Suppression-comment parsing shared by the linter and the checker (S24).

``# repro: allow[RULE]`` comments are the one escape hatch from every
analysis gate.  The grammar lives here, dependency-free, so both the
per-file engine (:mod:`repro.analysis.engine`) and the whole-program
checker (:mod:`repro.analysis.checker`) can consume it without import
cycles.

A suppression covers its own line; a comment alone on a line also
propagates down through further comment-only lines onto the first code
line below, so multi-line statements can be annotated above their first
line.
"""

from __future__ import annotations

import io
import re
import tokenize

_ALLOW_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """``# repro: allow[...]`` comments by the line they are written on."""
    comments: dict[int, frozenset[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return comments
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_PATTERN.search(token.string)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if ids:
            line = token.start[0]
            comments[line] = comments.get(line, frozenset()) | ids
    return comments


def effective_suppressions(
    source: str, comments: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Per-line suppression map.

    A suppression covers its own line; when the comment stands alone on
    its line it also propagates down through any further comment-only
    lines onto the first code line below (so a multi-line explanation
    above a statement suppresses the statement).
    """
    lines = source.splitlines()
    effective: dict[int, frozenset[str]] = {}

    def extend(line: int, ids: frozenset[str]) -> None:
        effective[line] = effective.get(line, frozenset()) | ids

    def is_comment_only(line: int) -> bool:
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        return text.lstrip().startswith("#")

    for line, ids in comments.items():
        extend(line, ids)
        if is_comment_only(line):
            below = line + 1
            while below <= len(lines) and is_comment_only(below):
                extend(below, ids)
                below += 1
            extend(below, ids)
    return effective
