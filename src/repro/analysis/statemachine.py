"""STATE001: state-field writes form only declared transitions.

The breaker, membership and job lifecycles are declared as transition
tables in :mod:`repro.contracts`.  For each machine this rule scans the
module that owns it for attribute assignments to the state field
(``self._state = OPEN``, ``record.state = LIVE``) and checks that every
assignment is a declared edge from every state the object might be in
at that point.

Possible source states are tracked with a small abstract interpreter
over statement blocks: the set starts at "any state", is narrowed by
``==``/``!=`` comparisons against the state field in ``if`` tests
(including ``and``/``or``/``not`` combinations), and branches that end
in ``return``/``raise``/``continue``/``break`` drop out of the
fall-through set — exactly the guard idiom the cluster code uses
(``if record.state == RETIRED: return`` and the reaper's
``if record.state != SUSPECT: continue``).  Loops and ``try`` blocks
reset conservatively to "any state"; a dynamic right-hand side (the
scheduler's ``job.state = state`` chokepoint) is out of static reach
and widens back to "any state".

``__init__``/``__post_init__`` are special: a state write there is the
object's birth, so it must be the machine's declared initial state.
"""

from __future__ import annotations

import ast

from repro import contracts
from repro.analysis.callgraph import CallGraph
from repro.analysis.contracts_rules import (
    functions_in_module,
    module_str_constants,
    resolve_str,
)
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProjectModel
from repro.analysis.visitor import ProjectRule, register_project

#: functions whose state writes are construction, not transition
INIT_FUNCTIONS = ("__init__", "__post_init__")

#: statements that terminate a block's fall-through
_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


class _Scanner:
    """Scan one function body for illegal transitions of one machine."""

    def __init__(
        self,
        rule_id: str,
        machine: "contracts.StateMachine",
        module: ModuleInfo,
        constants: dict[str, str],
    ) -> None:
        self.rule_id = rule_id
        self.machine = machine
        self.module = module
        self.constants = constants
        self.all_states = frozenset(machine.states)
        self.findings: list[Finding] = []

    # -- narrowing -----------------------------------------------------------

    def _is_state_field(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == self.machine.attribute
        )

    def _narrow(
        self, test: ast.expr
    ) -> tuple[frozenset[str], frozenset[str]]:
        """(possible states if *test* is true, ... if false)."""
        every = self.all_states
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            if self._is_state_field(test.left):
                value = resolve_str(test.comparators[0], self.constants)
                if value is not None and value in every:
                    if isinstance(test.ops[0], ast.Eq):
                        return frozenset({value}), every - {value}
                    if isinstance(test.ops[0], ast.NotEq):
                        return every - {value}, frozenset({value})
        elif isinstance(test, ast.BoolOp):
            pairs = [self._narrow(value) for value in test.values]
            trues = [true for true, _ in pairs]
            falses = [false for _, false in pairs]
            if isinstance(test.op, ast.And):
                true = every
                for candidate in trues:
                    true &= candidate
                false = frozenset().union(*falses)
                return true, false
            true = frozenset().union(*trues)
            false = every
            for candidate in falses:
                false &= candidate
            return true, false
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            true, false = self._narrow(test.operand)
            return false, true
        return every, every

    # -- assignments ---------------------------------------------------------

    def _state_value(self, node: ast.expr) -> str | None:
        value = resolve_str(node, self.constants)
        if value is not None and value in self.all_states:
            return value
        return None

    def _handle_assign(
        self, stmt: ast.Assign, current: frozenset[str]
    ) -> frozenset[str]:
        if not any(self._is_state_field(target) for target in stmt.targets):
            return current
        value = self._state_value(stmt.value)
        if value is None:
            return self.all_states  # dynamic write; anything is possible now
        illegal = sorted(
            source
            for source in current
            if not self.machine.allows(source, value)
        )
        if illegal:
            self.findings.append(
                Finding(
                    self.rule_id,
                    self.module.path,
                    stmt.lineno,
                    stmt.col_offset,
                    f"assignment {self.machine.attribute} = {value!r} forms "
                    f"undeclared {self.machine.name} transition(s) from "
                    f"{', '.join(illegal)}",
                )
            )
        return frozenset({value})

    # -- block walk ----------------------------------------------------------

    def scan_block(
        self, statements: list[ast.stmt], current: frozenset[str]
    ) -> frozenset[str] | None:
        """Walk a block; return the fall-through set, None if it exits."""
        for stmt in statements:
            if isinstance(stmt, _TERMINATORS):
                return None
            if isinstance(stmt, ast.Assign):
                current = self._handle_assign(stmt, current)
            elif isinstance(stmt, ast.If):
                true, false = self._narrow(stmt.test)
                body_out = self.scan_block(stmt.body, current & true)
                if stmt.orelse:
                    else_out = self.scan_block(stmt.orelse, current & false)
                else:
                    else_out = current & false
                branches = [
                    out for out in (body_out, else_out) if out is not None
                ]
                if not branches:
                    return None
                current = frozenset().union(*branches)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self.scan_block(stmt.body, self.all_states)
                self.scan_block(stmt.orelse, self.all_states)
                current = self.all_states
            elif isinstance(stmt, ast.Try):
                self.scan_block(stmt.body, self.all_states)
                for handler in stmt.handlers:
                    self.scan_block(handler.body, self.all_states)
                self.scan_block(stmt.orelse, self.all_states)
                self.scan_block(stmt.finalbody, self.all_states)
                current = self.all_states
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                out = self.scan_block(stmt.body, current)
                if out is None:
                    return None
                current = out
            # nested defs are scanned as functions in their own right
        return current

    def scan_init(self, node: ast.AST) -> None:
        """In a constructor a state write must be the initial state."""
        for child in ast.walk(node):
            if not isinstance(child, ast.Assign):
                continue
            if not any(
                self._is_state_field(target) for target in child.targets
            ):
                continue
            value = self._state_value(child.value)
            if value is not None and value != self.machine.initial:
                self.findings.append(
                    Finding(
                        self.rule_id,
                        self.module.path,
                        child.lineno,
                        child.col_offset,
                        f"{self.machine.name} objects must be born in "
                        f"{self.machine.initial!r}, not {value!r}",
                    )
                )


@register_project
class StateTransitionRule(ProjectRule):
    """STATE001: only declared state-machine edges may be written."""

    rule_id = "STATE001"
    title = "state-field write outside the declared transition table"
    rationale = (
        "The breaker, membership and job lifecycles are load-bearing "
        "protocols: an undeclared edge (say open -> closed without a "
        "probe) silently changes retry and dispatch behaviour."
    )
    scopes = ("cluster/", "service/")

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        findings: list[Finding] = []
        for machine in contracts.STATE_MACHINES.values():
            module = project.modules_by_rel.get(machine.module)
            if module is None:
                continue
            constants = module_str_constants(module)
            for fn in functions_in_module(project, module):
                scanner = _Scanner(self.rule_id, machine, module, constants)
                if fn.name in INIT_FUNCTIONS:
                    scanner.scan_init(fn.node)
                else:
                    scanner.scan_block(fn.node.body, scanner.all_states)
                findings.extend(scanner.findings)
        return sorted(findings, key=Finding.sort_index)
