"""Whole-program checker behind ``repro check`` (system S24).

Parses every module under the given paths into one
:class:`~repro.analysis.project.ProjectModel`, builds the call graph and
runs the registered whole-program rules (CONC, FLOW, HOT) over it.
Findings use the same :class:`~repro.analysis.findings.Finding` shape,
the same ``# repro: allow[RULE]`` suppressions and the same reporters as
the per-file linter, so ``repro check`` and ``repro lint`` compose in CI.

Exit semantics match the linter: 0 clean, 1 findings, 2 when the
analysis itself could not run (unparseable file, unknown rule, crash).
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import Iterable, Sequence, Type

from repro.analysis.callgraph import build_call_graph

# Importing the rule families registers them.
from repro.analysis import conc as _conc  # noqa: F401  (side-effect import)
from repro.analysis import flow as _flow  # noqa: F401  (side-effect import)
from repro.analysis import hot as _hot  # noqa: F401  (side-effect import)
from repro.analysis import statemachine as _statemachine  # noqa: F401  (side-effect import)
from repro.analysis import wire as _wire  # noqa: F401  (side-effect import)
from repro.analysis.findings import PARSE_ERROR_ID, Finding
from repro.analysis.project import ProjectModel, load_project
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.visitor import (
    ProjectRule,
    expand_rule_selection,
    project_rule_catalog,
    render_rule_summaries,
)


def _resolve_project_rules(
    rule_ids: Sequence[str] | None,
) -> list[Type[ProjectRule]]:
    catalog = project_rule_catalog()
    if rule_ids is None:
        return list(catalog.values())
    return [
        catalog[rule_id]
        for rule_id in expand_rule_selection(rule_ids, catalog)
    ]


def check_project(
    project: ProjectModel, rule_ids: Sequence[str] | None = None
) -> list[Finding]:
    """Run the whole-program rules over an already-loaded project."""
    rule_classes = _resolve_project_rules(rule_ids)
    graph = build_call_graph(project)
    findings: list[Finding] = list(project.parse_errors)
    for rule_class in rule_classes:
        findings.extend(rule_class().check(project, graph))
    kept = [
        finding
        for finding in findings
        if finding.rule_id not in project.suppressions_for(finding)
    ]
    return sorted(kept, key=Finding.sort_index)


def check_paths(
    paths: Iterable[str | Path], rule_ids: Sequence[str] | None = None
) -> tuple[list[Finding], int]:
    """Check files/directories; returns (findings, modules_analysed)."""
    project = load_project(paths)
    findings = check_project(project, rule_ids=rule_ids)
    return findings, len(project.modules) + len(project.parse_errors)


def list_project_rules() -> str:
    """The unified rule catalog (shared with ``repro lint --list-rules``)."""
    return render_rule_summaries()


def run_check(
    paths: Sequence[str],
    output_format: str = "text",
    rule_ids: Sequence[str] | None = None,
    show_rules: bool = False,
) -> int:
    """Check *paths*; 0 clean, 1 findings, 2 analysis failure."""
    if show_rules:
        print(list_project_rules())
        return 0
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    try:
        findings, checked = check_paths(paths, rule_ids=rule_ids)
    except ValueError as exc:  # unknown rule id in --rules
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception:  # analysis crash: report, never masquerade as clean
        print("error: analysis crashed", file=sys.stderr)
        traceback.print_exc()
        return 2
    if output_format == "json":
        print(render_json(findings, checked))
    elif output_format == "sarif":
        print(render_sarif(findings, checked, tool_name="repro-check"))
    else:
        print(render_text(findings, checked))
    if any(finding.rule_id == PARSE_ERROR_ID for finding in findings):
        return 2
    return 1 if findings else 0


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the check options on *parser* (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", default="",
        help="comma-separated rule ids to run (default: every rule)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the whole-program rule catalog and exit",
    )


def check_from_args(args: argparse.Namespace) -> int:
    """Run the checker from parsed arguments (argparse Namespace)."""
    rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    return run_check(
        args.paths,
        output_format=args.format,
        rule_ids=rule_ids or None,
        show_rules=args.list_rules,
    )
