"""Static analysis for the repro codebase (system S24).

Two engines share one findings/suppression/reporting substrate:

* the per-file linter (``repro lint``) — AST rules over one module at a
  time, turning the paper's algorithmic invariants (above all "no
  support counting in the DISC loop", Lemmas 2.1/2.2) into gates;
* the whole-program checker (``repro check``) — parses every module
  into one project model, builds a name-resolution call graph and runs
  the cross-module rule families: CONC (lock discipline), FLOW
  (exception flow and cancellation liveness), HOT (hot-loop hygiene).

Stdlib-only (``ast`` + ``tokenize``); see ``docs/DEVELOPMENT.md`` for
the full rule catalog.

Programmatic use::

    from repro.analysis import lint_paths, check_paths
    findings, checked = lint_paths(["src"])
    findings, modules = check_paths(["src"])

Command line::

    repro lint src/                 # or: python -m repro.analysis src/
    repro check src/
    repro lint --format sarif src/
    repro check --list-rules
"""

from repro.analysis.checker import check_paths, check_project
from repro.analysis.engine import (
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel, load_project
from repro.analysis.reporting import (
    render_json,
    render_sarif,
    render_text,
    rule_counts,
)
from repro.analysis.visitor import (
    ProjectRule,
    Rule,
    project_rule_catalog,
    register,
    register_project,
    rule_catalog,
)

__all__ = [
    "Finding",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "check_paths",
    "check_project",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_project",
    "parse_suppressions",
    "project_rule_catalog",
    "register",
    "register_project",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_catalog",
    "rule_counts",
]
