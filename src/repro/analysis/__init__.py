"""Static analysis for the repro codebase (system S24).

An AST-based lint engine that turns the repo's algorithmic invariants —
above all the paper's "no support counting in the DISC loop" claim
(Lemmas 2.1/2.2) — into machine-checked rules.  Stdlib-only (``ast`` +
``tokenize``); see ``docs/DEVELOPMENT.md`` for the rule catalog.

Programmatic use::

    from repro.analysis import lint_paths, lint_source
    findings, checked = lint_paths(["src"])

Command line::

    repro lint src/                 # or: python -m repro.analysis src/
    repro lint --list-rules
    repro lint --format json src/
"""

from repro.analysis.engine import (
    lint_file,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.analysis.findings import Finding
from repro.analysis.reporting import render_json, render_text, rule_counts
from repro.analysis.visitor import Rule, register, rule_catalog

__all__ = [
    "Finding",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "register",
    "render_json",
    "render_text",
    "rule_catalog",
    "rule_counts",
]
