"""Shared AST helpers for the declared-contract rule families (system S24).

The WIRE and STATE rules check both sides of the wire contracts declared
in :mod:`repro.contracts` — events, JSON schemas, the error taxonomy,
metric names and state machines — against the code that produces and
consumes them.  This module holds the helpers they share: constant
resolution against module-level string tables, locating anchor functions
and module constants, and recognising ``emit(...)`` call sites through
import aliases.

The manifest itself is imported live (``repro.contracts``) rather than
parsed out of the analysed project: the checker always runs with the
real package importable, and fixture projects under ``tests/fixtures/``
are then judged against the same single source of truth as ``src/``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallGraph, dotted_name
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectModel

#: resolved qnames of the event-emit entry points (module-level function
#: and its package re-export); sites reach these through import aliases
EMIT_QNAMES = frozenset({
    "repro.obs.events.emit",
    "repro.obs.emit",
})

#: the breaker-state -> event-name table in the manifest; a subscript of
#: it as an emit name means "one of the table's values"
BREAKER_EVENT_TABLE = "repro.contracts.BREAKER_EVENT_BY_STATE"


def constant_str(node: ast.AST | None) -> str | None:
    """The value of a string-literal expression, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _module_assignments(module: ModuleInfo) -> Iterator[tuple[ast.expr, ast.expr]]:
    """(target, value) for every module-level assignment statement."""
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                yield target, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            yield stmt.target, stmt.value


def module_str_constants(module: ModuleInfo) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments by name."""
    table: dict[str, str] = {}
    for target, value in _module_assignments(module):
        text = constant_str(value)
        if text is not None and isinstance(target, ast.Name):
            table[target.id] = text
    return table


def module_str_dicts(module: ModuleInfo) -> dict[str, dict[str, str]]:
    """Module-level ``NAME = {"k": "v", ...}`` string-to-string dicts."""
    table: dict[str, dict[str, str]] = {}
    for target, value in _module_assignments(module):
        if not isinstance(target, ast.Name) or not isinstance(value, ast.Dict):
            continue
        entries: dict[str, str] = {}
        for key, item in zip(value.keys, value.values):
            key_text = constant_str(key)
            item_text = constant_str(item)
            if key_text is None or item_text is None:
                break
            entries[key_text] = item_text
        else:
            if entries:
                table[target.id] = entries
    return table


def module_assign_value(module: ModuleInfo, name: str) -> ast.expr | None:
    """RHS of the module-level assignment to *name*, if any."""
    for target, value in _module_assignments(module):
        if isinstance(target, ast.Name) and target.id == name:
            return value
    return None


def resolve_str(node: ast.AST | None, constants: dict[str, str]) -> str | None:
    """A string expression: literal, or a module-level string constant."""
    text = constant_str(node)
    if text is not None:
        return text
    if isinstance(node, ast.Name):
        return constants.get(node.id)
    return None


def functions_in_module(
    project: ProjectModel, module: ModuleInfo
) -> list[FunctionInfo]:
    """Every function/method defined in *module* (nested defs included)."""
    return [fn for fn in project.functions.values() if fn.module is module]


def functions_named(
    project: ProjectModel, module: ModuleInfo, name: str
) -> list[FunctionInfo]:
    """Functions/methods in *module* with the simple name *name*."""
    return [fn for fn in functions_in_module(project, module) if fn.name == name]


def emit_call_sites(
    graph: CallGraph, module: ModuleInfo
) -> list[ast.Call]:
    """Every ``emit(...)`` call in *module*, found through import aliases."""
    sites: list[ast.Call] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        if dotted is None:
            continue
        resolved = graph.resolver.resolve_dotted_in_module(module, dotted)
        if resolved in EMIT_QNAMES:
            sites.append(node)
    return sites


def emit_name_candidates(
    call: ast.Call, module: ModuleInfo, graph: CallGraph
) -> tuple[str, ...] | None:
    """Possible event names at one emit site, or ``None`` when dynamic.

    A constant string is a single candidate.  A subscript of the
    manifest's breaker table (or of a module-level string-to-string dict
    constant) yields the table's values.  Anything else is dynamic and
    out of static reach.
    """
    if not call.args:
        return None
    name_expr = call.args[0]
    text = constant_str(name_expr)
    if text is not None:
        return (text,)
    if isinstance(name_expr, ast.Subscript):
        base = dotted_name(name_expr.value)
        if base is not None:
            if _is_breaker_table(name_expr.value, module, graph):
                from repro.contracts import BREAKER_EVENT_BY_STATE

                return tuple(sorted(BREAKER_EVENT_BY_STATE.values()))
            if isinstance(name_expr.value, ast.Name):
                local = module_str_dicts(module).get(name_expr.value.id)
                if local:
                    return tuple(sorted(local.values()))
    return None


def _is_breaker_table(
    expr: ast.expr, module: ModuleInfo, graph: CallGraph
) -> bool:
    """Whether *expr* denotes the manifest's breaker-event table.

    Either directly (``contracts.BREAKER_EVENT_BY_STATE``) or through a
    module-level alias (``_BREAKER_EVENTS = contracts.BREAKER_EVENT_BY_STATE``).
    """
    dotted = dotted_name(expr)
    if dotted is None:
        return False
    resolved = graph.resolver.resolve_dotted_in_module(module, dotted)
    if resolved == BREAKER_EVENT_TABLE:
        return True
    if isinstance(expr, ast.Name):
        value = module_assign_value(module, expr.id)
        if value is not None:
            alias = dotted_name(value)
            if alias is not None:
                return (
                    graph.resolver.resolve_dotted_in_module(module, alias)
                    == BREAKER_EVENT_TABLE
                )
    return False
