"""The DISC rule catalog (system S24).

Each rule turns one of the repo's algorithmic invariants into a
machine-checked static property:

* **DISC001** — the DISC discovery loop must stay free of support
  counting (Lemmas 2.1/2.2 are the whole point of the paper);
* **DISC002** — sorts over mining data (in core/, mining/ and the
  service layer) must declare their key, because the default tuple
  order on raw sequences is *not* the comparative order of
  Definition 2.2;
* **DISC003** — canonical ``RawSequence``/``FlatSequence`` values are
  immutable after construction;
* **DISC004** — ``core/`` dataclasses declare ``slots=True`` (the hot
  path allocates them by the million);
* **DISC005** — mining code paths never swallow exceptions silently;
* **DISC006** — ``core/`` reports telemetry only through the no-op-able
  :mod:`repro.obs` API, never via ``print`` or ``logging``;
* **DISC007** — failure injection goes only through the
  :mod:`repro.faults` API; ad-hoc ``if TESTING:``-style branches and
  direct fault-flag environment probes are banned;
* **LINT001** — suppression comments must name a registered rule.

Suppress any rule on one line with ``# repro: allow[RULEID]`` (same line
or a standalone comment on the line above).
"""

from __future__ import annotations

import ast

from repro.analysis.visitor import (
    LintContext,
    Rule,
    iter_subtree,
    known_rule_ids,
    register,
)

#: Names of the support-counting primitives (see repro.core.counting and
#: repro.core.sequence.support_count).
_COUNTING_NAMES = frozenset(
    {"CountingArray", "count_frequent_items", "support_count"}
)
#: Method names that accumulate support counts on a counting array.
_COUNTING_METHODS = frozenset({"observe", "observe_all"})

#: Annotations naming the canonical immutable sequence types.
_CANONICAL_TYPES = frozenset({"RawSequence", "FlatSequence", "Transaction"})
#: list-like in-place mutators that must never run on canonical values.
_MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse"}
)


@register
class NoCountingInDiscLoop(Rule):
    """DISC001: no support counting inside the DISC discovery loop."""

    rule_id = "DISC001"
    title = "no support counting inside the DISC discovery loop"
    rationale = (
        "The paper's headline claim (Lemmas 2.1/2.2) is that frequent "
        "k-sequences are discovered by comparing alpha_1 with alpha_delta, "
        "never by counting the support of non-frequent candidates.  Counting "
        "primitives are sanctioned only outside the loop: in the bi-level "
        "virtual-partition block and in the pre-DISC partitioning steps."
    )
    scopes = ("core/disc", "core/dynamic", "core/discall")

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not ctx.inside(ast.While):
            return
        if isinstance(node, ast.Name) and node.id in _COUNTING_NAMES:
            ctx.report(
                self,
                node,
                f"support-counting primitive {node.id!r} inside the DISC "
                "discovery loop; Lemmas 2.1/2.2 make the loop count-free — "
                "move counting to the sanctioned bi-level block",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _COUNTING_METHODS
        ):
            ctx.report(
                self,
                node,
                f"counting-array method .{node.func.attr}() called inside "
                "the DISC discovery loop; counting belongs to the sanctioned "
                "bi-level block, not the comparison loop",
            )


@register
class SortsMustDeclareKey(Rule):
    """DISC002: sorts in mining code must declare an explicit key."""

    rule_id = "DISC002"
    title = "sorts in core/, mining/, service/ and cluster/ must declare an explicit key"
    rationale = (
        "The comparative order of Definition 2.2 is the lexicographic order "
        "on *flattened* (item, transaction_number) pairs — which differs "
        "from the default tuple order on nested raw sequences.  Every sort "
        "over sequences must therefore key on repro.core.order.sort_key (or "
        "an explicitly chosen key); sorts over scalars document themselves "
        "with a suppression comment.  The service layer handles the same "
        "pattern maps (cache entries, job payloads), so it is in scope too."
    )
    scopes = ("core/", "mining/", "service/", "cluster/")

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        is_sorted = isinstance(func, ast.Name) and func.id == "sorted"
        is_sort = isinstance(func, ast.Attribute) and func.attr == "sort"
        if not (is_sorted or is_sort):
            return
        if any(keyword.arg == "key" for keyword in node.keywords):
            return
        what = "sorted()" if is_sorted else ".sort()"
        ctx.report(
            self,
            node,
            f"default-ordered {what} in mining code: raw-sequence tuple "
            "order is not the comparative order — pass "
            "key=repro.core.order.sort_key (or an explicit key), or mark a "
            "scalar sort with '# repro: allow[DISC002]'",
        )


def _annotation_names(annotation: ast.expr | None) -> frozenset[str]:
    """Type names reachable in an annotation expression.

    Understands plain names, dotted names, string annotations and PEP 604
    unions (``RawSequence | None``); deliberately does *not* descend into
    subscripts, so ``list[RawSequence]`` is a list, not a canonical value.
    """
    if annotation is None:
        return frozenset()
    if isinstance(annotation, ast.Name):
        return frozenset({annotation.id})
    if isinstance(annotation, ast.Attribute):
        return frozenset({annotation.attr})
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return frozenset({part.strip() for part in annotation.value.split("|")})
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_names(annotation.left) | _annotation_names(
            annotation.right
        )
    return frozenset()


@register
class NoCanonicalMutation(Rule):
    """DISC003: canonical sequence values are immutable after construction."""

    rule_id = "DISC003"
    title = "no mutation of canonical RawSequence/FlatSequence values"
    rationale = (
        "Every database member and pattern is a canonical tuple-of-tuples; "
        "the k-sorted database, the partition queues and the result maps "
        "all share these values by reference.  Mutating one (or treating "
        "it as a list) would corrupt the comparative order everywhere at "
        "once, so names annotated with a canonical type must never be "
        "subscript-assigned or mutated in place."
    )

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if isinstance(node, ast.Module):
            self._scan(node, self._module_level_names(node), ctx)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan(node, self._function_names(node), ctx)

    @staticmethod
    def _is_canonical(annotation: ast.expr | None) -> bool:
        return bool(_annotation_names(annotation) & _CANONICAL_TYPES)

    def _function_names(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> set[str]:
        """Names bound to a canonical type inside one function."""
        args = func.args
        every_arg = [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        names = {
            arg.arg for arg in every_arg if self._is_canonical(arg.annotation)
        }
        for inner in iter_subtree(func, skip_functions=True):
            if (
                isinstance(inner, ast.AnnAssign)
                and isinstance(inner.target, ast.Name)
                and self._is_canonical(inner.annotation)
            ):
                names.add(inner.target.id)
        return names

    def _module_level_names(self, module: ast.Module) -> set[str]:
        """Module-level names annotated with a canonical type."""
        return {
            stmt.target.id
            for stmt in module.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and self._is_canonical(stmt.annotation)
        }

    def _scan(self, root: ast.AST, names: set[str], ctx: LintContext) -> None:
        """Report mutations of *names* directly inside *root*'s scope."""
        if not names:
            return
        for node in iter_subtree(root, skip_functions=True):
            if node is not root and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # their own visit covers them
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names
            ):
                ctx.report(
                    self,
                    node,
                    f"in-place .{node.func.attr}() on canonical value "
                    f"{node.func.value.id!r}; canonical sequences are "
                    "immutable tuples — build a new value instead",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets: list[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                else:
                    targets = node.targets
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in names
                    ):
                        ctx.report(
                            self,
                            target,
                            f"item assignment into canonical value "
                            f"{target.value.id!r}; canonical sequences are "
                            "immutable after construction",
                        )


def _dataclass_decorator(decorator: ast.expr) -> ast.Call | ast.expr | None:
    """The decorator node when it is (a call of) ``dataclass``."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Name) and target.id == "dataclass":
        return decorator
    if isinstance(target, ast.Attribute) and target.attr == "dataclass":
        return decorator
    return None


@register
class CoreDataclassesDeclareSlots(Rule):
    """DISC004: dataclasses in core/ must declare slots=True."""

    rule_id = "DISC004"
    title = "core/ dataclasses must declare slots=True"
    rationale = (
        "The DISC inner loop allocates core dataclasses (sorted entries, "
        "result records) per customer sequence per round; __dict__-backed "
        "instances cost ~3x the memory and measurably slow attribute "
        "access.  Every dataclass in core/ therefore declares slots=True."
    )
    scopes = ("core/",)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.ClassDef):
            return
        for decorator in node.decorator_list:
            found = _dataclass_decorator(decorator)
            if found is None:
                continue
            slots_on = isinstance(found, ast.Call) and any(
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in found.keywords
            )
            if not slots_on:
                ctx.report(
                    self,
                    node,
                    f"dataclass {node.name!r} in core/ must declare "
                    "slots=True (hot-path allocation)",
                )


@register
class NoSilentExceptions(Rule):
    """DISC005: no bare except / silent pass in mining code paths."""

    rule_id = "DISC005"
    title = "no bare except or silent pass in mining code paths"
    rationale = (
        "A swallowed exception in the mining path turns a correctness bug "
        "into silently missing patterns.  Handlers must name the exception "
        "type and do something observable (re-raise, record, or return a "
        "sentinel).  In the service layer a swallowed exception is worse "
        "still: a job that never reaches a terminal state hangs its client "
        "forever, so service/ is in scope too."
    )
    scopes = ("core/", "mining/", "service/", "cluster/")

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if not isinstance(node, ast.ExceptHandler):
            return
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare 'except:' in mining code; name the exception type",
            )
        elif all(isinstance(stmt, ast.Pass) for stmt in node.body):
            ctx.report(
                self,
                node,
                "exception handler swallows silently (body is only 'pass'); "
                "re-raise, record, or return a sentinel",
            )


@register
class ObservabilityThroughObsApi(Rule):
    """DISC006: core/ telemetry goes through repro.obs, never stdout/logging."""

    rule_id = "DISC006"
    title = "core/ instrumentation must use the no-op-able repro.obs API"
    rationale = (
        "The instrumentation contract (docs/DEVELOPMENT.md, Observability) "
        "is that core/ stays allocation-free when nobody observes: metrics "
        "and spans go through repro.obs, whose disabled path is shared "
        "no-op singletons.  print() and the logging module break that "
        "contract — they format and emit unconditionally, cost time on the "
        "hot path, and cannot be captured into a RunReport."
    )
    scopes = ("core/",)

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            ctx.report(
                self,
                node,
                "print() in core/; report through the active observation "
                "(repro.obs.active().metrics / .tracer) so disabled runs "
                "stay silent and free",
            )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "logging" or alias.name.startswith("logging."):
                    ctx.report(
                        self,
                        node,
                        "logging imported in core/; instrument through "
                        "repro.obs instead (its no-op default keeps the "
                        "uninstrumented hot path allocation-free)",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "logging" or module.startswith("logging."):
                ctx.report(
                    self,
                    node,
                    "logging imported in core/; instrument through "
                    "repro.obs instead (its no-op default keeps the "
                    "uninstrumented hot path allocation-free)",
                )


#: Name fragments (``_``-separated tokens) that mark a fault/test flag.
_FAULT_FLAG_TOKENS = frozenset({"TESTING", "FAULT", "FAULTS", "CHAOS"})


def _is_fault_flag_name(name: str) -> bool:
    """True for ALL-UPPERCASE names like TESTING or ENABLE_FAULTS.

    Token-wise matching avoids false positives on names that merely
    contain a fragment (``DEFAULT`` is not ``FAULT``).
    """
    if not name.isupper():
        return False
    return bool(set(name.split("_")) & _FAULT_FLAG_TOKENS)


def _env_lookup_key(node: ast.AST) -> ast.expr | None:
    """The key expression of an ``os.environ`` / ``os.getenv`` lookup."""
    if isinstance(node, ast.Call):
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        # os.getenv(KEY) / os.environ.get(KEY)
        is_getenv = func.attr == "getenv"
        is_environ_get = (
            func.attr == "get"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "environ"
        )
        if (is_getenv or is_environ_get) and node.args:
            return node.args[0]
        return None
    if isinstance(node, ast.Subscript):
        # os.environ[KEY]
        if isinstance(node.value, ast.Attribute) and node.value.attr == "environ":
            return node.slice
    return None


@register
class FaultsOnlyThroughFaultsApi(Rule):
    """DISC007: failure injection only through the repro.faults API."""

    rule_id = "DISC007"
    title = "failure injection must go through the repro.faults API"
    rationale = (
        "Crash-recovery guarantees are only as good as the faults they "
        "were tested against.  repro.faults makes injection deterministic "
        "(seeded, replayable, inert when disarmed) and auditable (every "
        "site is a named fault_point).  An ad-hoc 'if TESTING:' branch or "
        "a direct fault-flag environment probe is neither: it ships "
        "test-only control flow nobody can enumerate, arm deterministically "
        "or prove disabled in production."
    )

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        if ctx.rel_path == "faults.py":
            return  # the sanctioned implementation itself
        if isinstance(node, ast.If):
            for inner in iter_subtree(node.test):
                if isinstance(inner, ast.Name) and _is_fault_flag_name(inner.id):
                    ctx.report(
                        self,
                        inner,
                        f"ad-hoc fault/test flag {inner.id!r} guards a code "
                        "branch; inject failures through a named "
                        "repro.faults.fault_point(...) site instead",
                    )
        key = _env_lookup_key(node)
        if (
            key is not None
            and isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and _is_fault_flag_name(key.value.upper())
        ):
            ctx.report(
                self,
                node,
                f"direct environment probe for fault flag {key.value!r}; "
                "only repro.faults reads the fault-injection environment "
                "(arm a FaultPlan and use fault_point sites)",
            )


@register
class SuppressionsNameKnownRules(Rule):
    """LINT001: suppression comments must name registered rules."""

    rule_id = "LINT001"
    title = "suppression comments must name a registered rule"
    rationale = (
        "A '# repro: allow[...]' comment naming an unknown rule id "
        "suppresses nothing and rots silently; the id is probably a typo."
    )

    def finish_module(self, ctx: LintContext) -> None:
        known = known_rule_ids()
        for line, ids in sorted(ctx.allow_comments.items()):
            for rule_id in sorted(ids):
                if rule_id not in known:
                    ctx.report_at(
                        self,
                        line,
                        0,
                        f"suppression names unknown rule id {rule_id!r}",
                    )


#: The default rule set, in catalog order (import side effect: the
#: @register decorators above populate the registry).
def default_rule_ids() -> tuple[str, ...]:
    """Rule ids enabled by default (all registered rules)."""
    return tuple(sorted(known_rule_ids()))
