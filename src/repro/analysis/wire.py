"""WIRE rules: wire-protocol conformance against the contract manifest.

Every contract the distributed system speaks — structured events, JSON
wire schemas, the error taxonomy, metric names — is declared once in
:mod:`repro.contracts`.  The four rules here check both sides of each
contract against that manifest:

WIRE001  every ``emit(...)`` site uses a declared event name and
         supplies exactly the declared fields (required present,
         nothing undeclared).

WIRE002  JSON keys written by producers (dict literals, ``d["k"] =``)
         and keys read by consumers (``.get("k")``, ``d["k"]``,
         ``"k" in d``) inside the declared anchor functions must all
         belong to a declared schema, and — when every anchor module is
         present — the anchors together must cover the schema: a
         declared key nobody writes, or a ``read`` key nobody reads, is
         a dropped half of the contract.

WIRE003  the ``_ERROR_STATUS`` table in ``service/http.py`` must match
         ``contracts.ERROR_TAXONOMY`` row for row, every taxonomy class
         must exist, and the retry deciders (``supervise.classify``,
         the worker shard path, the coordinator's ``_http_error``) must
         route through the manifest helpers rather than re-deriving
         retryability locally.

WIRE004  every literal metric name produced anywhere in the project is
         declared with the right kind and labels, declared metrics with
         all their producer modules present are actually produced, and
         the ``bench/compare.py`` invariant list matches the metrics
         declared as its consumers.

Anchors are declarative: :data:`WIRE_ANCHORS` lists, per module, which
functions (or module constants) speak which schema in which direction.
A missing anchor in a present module is itself a finding — deleting a
producer or consumer does not silently shrink the checked surface.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro import contracts
from repro.analysis.callgraph import CallGraph, dotted_name
from repro.analysis.contracts_rules import (
    constant_str,
    emit_call_sites,
    emit_name_candidates,
    functions_named,
    module_assign_value,
    module_str_constants,
)
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProjectModel
from repro.analysis.visitor import ProjectRule, register_project

#: modules that define the contracts rather than speak them
EVENTS_MODULE = "obs/events.py"
CONTRACTS_MODULE = "contracts.py"

HTTP_MODULE = "service/http.py"
SUPERVISE_MODULE = "service/supervise.py"
WORKER_MODULE = "cluster/worker.py"
COORDINATOR_MODULE = "cluster/coordinator.py"
ERROR_TABLE = "_ERROR_STATUS"

#: exception-class modules; when both are present WIRE003 demands every
#: taxonomy row's class actually exists
ERROR_CLASS_MODULES = ("exceptions.py", "service/errors.py")


def _carries_manifest(project: ProjectModel) -> bool:
    """Whether the analysed tree opts into the contract gates.

    The WIRE/STATE families judge code against the live manifest, so
    they run only when the tree being analysed carries the manifest
    module itself — ``src`` always does; fixture packages opt in with a
    ``repro/contracts.py`` marker.  Without this gate every fixture tree
    that mimics a real module path (``repro/core/disc.py`` for HOT001,
    ``repro/service/http.py`` for FLOW001) would be judged as a drifted
    copy of the real thing.
    """
    return CONTRACTS_MODULE in project.modules_by_rel


@register_project
class EmitContractRule(ProjectRule):
    """WIRE001: emit sites must match the declared event vocabulary."""

    rule_id = "WIRE001"
    title = "emit() site disagrees with the declared event vocabulary"
    rationale = (
        "Structured events are a wire format: the soak grader, journal "
        "replay and obs-smoke all key on event names and fields.  An "
        "undeclared name or field set silently breaks those consumers."
    )
    scopes = ()

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        if not _carries_manifest(project):
            return []
        findings: list[Finding] = []
        auto = set(contracts.AUTO_FIELDS)
        envelope = set(contracts.ENVELOPE_PARAMS)
        for module in project.modules.values():
            if module.rel_path in (EVENTS_MODULE, CONTRACTS_MODULE):
                continue
            for call in emit_call_sites(graph, module):
                names = emit_name_candidates(call, module, graph)
                if names is None:
                    continue  # dynamic event name; out of static reach
                if any(kw.arg is None for kw in call.keywords):
                    continue  # **fields splat; out of static reach
                provided = {
                    kw.arg for kw in call.keywords if kw.arg is not None
                } - {"level"}
                for name in names:
                    spec = contracts.EVENTS.get(name)
                    if spec is None:
                        findings.append(
                            Finding(
                                self.rule_id,
                                module.path,
                                call.lineno,
                                call.col_offset,
                                f"emit of event {name!r} not declared in "
                                "contracts.EVENTS",
                            )
                        )
                        continue
                    missing = sorted(set(spec.required) - provided - auto)
                    extras = sorted(
                        provided
                        - set(spec.required)
                        - set(spec.optional)
                        - envelope
                    )
                    if missing:
                        findings.append(
                            Finding(
                                self.rule_id,
                                module.path,
                                call.lineno,
                                call.col_offset,
                                f"emit of {name!r} misses declared required "
                                f"field(s) {', '.join(missing)}",
                            )
                        )
                    if extras:
                        findings.append(
                            Finding(
                                self.rule_id,
                                module.path,
                                call.lineno,
                                call.col_offset,
                                f"emit of {name!r} supplies undeclared "
                                f"field(s) {', '.join(extras)}",
                            )
                        )
        return sorted(findings, key=Finding.sort_index)


@dataclass(frozen=True)
class WireAnchor:
    """One function (or module constant) that speaks a wire schema."""

    module: str
    name: str
    produces: tuple[str, ...] = ()
    consumes: tuple[str, ...] = ()


#: which code speaks which schema, in which direction.  Keys collected
#: inside an anchor must belong to one of its schemas; together the
#: anchors must cover each schema's declared keys.
WIRE_ANCHORS: tuple[WireAnchor, ...] = (
    # service HTTP surface
    WireAnchor(HTTP_MODULE, "_INDEX", produces=("index",)),
    WireAnchor(HTTP_MODULE, "_NOT_FOUND", produces=("error",)),
    WireAnchor(HTTP_MODULE, "_error_payload", produces=("error",)),
    WireAnchor(HTTP_MODULE, "_send_error", produces=("error",), consumes=("error",)),
    WireAnchor(HTTP_MODULE, "job_payload", produces=("job",)),
    WireAnchor(HTTP_MODULE, "do_GET", produces=("job",)),
    WireAnchor(
        HTTP_MODULE, "do_DELETE", produces=("database_admin",), consumes=("membership",)
    ),
    WireAnchor(HTTP_MODULE, "_get_metrics", produces=("metrics",), consumes=("metrics",)),
    WireAnchor(
        HTTP_MODULE, "_post_mine", produces=("mine_submit",), consumes=("mine_submit",)
    ),
    WireAnchor(
        HTTP_MODULE,
        "_post_database",
        produces=("database_admin",),
        consumes=("database_admin",),
    ),
    WireAnchor(HTTP_MODULE, "_worker_url", consumes=("membership",)),
    # service facade
    WireAnchor("service/service.py", "health", produces=("health",), consumes=("membership",)),
    WireAnchor("service/service.py", "heartbeat_worker", produces=("membership",)),
    WireAnchor("service/service.py", "deregister_worker", produces=("membership",)),
    WireAnchor("service/service.py", "workers_detail", produces=("membership",)),
    # membership table
    WireAnchor("cluster/membership.py", "register", produces=("membership",)),
    WireAnchor("cluster/membership.py", "describe", produces=("membership",)),
    WireAnchor("cluster/membership.py", "counts", produces=("membership",)),
    # worker HTTP surface and coordinator link
    WireAnchor(WORKER_MODULE, "health", produces=("health",)),
    WireAnchor(WORKER_MODULE, "_error_doc", produces=("error",)),
    WireAnchor(WORKER_MODULE, "_get_metrics", produces=("metrics",), consumes=("metrics",)),
    WireAnchor(WORKER_MODULE, "_INDEX", produces=("index",)),
    WireAnchor(WORKER_MODULE, "_NOT_FOUND", produces=("error",)),
    WireAnchor(
        WORKER_MODULE, "register", produces=("membership",), consumes=("membership",)
    ),
    WireAnchor(WORKER_MODULE, "heartbeat", produces=("membership",)),
    WireAnchor(WORKER_MODULE, "status", produces=("health",)),
    # coordinator client side
    WireAnchor(COORDINATOR_MODULE, "healthy", consumes=("health",)),
    WireAnchor(COORDINATOR_MODULE, "_http_error", consumes=("error",)),
    WireAnchor(COORDINATOR_MODULE, "_absorb_worker_report", consumes=("metrics",)),
    # shard wire format
    WireAnchor("cluster/payload.py", "to_dict", produces=("shard_payload",)),
    WireAnchor("cluster/payload.py", "from_dict", consumes=("shard_payload",)),
    WireAnchor("cluster/payload.py", "encode_shard_result", produces=("shard_result",)),
    WireAnchor("cluster/payload.py", "decode_shard_result", consumes=("shard_result",)),
    # metrics snapshot and renderers
    WireAnchor("obs/metrics.py", "snapshot", produces=("metrics",)),
    WireAnchor("obs/prometheus.py", "render_prometheus", consumes=("metrics",)),
    # journal records
    WireAnchor("service/journal.py", "append", consumes=("journal",)),
    WireAnchor("service/journal.py", "absorb", consumes=("journal",)),
    WireAnchor("service/journal.py", "replay_journal", consumes=("journal",)),
    # soak grader
    WireAnchor("bench/soak_report.py", "classify_outcome", consumes=("soak_report",)),
    WireAnchor(
        "bench/soak_report.py",
        "transition_log",
        produces=("soak_report",),
        consumes=("soak_report",),
    ),
    WireAnchor(
        "bench/soak_report.py",
        "recovery_latencies",
        produces=("soak_report",),
        consumes=("soak_report",),
    ),
    WireAnchor(
        "bench/soak_report.py",
        "build_report",
        produces=("soak_report",),
        consumes=("soak_report",),
    ),
    WireAnchor("bench/soak_report.py", "render_report", consumes=("soak_report",)),
    # bench verdict
    WireAnchor("bench/compare.py", "load_baseline", consumes=("bench_verdict",)),
    WireAnchor("bench/compare.py", "_run_key", consumes=("bench_verdict",)),
    WireAnchor(
        "bench/compare.py",
        "compare_documents",
        produces=("bench_verdict",),
        consumes=("bench_verdict",),
    ),
    WireAnchor("bench/compare.py", "render_verdict", consumes=("bench_verdict",)),
    WireAnchor("bench/baseline.py", "_condense", produces=("bench_verdict",)),
    WireAnchor("bench/baseline.py", "collect_baseline", produces=("bench_verdict",)),
    WireAnchor("cli.py", "_cmd_bench", consumes=("bench_verdict",)),
    # out-of-tree client: the chaos soak
    WireAnchor(
        "scripts/soak.py", "poll_job", produces=("job",), consumes=("job",)
    ),
    WireAnchor("scripts/soak.py", "load_reference", consumes=("job",)),
    WireAnchor(
        "scripts/soak.py",
        "run_job",
        produces=("mine_submit", "soak_report"),
        consumes=("job", "mine_submit", "soak_report"),
    ),
    WireAnchor(
        "scripts/soak.py",
        "main",
        produces=("soak_report",),
        consumes=("soak_report", "membership", "health"),
    ),
)

#: schemas whose producer side lives outside the anchors (the journal's
#: writer threads record-specific ``**fields`` through one chokepoint)
PRODUCER_COVERAGE_EXEMPT = frozenset({"journal"})


def _anchor_roots(
    project: ProjectModel, module: ModuleInfo, name: str
) -> list[ast.AST]:
    """AST roots for an anchor: its function bodies or constant value."""
    functions = functions_named(project, module, name)
    if functions:
        return [fn.node for fn in functions]
    value = module_assign_value(module, name)
    return [value] if value is not None else []


def _collect_keys(
    root: ast.AST, constants: dict[str, str]
) -> tuple[list[tuple[str, ast.AST]], list[tuple[str, ast.AST]]]:
    """(produced, consumed) string keys with their nodes under *root*.

    Only identifier-shaped strings count: wire keys are identifiers, so
    mime types (``"text/plain" in accept``) and other value-position
    strings fall out naturally.
    """
    produced: list[tuple[str, ast.AST]] = []
    consumed: list[tuple[str, ast.AST]] = []
    for node in ast.walk(root):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is None:
                    continue  # ** merge
                text = constant_str(key)
                if text is None and isinstance(key, ast.Name):
                    text = constants.get(key.id)
                if text is not None:
                    produced.append((text, key))
        elif isinstance(node, ast.Subscript):
            text = constant_str(node.slice)
            if text is None:
                continue
            if isinstance(node.ctx, ast.Store):
                produced.append((text, node))
            elif isinstance(node.ctx, ast.Load):
                consumed.append((text, node))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and node.args
            ):
                receiver = dotted_name(func.value)
                if receiver is not None and receiver.endswith("environ"):
                    continue
                text = constant_str(node.args[0])
                if text is not None:
                    consumed.append((text, node))
        elif isinstance(node, ast.Compare):
            if len(node.ops) == 1 and isinstance(
                node.ops[0], (ast.In, ast.NotIn)
            ):
                text = constant_str(node.left)
                if text is not None:
                    consumed.append((text, node))
    produced = [(key, node) for key, node in produced if key.isidentifier()]
    consumed = [(key, node) for key, node in consumed if key.isidentifier()]
    return produced, consumed


@register_project
class WireSchemaRule(ProjectRule):
    """WIRE002: anchored JSON keys must resolve to a declared schema."""

    rule_id = "WIRE002"
    title = "JSON key outside its declared wire schema"
    rationale = (
        "Producer-only keys are payload nobody reads; consumer-only keys "
        "are reads that can only ever see None.  Both are contract drift "
        "between the HTTP handlers and their clients."
    )
    scopes = ()

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        if not _carries_manifest(project):
            return []
        findings: list[Finding] = []
        header_keys = set(contracts.WIRE_HEADER_KEYS)
        # per schema: keys seen on each side, whether every declared
        # anchor was inspectable, and a location to pin coverage findings
        produced_seen: dict[str, set[str]] = {}
        consumed_seen: dict[str, set[str]] = {}
        produced_complete: dict[str, bool] = {}
        consumed_complete: dict[str, bool] = {}
        anchor_at: dict[str, tuple[str, int]] = {}

        for anchor in WIRE_ANCHORS:
            module = project.modules_by_rel.get(anchor.module)
            if module is None:
                for name in anchor.produces:
                    produced_complete[name] = False
                for name in anchor.consumes:
                    consumed_complete[name] = False
                continue
            roots = _anchor_roots(project, module, anchor.name)
            if not roots:
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        1,
                        0,
                        f"wire anchor {anchor.name!r} declared for "
                        f"schema(s) {', '.join(sorted(set(anchor.produces) | set(anchor.consumes)))} "
                        f"no longer exists in {anchor.module}",
                    )
                )
                for name in anchor.produces:
                    produced_complete[name] = False
                for name in anchor.consumes:
                    consumed_complete[name] = False
                continue
            constants = module_str_constants(module)
            schemas = [
                contracts.WIRE_SCHEMAS[name]
                for name in set(anchor.produces) | set(anchor.consumes)
            ]
            legal: set[str] = set()
            for spec in schemas:
                legal |= set(spec.keys) | set(spec.accepted)
            produced: list[tuple[str, ast.AST]] = []
            consumed: list[tuple[str, ast.AST]] = []
            for root in roots:
                got, want = _collect_keys(root, constants)
                produced.extend(got)
                consumed.extend(want)
            seen_here: set[tuple[int, int, str, str]] = set()
            for direction, pairs in (("writes", produced), ("reads", consumed)):
                for key, node in pairs:
                    if key in header_keys or key in legal:
                        continue
                    line = getattr(node, "lineno", 1)
                    col = getattr(node, "col_offset", 0)
                    mark = (line, col, direction, key)
                    if mark in seen_here:
                        continue
                    seen_here.add(mark)
                    findings.append(
                        Finding(
                            self.rule_id,
                            module.path,
                            line,
                            col,
                            f"{anchor.name} {direction} key {key!r} not in "
                            "declared schema(s) "
                            f"{', '.join(sorted(spec.name for spec in schemas))}",
                        )
                    )
            for name in anchor.produces:
                produced_seen.setdefault(name, set()).update(
                    key for key, _ in produced
                )
                produced_complete.setdefault(name, True)
                anchor_at.setdefault(name, (module.path, 1))
            for name in anchor.consumes:
                consumed_seen.setdefault(name, set()).update(
                    key for key, _ in consumed
                )
                consumed_complete.setdefault(name, True)
                anchor_at.setdefault(name, (module.path, 1))

        for name, spec in contracts.WIRE_SCHEMAS.items():
            if produced_complete.get(name) and name not in PRODUCER_COVERAGE_EXEMPT:
                missing = sorted(set(spec.keys) - produced_seen.get(name, set()))
                if missing:
                    path, line = anchor_at[name]
                    findings.append(
                        Finding(
                            self.rule_id,
                            path,
                            line,
                            0,
                            f"schema {name!r} declares key(s) "
                            f"{', '.join(missing)} that no producer anchor "
                            "writes",
                        )
                    )
            if consumed_complete.get(name):
                unread = sorted(set(spec.read) - consumed_seen.get(name, set()))
                if unread:
                    path, line = anchor_at[name]
                    findings.append(
                        Finding(
                            self.rule_id,
                            path,
                            line,
                            0,
                            f"schema {name!r} declares load-bearing key(s) "
                            f"{', '.join(unread)} that no consumer anchor "
                            "reads",
                        )
                    )
        return sorted(findings, key=Finding.sort_index)


@register_project
class ErrorTaxonomyRule(ProjectRule):
    """WIRE003: the error taxonomy has one source of truth."""

    rule_id = "WIRE003"
    title = "error taxonomy drift between code and contracts"
    rationale = (
        "Retries key on status and the retryable flag; a drifted "
        "_ERROR_STATUS row or a locally re-derived retry decision makes "
        "the coordinator retry what the service declared permanent."
    )
    scopes = ("service/", "cluster/")

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        if not _carries_manifest(project):
            return []
        findings: list[Finding] = []
        http = project.modules_by_rel.get(HTTP_MODULE)
        if http is not None:
            findings.extend(self._check_status_table(http))
        supervise = project.modules_by_rel.get(SUPERVISE_MODULE)
        if supervise is not None:
            findings.extend(
                self._require_call(
                    project,
                    graph,
                    supervise,
                    "classify",
                    "repro.contracts.is_retryable",
                    "classify() must derive retryability from "
                    "contracts.is_retryable, not a local table",
                )
            )
        coordinator = project.modules_by_rel.get(COORDINATOR_MODULE)
        if coordinator is not None:
            findings.extend(
                self._require_call(
                    project,
                    graph,
                    coordinator,
                    "_http_error",
                    "repro.contracts.retryable_for_status",
                    "_http_error() must take its default retryability from "
                    "contracts.retryable_for_status",
                )
            )
        worker = project.modules_by_rel.get(WORKER_MODULE)
        if worker is not None:
            findings.extend(self._check_worker(project, graph, worker))
        if all(
            rel in project.modules_by_rel for rel in ERROR_CLASS_MODULES
        ):
            findings.extend(self._check_classes_exist(project))
        return sorted(findings, key=Finding.sort_index)

    def _check_status_table(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        value = module_assign_value(module, ERROR_TABLE)
        if not isinstance(value, (ast.Tuple, ast.List)):
            return [
                Finding(
                    self.rule_id,
                    module.path,
                    1,
                    0,
                    f"{HTTP_MODULE} no longer defines the {ERROR_TABLE} "
                    "tuple declared by contracts.ERROR_TAXONOMY",
                )
            ]
        declared = contracts.ERROR_TAXONOMY
        for index, row in enumerate(value.elts):
            line = row.lineno
            col = row.col_offset
            parsed = self._parse_row(row)
            if parsed is None:
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        line,
                        col,
                        f"{ERROR_TABLE} row {index} is not a literal "
                        "(class, status, code) tuple",
                    )
                )
                continue
            if index >= len(declared):
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        line,
                        col,
                        f"{ERROR_TABLE} row ({parsed[0]}, {parsed[1]}, "
                        f"{parsed[2]!r}) has no contracts.ERROR_TAXONOMY "
                        "entry",
                    )
                )
                continue
            rule = declared[index]
            expected = (rule.exception, rule.status, rule.code)
            if parsed != expected:
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        line,
                        col,
                        f"{ERROR_TABLE} row {index} is ({parsed[0]}, "
                        f"{parsed[1]}, {parsed[2]!r}) but "
                        f"contracts.ERROR_TAXONOMY declares ({expected[0]}, "
                        f"{expected[1]}, {expected[2]!r})",
                    )
                )
        if len(value.elts) < len(declared):
            missing = ", ".join(
                rule.exception for rule in declared[len(value.elts):]
            )
            findings.append(
                Finding(
                    self.rule_id,
                    module.path,
                    value.lineno,
                    value.col_offset,
                    f"{ERROR_TABLE} is missing declared row(s) for {missing}",
                )
            )
        return findings

    @staticmethod
    def _parse_row(row: ast.expr) -> tuple[str, int, str] | None:
        if not isinstance(row, ast.Tuple) or len(row.elts) != 3:
            return None
        klass = dotted_name(row.elts[0])
        status = row.elts[1]
        code = constant_str(row.elts[2])
        if (
            klass is None
            or code is None
            or not isinstance(status, ast.Constant)
            or not isinstance(status.value, int)
        ):
            return None
        return (klass.rsplit(".", 1)[-1], status.value, code)

    def _require_call(
        self,
        project: ProjectModel,
        graph: CallGraph,
        module: ModuleInfo,
        fn_name: str,
        target: str,
        message: str,
    ) -> list[Finding]:
        functions = functions_named(project, module, fn_name)
        if not functions:
            return [
                Finding(
                    self.rule_id,
                    module.path,
                    1,
                    0,
                    f"{module.rel_path} no longer defines {fn_name}(), the "
                    "declared retry-decision chokepoint",
                )
            ]
        for fn in functions:
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if graph.resolver.resolve_dotted_in_module(module, dotted) == target:
                    return []
        first = functions[0]
        return [
            Finding(
                self.rule_id,
                module.path,
                first.node.lineno,
                first.node.col_offset,
                message,
            )
        ]

    def _check_worker(
        self, project: ProjectModel, graph: CallGraph, module: ModuleInfo
    ) -> list[Finding]:
        findings = self._require_call(
            project,
            graph,
            module,
            "_post_shard",
            "repro.contracts.is_retryable",
            "the worker 500 path must derive retryable= from "
            "contracts.is_retryable",
        )
        legal_codes = set(contracts.WORKER_ERROR_CODES)
        legal_codes.update(rule.code for rule in contracts.ERROR_TAXONOMY)
        legal_codes.add(contracts.INTERNAL_ERROR.code)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted not in ("_error_doc", "_error_body"):
                continue
            if not node.args:
                continue
            code = constant_str(node.args[0])
            if code is None:
                continue  # dynamic code (exception class name)
            if code not in legal_codes:
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        node.lineno,
                        node.col_offset,
                        f"worker error code {code!r} not declared in "
                        "contracts.WORKER_ERROR_CODES or the error taxonomy",
                    )
                )
                continue
            declared = contracts.WORKER_ERROR_CODES.get(code)
            if declared is None:
                continue
            for kw in node.keywords:
                if kw.arg != "retryable":
                    continue
                if (
                    isinstance(kw.value, ast.Constant)
                    and isinstance(kw.value.value, bool)
                    and kw.value.value != declared[1]
                ):
                    findings.append(
                        Finding(
                            self.rule_id,
                            module.path,
                            node.lineno,
                            node.col_offset,
                            f"worker error {code!r} declares "
                            f"retryable={declared[1]} but this body says "
                            f"{kw.value.value}",
                        )
                    )
        return findings

    def _check_classes_exist(self, project: ProjectModel) -> list[Finding]:
        findings: list[Finding] = []
        simple_names = {cls.name for cls in project.classes.values()}
        anchor = project.modules_by_rel[ERROR_CLASS_MODULES[0]]
        for rule in contracts.ERROR_TAXONOMY:
            if rule.exception not in simple_names:
                findings.append(
                    Finding(
                        self.rule_id,
                        anchor.path,
                        1,
                        0,
                        f"contracts.ERROR_TAXONOMY maps {rule.exception} "
                        "but no such exception class exists",
                    )
                )
        return findings


@register_project
class MetricsRegistryRule(ProjectRule):
    """WIRE004: metric names are declared, produced and consumed."""

    rule_id = "WIRE004"
    title = "metric name outside the declared registry"
    rationale = (
        "bench/compare.py, soak_report.py and the Prometheus renderer "
        "select metrics by literal name; an undeclared or no-longer- "
        "produced name silently drops a gate."
    )
    scopes = ()

    #: the registry itself produces nothing
    EXEMPT = (("obs/metrics.py"), CONTRACTS_MODULE)
    KINDS = ("counter", "gauge", "histogram")
    #: keyword arguments that are instrument configuration, not labels
    CONFIG_KWARGS = frozenset({"bounds"})

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        if not _carries_manifest(project):
            return []
        findings: list[Finding] = []
        produced_in: dict[str, set[str]] = {}
        for module in project.modules.values():
            if module.rel_path in self.EXEMPT:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in self.KINDS:
                    findings.extend(
                        self._check_site(module, node, func.attr, produced_in)
                    )
                elif func.attr == "counter_total" and node.args:
                    name = constant_str(node.args[0])
                    if name is not None and name not in contracts.METRICS:
                        findings.append(
                            Finding(
                                self.rule_id,
                                module.path,
                                node.lineno,
                                node.col_offset,
                                f"counter_total reads metric {name!r} not "
                                "declared in contracts.METRICS",
                            )
                        )
        findings.extend(self._check_production(project, produced_in))
        findings.extend(self._check_invariant_list(project))
        return sorted(findings, key=Finding.sort_index)

    def _check_site(
        self,
        module: ModuleInfo,
        node: ast.Call,
        kind: str,
        produced_in: dict[str, set[str]],
    ) -> list[Finding]:
        if not node.args:
            return []
        name = constant_str(node.args[0])
        if name is None:
            return []  # dynamic name (worker report absorption)
        spec = contracts.METRICS.get(name)
        if spec is None:
            return [
                Finding(
                    self.rule_id,
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"metric {name!r} not declared in contracts.METRICS",
                )
            ]
        findings: list[Finding] = []
        if spec.kind != kind:
            findings.append(
                Finding(
                    self.rule_id,
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"metric {name!r} is declared a {spec.kind} but "
                    f"produced here as a {kind}",
                )
            )
        labels = {
            kw.arg for kw in node.keywords if kw.arg is not None
        } - self.CONFIG_KWARGS
        extras = sorted(labels - set(spec.labels))
        if extras:
            findings.append(
                Finding(
                    self.rule_id,
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"metric {name!r} produced with undeclared label(s) "
                    f"{', '.join(extras)}",
                )
            )
        produced_in.setdefault(name, set()).add(module.rel_path)
        return findings

    def _check_production(
        self, project: ProjectModel, produced_in: dict[str, set[str]]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for spec in contracts.METRICS.values():
            if not spec.produced_by:
                continue
            present = [
                rel for rel in spec.produced_by if rel in project.modules_by_rel
            ]
            if len(present) != len(spec.produced_by):
                continue  # some producer module outside the analysed set
            if not produced_in.get(spec.name, set()) & set(spec.produced_by):
                module = project.modules_by_rel[spec.produced_by[0]]
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        1,
                        0,
                        f"declared metric {spec.name!r} is no longer "
                        f"produced by {', '.join(spec.produced_by)}",
                    )
                )
        return findings

    def _check_invariant_list(self, project: ProjectModel) -> list[Finding]:
        module = project.modules_by_rel.get("bench/compare.py")
        if module is None:
            return []
        findings: list[Finding] = []
        value = module_assign_value(module, "_INVARIANT")
        if not isinstance(value, (ast.Tuple, ast.List)):
            return [
                Finding(
                    self.rule_id,
                    module.path,
                    1,
                    0,
                    "bench/compare.py no longer defines the _INVARIANT "
                    "metric tuple",
                )
            ]
        listed: set[str] = set()
        for element in value.elts:
            name = constant_str(element)
            if name is None:
                continue
            listed.add(name)
            spec = contracts.METRICS.get(name)
            if spec is None or "bench/compare.py" not in spec.consumers:
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        element.lineno,
                        element.col_offset,
                        f"_INVARIANT gates on metric {name!r} which is not "
                        "declared with bench/compare.py as a consumer",
                    )
                )
        for spec in contracts.METRICS.values():
            if "bench/compare.py" in spec.consumers and spec.name not in listed:
                findings.append(
                    Finding(
                        self.rule_id,
                        module.path,
                        value.lineno,
                        value.col_offset,
                        f"metric {spec.name!r} is declared a "
                        "bench/compare.py invariant but _INVARIANT does not "
                        "gate on it",
                    )
                )
        return findings
