"""CONC rules: lock discipline for the service layer (system S24).

CONC001 — guarded attributes.  A shared mutable attribute is declared
with a ``# guarded-by: <lock-attr>`` comment on its assignment::

    self._jobs: dict[str, Job] = {}  # guarded-by: _lock

Every read or write of a declared attribute must then happen under
``with self.<lock>`` — either lexically, or because every call site of
the enclosing method (transitively, through the call graph) holds the
lock.  That blesses the ``_foo_locked`` helper pattern without any
annotation on the helper.  ``__init__`` is exempt: the object is not
shared yet.  A class that constructs a ``threading.Lock``/``RLock`` but
declares nothing guarded is itself flagged — a lock with no documented
protectorate protects nothing.

CONC002 — lock ordering.  Locks are identified as ``(class, attribute)``
pairs.  The rule collects every acquisition order — lexical ``with``
nesting plus calls made while a lock is held, closed transitively over
the call graph — and flags any cycle in the resulting graph as a
potential deadlock.  Re-acquisition of the same lock is not judged here
(``RLock`` makes it legal); only ordering cycles between distinct locks
are reported.

Closures (nested ``def``s) run outside their definition site, so their
bodies are not checked against the enclosing ``with`` scope; calls they
make are still edges of their own function node in the graph.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.callgraph import CallGraph, FunctionInfo, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.project import ClassInfo, ProjectModel
from repro.analysis.visitor import ProjectRule, iter_subtree, register_project

#: rel-path prefixes whose classes participate in the CONC rules
CONC_SCOPES = ("service/", "obs/", "cluster/")

_LOCK_FACTORIES = ("threading.Lock", "threading.RLock")

#: a lock, named by the class that owns it and the attribute storing it
LockId = tuple[str, str]


def _self_attr(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _lock_attrs(cls: ClassInfo, graph: CallGraph) -> dict[str, str]:
    """Lock-holding attributes of *cls*: attr -> factory qname."""
    out: dict[str, str] = {}
    for method in cls.methods.values():
        for node in iter_subtree(method.node, skip_functions=True):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            dotted = dotted_name(value.func)
            if dotted is None:
                continue
            factory = graph.resolver.resolve_dotted_in_module(cls.module, dotted)
            if factory not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    out[attr] = factory
    return out


def _guarded_decls(cls: ClassInfo) -> dict[str, tuple[str, int]]:
    """``# guarded-by:`` declarations of *cls*: attr -> (lock attr, line)."""
    guards = cls.module.guard_comments
    out: dict[str, tuple[str, int]] = {}
    for stmt in cls.node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.lineno in guards
        ):
            out[stmt.target.id] = (guards[stmt.lineno], stmt.lineno)
    for method in cls.methods.values():
        for node in iter_subtree(method.node, skip_functions=True):
            targets: list[ast.expr] = []
            if isinstance(node, ast.AnnAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = list(node.targets)
            else:
                continue
            if node.lineno not in guards:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    out[attr] = (guards[node.lineno], node.lineno)
    return out


def _held_map(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[int, frozenset[str]]:
    """``id(node) -> self-lock attrs held`` for the body of one function.

    Nested ``def``/``lambda`` bodies are excluded: a closure runs later,
    not under the enclosing ``with``.
    """
    held_map: dict[int, frozenset[str]] = {}

    def visit(node: ast.AST, held: frozenset[str]) -> None:
        held_map[id(node)] = held
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not fn_node
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                visit(item.context_expr, held)
                attr = _self_attr(item.context_expr)
                if attr is not None:
                    inner = inner | {attr}
            for stmt in node.body:
                visit(stmt, inner)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    visit(fn_node, frozenset())
    return held_map


class _HeldIndex:
    """Lazily computed per-method held-lock maps."""

    def __init__(self) -> None:
        self._cache: dict[str, dict[int, frozenset[str]]] = {}

    def held_at(self, fn: FunctionInfo, node: ast.AST) -> frozenset[str]:
        held = self._cache.get(fn.qname)
        if held is None:
            held = _held_map(fn.node)
            self._cache[fn.qname] = held
        return held.get(id(node), frozenset())


def _in_scope(rel_path: str, scopes: Iterable[str]) -> bool:
    return any(rel_path.startswith(scope) for scope in scopes)


@register_project
class GuardedAttributeRule(ProjectRule):
    """CONC001: guarded attributes are only touched under their lock."""

    rule_id = "CONC001"
    title = "guarded-by attribute accessed outside its lock"
    rationale = (
        "Service state is shared across worker and HTTP threads; every "
        "access to a # guarded-by attribute must hold the declared lock, "
        "either lexically or at every call site of the enclosing method."
    )
    scopes = CONC_SCOPES

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        findings: list[Finding] = []
        held_index = _HeldIndex()
        for module in project.modules.values():
            if not _in_scope(module.rel_path, CONC_SCOPES):
                continue
            for cls in module.classes.values():
                findings.extend(self._check_class(cls, graph, held_index))
        return findings

    def _check_class(
        self, cls: ClassInfo, graph: CallGraph, held_index: _HeldIndex
    ) -> list[Finding]:
        findings: list[Finding] = []
        decls = _guarded_decls(cls)
        locks = _lock_attrs(cls, graph)
        if locks and not decls:
            findings.append(
                Finding(
                    self.rule_id,
                    cls.module.path,
                    cls.node.lineno,
                    cls.node.col_offset,
                    f"class {cls.name} constructs a lock "
                    f"({', '.join(sorted(locks))}) but declares no "
                    "# guarded-by attributes",
                )
            )
        if not decls:
            return findings
        verified: dict[tuple[str, str], bool] = {}
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            for node in iter_subtree(method.node, skip_functions=True):
                if not isinstance(node, ast.Attribute):
                    continue
                attr = _self_attr(node)
                if attr is None or attr not in decls:
                    continue
                lock = decls[attr][0]
                if lock in held_index.held_at(method, node):
                    continue
                if self._method_held_by_callers(
                    method, lock, cls, graph, held_index, verified, set()
                ):
                    continue
                findings.append(
                    Finding(
                        self.rule_id,
                        cls.module.path,
                        node.lineno,
                        node.col_offset,
                        f"'{attr}' is guarded by '{lock}' but "
                        f"{cls.name}.{method.name} can reach this access "
                        "without holding it",
                    )
                )
        return findings

    def _method_held_by_callers(
        self,
        method: FunctionInfo,
        lock: str,
        cls: ClassInfo,
        graph: CallGraph,
        held_index: _HeldIndex,
        verified: dict[tuple[str, str], bool],
        visiting: set[str],
    ) -> bool:
        """True when every call site of *method* holds *lock* on *cls*."""
        key = (method.qname, lock)
        if key in verified:
            return verified[key]
        if method.qname in visiting:
            return True  # cycle: optimistic here, the entry point decides
        visiting.add(method.qname)
        sites = graph.calls_to(method.qname)
        ok = bool(sites)
        for site in sites:
            caller = site.caller
            if caller.owner is not cls:
                ok = False
                break
            if caller.name == "__init__":
                continue  # not shared yet
            if lock in held_index.held_at(caller, site.node):
                continue
            if not self._method_held_by_callers(
                caller, lock, cls, graph, held_index, verified, visiting
            ):
                ok = False
                break
        visiting.discard(method.qname)
        verified[key] = ok
        return ok


@register_project
class LockOrderRule(ProjectRule):
    """CONC002: the lock-acquisition-order graph must be acyclic."""

    rule_id = "CONC002"
    title = "cyclic lock-acquisition order (potential deadlock)"
    rationale = (
        "Two threads taking the same locks in opposite orders deadlock "
        "under load; the acquisition graph over (class, lock-attribute) "
        "pairs, closed over the call graph, must stay a DAG."
    )
    scopes = CONC_SCOPES

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        lock_attrs: dict[str, dict[str, str]] = {
            cls.qname: _lock_attrs(cls, graph) for cls in project.classes.values()
        }

        def lock_of(expr: ast.expr, fn: FunctionInfo) -> LockId | None:
            attr = _self_attr(expr)
            if attr is not None and fn.owner is not None:
                for entry in graph.resolver.mro(fn.owner):
                    if attr in lock_attrs.get(entry.qname, {}):
                        return (entry.qname, attr)
                return None
            if isinstance(expr, ast.Attribute):
                receiver = graph.resolver.expression_type(expr.value, fn)
                if receiver is not None and expr.attr in lock_attrs.get(
                    receiver.qname, {}
                ):
                    return (receiver.qname, expr.attr)
            return None

        # per-function: direct acquisitions, lexical-nesting edges, and
        # call sites annotated with the locks held at the call
        direct: dict[str, set[LockId]] = {}
        edges: dict[tuple[LockId, LockId], tuple[str, int, int]] = {}
        calls_under: list[tuple[FunctionInfo, ast.Call, frozenset[LockId]]] = []

        def note_edge(src: LockId, dst: LockId, at: ast.AST, path: str) -> None:
            if src == dst:
                return
            key = (src, dst)
            if key not in edges:
                edges[key] = (path, at.lineno, at.col_offset)

        def walk(fn: FunctionInfo, node: ast.AST, held: tuple[LockId, ...]) -> None:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
                and node is not fn.node
            ):
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held
                for item in node.items:
                    walk(fn, item.context_expr, held)
                    lock = lock_of(item.context_expr, fn)
                    if lock is not None:
                        direct.setdefault(fn.qname, set()).add(lock)
                        for outer in inner:
                            note_edge(outer, lock, node, fn.module.path)
                        if lock not in inner:
                            inner = inner + (lock,)
                for stmt in node.body:
                    walk(fn, stmt, inner)
                return
            if isinstance(node, ast.Call):
                calls_under.append((fn, node, frozenset(held)))
            for child in ast.iter_child_nodes(node):
                walk(fn, child, held)

        for fn in project.functions.values():
            walk(fn, fn.node, ())

        # transitive acquisitions: a call made under a lock acquires, in
        # order, everything its callee (transitively) acquires
        all_acq: dict[str, set[LockId]] = {
            qname: set(direct.get(qname, set())) for qname in project.functions
        }
        changed = True
        while changed:
            changed = False
            for qname in project.functions:
                acquired = all_acq[qname]
                before = len(acquired)
                for site in graph.calls_from(qname):
                    if site.callee is not None and site.callee in all_acq:
                        acquired |= all_acq[site.callee]
                if len(acquired) != before:
                    changed = True

        for fn, call, held in calls_under:
            if not held:
                continue
            callee = None
            for site in graph.calls_from(fn.qname):
                if site.node is call:
                    callee = site.callee
                    break
            if callee is None or callee not in all_acq:
                continue
            for outer in held:
                for inner_lock in all_acq[callee]:
                    note_edge(outer, inner_lock, call, fn.module.path)

        return self._find_cycles(edges, lock_attrs)

    def _find_cycles(
        self,
        edges: dict[tuple[LockId, LockId], tuple[str, int, int]],
        lock_attrs: dict[str, dict[str, str]],
    ) -> list[Finding]:
        adjacency: dict[LockId, set[LockId]] = {}
        for (src, dst), _ in edges.items():
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set())

        # iterative Tarjan SCC
        index: dict[LockId, int] = {}
        low: dict[LockId, int] = {}
        on_stack: set[LockId] = set()
        stack: list[LockId] = []
        sccs: list[list[LockId]] = []
        counter = [0]

        def strongconnect(root: LockId) -> None:
            work: list[tuple[LockId, list[LockId]]] = [
                (root, sorted(adjacency[root]))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                if successors:
                    nxt = successors.pop(0)
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, sorted(adjacency[nxt])))
                    elif nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                else:
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        low[parent] = min(low[parent], low[node])
                    if low[node] == index[node]:
                        component: list[LockId] = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.append(member)
                            if member == node:
                                break
                        sccs.append(component)

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)

        findings: list[Finding] = []
        for component in sccs:
            if len(component) < 2:
                continue
            members = set(component)
            cycle_edges = sorted(
                (location, src, dst)
                for (src, dst), location in edges.items()
                if src in members and dst in members
            )
            location, src, dst = cycle_edges[0]
            names = " -> ".join(
                f"{qname.rsplit('.', 1)[-1]}.{attr}"
                for qname, attr in sorted(members)
            )
            findings.append(
                Finding(
                    self.rule_id,
                    location[0],
                    location[1],
                    location[2],
                    f"lock-order cycle: {names} (acquiring "
                    f"{dst[0].rsplit('.', 1)[-1]}.{dst[1]} while holding "
                    f"{src[0].rsplit('.', 1)[-1]}.{src[1]})",
                )
            )
        return findings
