"""Entry point shared by ``repro lint`` and ``python -m repro.analysis``."""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import lint_paths
from repro.analysis.findings import PARSE_ERROR_ID
from repro.analysis.reporting import render_json, render_sarif, render_text
from repro.analysis.visitor import render_rule_summaries


def list_rules() -> str:
    """The unified rule catalog (shared with ``repro check --list-rules``)."""
    return render_rule_summaries()


def run_lint(
    paths: Sequence[str],
    output_format: str = "text",
    rule_ids: Sequence[str] | None = None,
    show_rules: bool = False,
) -> int:
    """Lint *paths*.

    Exit codes: 0 clean, 1 rule findings, 2 when the analysis itself
    could not run — missing path, unknown rule id, unparseable file
    (a LINT000 finding) or an engine crash.
    """
    if show_rules:
        print(list_rules())
        return 0
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    try:
        findings, checked = lint_paths(paths, rule_ids=rule_ids)
    except ValueError as exc:  # unknown rule id in --rules
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception:  # engine crash: report, never masquerade as clean
        print("error: analysis crashed", file=sys.stderr)
        traceback.print_exc()
        return 2
    if output_format == "json":
        print(render_json(findings, checked))
    elif output_format == "sarif":
        print(render_sarif(findings, checked, tool_name="repro-lint"))
    else:
        print(render_text(findings, checked))
    if any(finding.rule_id == PARSE_ERROR_ID for finding in findings):
        return 2
    return 1 if findings else 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on *parser* (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", default="",
        help="comma-separated rule ids to run (default: every rule)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def lint_from_args(args: argparse.Namespace) -> int:
    """Run the linter from parsed arguments (argparse Namespace)."""
    rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    return run_lint(
        args.paths,
        output_format=args.format,
        rule_ids=rule_ids or None,
        show_rules=args.list_rules,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.analysis`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="DISC-invariant lint engine for the repro codebase",
    )
    add_lint_arguments(parser)
    return lint_from_args(parser.parse_args(argv))
