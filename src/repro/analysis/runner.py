"""Entry point shared by ``repro lint`` and ``python -m repro.analysis``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import lint_paths
from repro.analysis.reporting import render_json, render_text
from repro.analysis.visitor import rule_catalog


def list_rules() -> str:
    """Human-readable catalog of the registered rules."""
    blocks = []
    for rule_id, rule_class in rule_catalog().items():
        scopes = ", ".join(rule_class.scopes) if rule_class.scopes else "all modules"
        blocks.append(
            f"{rule_id}: {rule_class.title}\n"
            f"  scope: {scopes}\n"
            f"  {rule_class.rationale}"
        )
    return "\n".join(blocks)


def run_lint(
    paths: Sequence[str],
    output_format: str = "text",
    rule_ids: Sequence[str] | None = None,
    show_rules: bool = False,
) -> int:
    """Lint *paths*; returns 0 clean, 1 with findings, 2 on usage errors."""
    if show_rules:
        print(list_rules())
        return 0
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    try:
        findings, checked = lint_paths(paths, rule_ids=rule_ids)
    except ValueError as exc:  # unknown rule id in --rules
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if output_format == "json" else render_text
    print(renderer(findings, checked))
    return 1 if findings else 0


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on *parser* (shared with the repro CLI)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", default="",
        help="comma-separated rule ids to run (default: every rule)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def lint_from_args(args: argparse.Namespace) -> int:
    """Run the linter from parsed arguments (argparse Namespace)."""
    rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    return run_lint(
        args.paths,
        output_format=args.format,
        rule_ids=rule_ids or None,
        show_rules=args.list_rules,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.analysis`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="DISC-invariant lint engine for the repro codebase",
    )
    add_lint_arguments(parser)
    return lint_from_args(parser.parse_args(argv))
