"""Name-resolution call graph over a :class:`ProjectModel` (system S24).

The graph is built from syntax alone — no imports are executed.  A call
is resolved through a small ladder of strategies:

* bare names: nested ``def``s in the enclosing function chain, then
  module-level functions and classes, then import aliases (followed
  through package re-exports, so ``repro.obs.active`` resolves to
  ``repro.obs.context.active``);
* ``self.m()`` / ``cls.m()``: the enclosing class's method-resolution
  order (a simple left-to-right linearisation, ample for this codebase);
* dotted chains (``module.func()``, ``alias.Class()``): longest-prefix
  resolution through the import table;
* typed receivers (``self._cache.get()``, ``token.checkpoint()``): a
  conservative type inference over parameter annotations, ``AnnAssign``
  statements, constructor assignments in ``__init__`` (including
  ``a if cond else b`` defaults), property and function return
  annotations, and module-level annotated globals.

Anything else — callables passed as values, lambdas, ``getattr`` — is
*documented unresolvable*: the :class:`CallSite` records a reason and the
rules treat the edge as absent.  Constructor calls resolve to the class's
``__init__`` when one is defined in the project.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)
from repro.analysis.visitor import iter_subtree

_MAX_FOLLOW = 12


@dataclass(eq=False)
class CallSite:
    """One call expression, resolved (``callee``) or not (``reason``)."""

    caller: FunctionInfo
    node: ast.Call
    callee: str | None
    reason: str


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class Resolver:
    """Name and type resolution over one :class:`ProjectModel`."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self._mro_cache: dict[str, list[ClassInfo]] = {}
        self._attr_cache: dict[tuple[str, str], ClassInfo | None] = {}
        self._attr_in_progress: set[tuple[str, str]] = set()
        self._local_cache: dict[str, dict[str, ClassInfo]] = {}

    # -- qualified names ---------------------------------------------------

    def resolve_qname(self, dotted: str, _depth: int = 0) -> str:
        """Follow package re-exports until *dotted* names a definition."""
        if _depth > _MAX_FOLLOW:
            return dotted
        project = self.project
        if dotted in project.functions or dotted in project.classes:
            return dotted
        head, _, attr = dotted.rpartition(".")
        if not head:
            return dotted
        module = project.modules.get(head)
        if module is not None:
            target = module.imports.get(attr)
            if target is not None:
                return self.resolve_qname(target, _depth + 1)
            return dotted
        resolved_head = self.resolve_qname(head, _depth + 1)
        if resolved_head != head:
            return self.resolve_qname(f"{resolved_head}.{attr}", _depth + 1)
        return dotted

    def resolve_in_module(self, module: ModuleInfo, name: str) -> str | None:
        """A bare *name* used in *module*, as a project-wide dotted name."""
        if name in module.functions:
            return module.functions[name].qname
        if name in module.classes:
            return module.classes[name].qname
        target = module.imports.get(name)
        if target is not None:
            return self.resolve_qname(target)
        return None

    def resolve_dotted_in_module(self, module: ModuleInfo, dotted: str) -> str:
        """A dotted chain used in *module*, resolved through its imports."""
        head, _, rest = dotted.partition(".")
        base = self.resolve_in_module(module, head)
        if base is None:
            return self.resolve_qname(dotted)
        return self.resolve_qname(f"{base}.{rest}") if rest else base

    def class_named(self, module: ModuleInfo, dotted: str) -> ClassInfo | None:
        return self.project.classes.get(self.resolve_dotted_in_module(module, dotted))

    # -- class hierarchy ---------------------------------------------------

    def base_qnames(self, cls: ClassInfo) -> list[str]:
        """Dotted names of the direct bases (resolved where possible)."""
        names: list[str] = []
        for base in cls.node.bases:
            dotted = dotted_name(base)
            if dotted is not None:
                names.append(self.resolve_dotted_in_module(cls.module, dotted))
        return names

    def ancestor_qnames(self, cls: ClassInfo) -> set[str]:
        """Every (transitive) base name, including unresolvable leaves."""
        out: set[str] = set()
        stack = [cls]
        seen = {cls.qname}
        while stack:
            current = stack.pop()
            for base in self.base_qnames(current):
                if base in out:
                    continue
                out.add(base)
                base_cls = self.project.classes.get(base)
                if base_cls is not None and base_cls.qname not in seen:
                    seen.add(base_cls.qname)
                    stack.append(base_cls)
        return out

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """Left-to-right depth-first linearisation (cached)."""
        cached = self._mro_cache.get(cls.qname)
        if cached is not None:
            return cached
        order: list[ClassInfo] = [cls]
        self._mro_cache[cls.qname] = order
        for base in self.base_qnames(cls):
            base_cls = self.project.classes.get(base)
            if base_cls is None:
                continue
            for entry in self.mro(base_cls):
                if entry not in order:
                    order.append(entry)
        return order

    def find_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        for entry in self.mro(cls):
            method = entry.methods.get(name)
            if method is not None:
                return method
        return None

    def subclasses_of(self, qname: str) -> list[ClassInfo]:
        """Every project class whose MRO reaches *qname* (itself included)."""
        out: list[ClassInfo] = []
        for cls in self.project.classes.values():
            if cls.qname == qname or qname in self.ancestor_qnames(cls):
                out.append(cls)
        return out

    # -- annotations -------------------------------------------------------

    def annotation_class(
        self, module: ModuleInfo, annotation: ast.expr | None
    ) -> ClassInfo | None:
        """The project class an annotation denotes, if any.

        Unions collapse when exactly one arm resolves (``X | None`` →
        ``X``); ``Optional[X]`` unwraps; other subscripts resolve their
        value (``list[X]`` deliberately resolves to nothing — element
        types are not tracked).
        """
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval")
            except SyntaxError:
                return None
            return self.annotation_class(module, parsed.body)
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            arms = [
                self.annotation_class(module, arm)
                for arm in (annotation.left, annotation.right)
            ]
            resolved = [arm for arm in arms if arm is not None]
            return resolved[0] if len(resolved) == 1 else None
        if isinstance(annotation, ast.Subscript):
            value_name = dotted_name(annotation.value)
            if value_name in ("Optional", "typing.Optional"):
                return self.annotation_class(module, annotation.slice)
            return None
        dotted = dotted_name(annotation)
        if dotted is None or dotted == "None":
            return None
        return self.class_named(module, dotted)

    # -- attribute types ---------------------------------------------------

    def attribute_type(self, cls: ClassInfo, attr: str) -> ClassInfo | None:
        """The class of ``instance.attr``, inferred from declarations."""
        key = (cls.qname, attr)
        if key in self._attr_cache:
            return self._attr_cache[key]
        if key in self._attr_in_progress:
            return None
        self._attr_in_progress.add(key)
        try:
            result = self._infer_attribute_type(cls, attr)
        finally:
            self._attr_in_progress.discard(key)
        self._attr_cache[key] = result
        return result

    def _infer_attribute_type(self, cls: ClassInfo, attr: str) -> ClassInfo | None:
        for entry in self.mro(cls):
            module = entry.module
            # class-level annotations (dataclass fields and plain attrs)
            for stmt in entry.node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == attr
                ):
                    found = self.annotation_class(module, stmt.annotation)
                    if found is not None:
                        return found
            # properties with return annotations
            method = entry.methods.get(attr)
            if method is not None and _is_property(method.node):
                found = self.annotation_class(module, method.node.returns)
                if found is not None:
                    return found
            # ``self.attr = ...`` in methods, ``__init__`` first
            methods = sorted(
                entry.methods.values(), key=lambda m: m.name != "__init__"
            )
            for owner_method in methods:
                found = self._attr_from_method(owner_method, attr)
                if found is not None:
                    return found
        return None

    def _attr_from_method(self, method: FunctionInfo, attr: str) -> ClassInfo | None:
        for node in iter_subtree(method.node, skip_functions=True):
            if isinstance(node, ast.AnnAssign) and _targets_self_attr(
                node.target, attr
            ):
                found = self.annotation_class(method.module, node.annotation)
                if found is not None:
                    return found
            elif isinstance(node, ast.Assign) and any(
                _targets_self_attr(target, attr) for target in node.targets
            ):
                found = self.expression_type(node.value, method)
                if found is not None:
                    return found
        return None

    # -- expression types --------------------------------------------------

    def expression_type(
        self, expr: ast.expr, context: FunctionInfo
    ) -> ClassInfo | None:
        """Conservative type of *expr* inside *context*; ``None`` = unknown."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and context.owner is not None:
                return context.owner
            local = self.local_types(context).get(expr.id)
            if local is not None:
                return local
            return self._module_global_type(context.module, expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.expression_type(expr.value, context)
            if base is not None:
                return self.attribute_type(base, expr.attr)
            dotted = dotted_name(expr)
            if dotted is not None:
                return self._dotted_global_type(context.module, dotted)
            return None
        if isinstance(expr, ast.Call):
            target, _ = self.resolve_call(expr, context)
            if target is None:
                return None
            cls = self.project.classes.get(target)
            if cls is not None:
                return cls
            fn = self.project.functions.get(target)
            if fn is not None:
                if fn.name == "__init__" and fn.owner is not None:
                    return fn.owner
                return self.annotation_class(fn.module, fn.node.returns)
            return None
        if isinstance(expr, ast.IfExp):
            body = self.expression_type(expr.body, context)
            if body is not None:
                return body
            return self.expression_type(expr.orelse, context)
        if isinstance(expr, ast.Await):
            return self.expression_type(expr.value, context)
        return None

    def local_types(self, fn: FunctionInfo) -> dict[str, ClassInfo]:
        """Types of *fn*'s parameters and simple local assignments."""
        cached = self._local_cache.get(fn.qname)
        if cached is not None:
            return cached
        types: dict[str, ClassInfo] = {}
        self._local_cache[fn.qname] = types
        arguments = fn.node.args
        params = [
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        ]
        for param in params:
            found = self.annotation_class(fn.module, param.annotation)
            if found is not None:
                types[param.arg] = found
        for node in iter_subtree(fn.node, skip_functions=True):
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
            ):
                found = self.annotation_class(fn.module, node.annotation)
                if found is not None:
                    types[node.target.id] = found
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id not in types:
                    found = self.expression_type(node.value, fn)
                    if found is not None:
                        types[target.id] = found
        return types

    def _module_global_type(self, module: ModuleInfo, name: str) -> ClassInfo | None:
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == name
            ):
                return self.annotation_class(module, stmt.annotation)
        return None

    def _dotted_global_type(self, module: ModuleInfo, dotted: str) -> ClassInfo | None:
        """Type of ``alias.GLOBAL`` where ``alias`` is an imported module."""
        head, _, attr = dotted.rpartition(".")
        if not head or not attr:
            return None
        target = module.imports.get(head)
        if target is None:
            return None
        other = self.project.modules.get(self.resolve_qname(target))
        if other is None:
            return None
        return self._module_global_type(other, attr)

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self, call: ast.Call, context: FunctionInfo
    ) -> tuple[str | None, str]:
        """Resolve a call to a project qname; else ``(None, reason)``.

        Constructor calls resolve to ``Class.__init__`` when defined in
        the project, otherwise to the class qname itself (no edges).
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare_name(func.id, context)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(func, call, context)
        if isinstance(func, ast.Lambda):
            return None, "lambda callee"
        return None, "dynamic callee expression"

    def _resolve_bare_name(
        self, name: str, context: FunctionInfo
    ) -> tuple[str | None, str]:
        walker: FunctionInfo | None = context
        while walker is not None:
            nested = walker.nested.get(name)
            if nested is not None:
                return nested.qname, "nested function"
            walker = walker.parent
        resolved = self.resolve_in_module(context.module, name)
        if resolved is None:
            return None, f"unknown name {name!r} (builtin or dynamic)"
        return self._as_call_target(resolved)

    def _resolve_attribute_call(
        self, func: ast.Attribute, call: ast.Call, context: FunctionInfo
    ) -> tuple[str | None, str]:
        value = func.value
        # super().m()
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "super"
            and context.owner is not None
        ):
            for entry in self.mro(context.owner)[1:]:
                method = entry.methods.get(func.attr)
                if method is not None:
                    return method.qname, "super() dispatch"
            return None, f"super().{func.attr} not defined in project"
        # dotted chains through modules/classes: alias.func, pkg.mod.Class
        dotted = dotted_name(func)
        if dotted is not None:
            resolved = self.resolve_dotted_in_module(context.module, dotted)
            if (
                resolved in self.project.functions
                or resolved in self.project.classes
            ):
                return self._as_call_target(resolved)
        # typed receivers: self.x.m(), token.checkpoint(), ...
        receiver = self.expression_type(value, context)
        if receiver is not None:
            method = self.find_method(receiver, func.attr)
            if method is not None:
                return method.qname, f"method of {receiver.qname}"
            return None, f"no method {func.attr!r} on {receiver.qname}"
        if dotted is not None:
            return None, f"external or dynamic target {dotted!r}"
        return None, "dynamic receiver"

    def _as_call_target(self, qname: str) -> tuple[str | None, str]:
        if qname in self.project.functions:
            return qname, "direct"
        cls = self.project.classes.get(qname)
        if cls is not None:
            init = self.find_method(cls, "__init__")
            if init is not None:
                return init.qname, f"constructor of {qname}"
            return qname, f"constructor of {qname} (no __init__)"
        return None, f"external target {qname!r}"


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = dotted_name(decorator)
        if name in ("property", "functools.cached_property", "cached_property"):
            return True
    return False


def _targets_self_attr(target: ast.expr, attr: str) -> bool:
    return (
        isinstance(target, ast.Attribute)
        and target.attr == attr
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


class CallGraph:
    """Every resolved (and unresolved) call site, indexed both ways."""

    def __init__(self, project: ProjectModel, resolver: Resolver) -> None:
        self.project = project
        self.resolver = resolver
        self.sites: list[CallSite] = []
        self._by_caller: dict[str, list[CallSite]] = {}
        self._by_callee: dict[str, list[CallSite]] = {}

    def add(self, site: CallSite) -> None:
        self.sites.append(site)
        self._by_caller.setdefault(site.caller.qname, []).append(site)
        if site.callee is not None:
            self._by_callee.setdefault(site.callee, []).append(site)

    def calls_from(self, qname: str) -> list[CallSite]:
        return self._by_caller.get(qname, [])

    def calls_to(self, qname: str) -> list[CallSite]:
        return self._by_callee.get(qname, [])

    def reachable(self, seeds: Iterable[str]) -> set[str]:
        """Transitive closure of resolved call edges, seeds included."""
        seen: set[str] = set()
        stack = list(seeds)
        while stack:
            qname = stack.pop()
            if qname in seen:
                continue
            seen.add(qname)
            for site in self.calls_from(qname):
                if site.callee is not None and site.callee not in seen:
                    stack.append(site.callee)
        return seen


def build_call_graph(project: ProjectModel) -> CallGraph:
    """Resolve every call expression in every project function."""
    resolver = Resolver(project)
    graph = CallGraph(project, resolver)
    for fn in project.functions.values():
        for node in iter_subtree(fn.node, skip_functions=True):
            if node is fn.node or not isinstance(node, ast.Call):
                continue
            callee, reason = resolver.resolve_call(node, fn)
            graph.add(CallSite(caller=fn, node=node, callee=callee, reason=reason))
    return graph
