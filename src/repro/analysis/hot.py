"""HOT rule: allocation hygiene in the DISC discovery loop (system S24).

The paper's claim is that DISC discovers the k-minimum sequence without
support counting; the repo's claim on top is that observing that loop is
free when observability is off.  Both die by a thousand cuts if the hot
loop starts calling into ``obs/`` or ``service/`` helpers that allocate
(span objects, metric lookups, label formatting) on every iteration.

HOT001 anchors on every ``while`` loop in ``core/disc.py`` (the k>=4
discovery path iterates ``while len(tree) >= delta``) and walks every
call made from the loop body, closed transitively over the call graph.
A resolved target living under ``obs/`` or ``service/`` is only allowed
when it is one of the pre-fetched handle mutators (``Counter.add``,
``Gauge.set``, ``Histogram.record`` and their no-op twins) — the no-op
``Observation`` indirection the instrumentation layer was built around.
Registry lookups (``metrics.counter(...)``), span creation and anything
else allocating must stay outside the loop.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectModel
from repro.analysis.visitor import ProjectRule, iter_subtree, register_project

#: the module holding the DISC discovery loop
DISC_MODULE = "core/disc.py"
#: the module defining the metric handle classes
METRICS_MODULE = "obs/metrics.py"
#: handle mutators that are allowed inside the loop (pre-fetched handles)
HANDLE_MUTATORS = ("add", "set", "record")

_HOT_PREFIXES = ("obs/", "service/")


@register_project
class HotLoopHygieneRule(ProjectRule):
    """HOT001: the discovery loop avoids allocating obs/service calls."""

    rule_id = "HOT001"
    title = "DISC discovery loop calls an allocating obs/service function"
    rationale = (
        "Per-iteration calls into obs/ or service/ (metric registry "
        "lookups, span creation) allocate and serialize the hot loop; "
        "only pre-fetched no-op-capable handle mutators are free."
    )
    scopes = (DISC_MODULE,)

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        module = project.modules_by_rel.get(DISC_MODULE)
        if module is None:
            return []
        allowed = self._allowed_mutators(project)
        findings: list[Finding] = []
        seen: set[tuple[int, int]] = set()
        for fn in project.functions.values():
            if fn.module is not module:
                continue
            for node in iter_subtree(fn.node, skip_functions=True):
                if not isinstance(node, ast.While):
                    continue
                for finding in self._check_loop(
                    node, fn.qname, project, graph, allowed
                ):
                    key = (finding.line, finding.col)
                    if key not in seen:
                        seen.add(key)
                        findings.append(finding)
        return sorted(findings, key=Finding.sort_index)

    def _allowed_mutators(self, project: ProjectModel) -> set[str]:
        metrics = project.modules_by_rel.get(METRICS_MODULE)
        if metrics is None:
            return set()
        return {
            method.qname
            for cls in metrics.classes.values()
            for name, method in cls.methods.items()
            if name in HANDLE_MUTATORS
        }

    def _check_loop(
        self,
        loop: ast.While,
        caller: str,
        project: ProjectModel,
        graph: CallGraph,
        allowed: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in iter_subtree(loop, skip_functions=True):
            if not isinstance(node, ast.Call):
                continue
            callee = None
            for site in graph.calls_from(caller):
                if site.node is node:
                    callee = site.callee
                    break
            if callee is None:
                continue
            offenders = sorted(
                qname
                for qname in graph.reachable([callee])
                if qname not in allowed and self._is_hot(qname, project)
            )
            if offenders:
                findings.append(
                    Finding(
                        self.rule_id,
                        project.functions[caller].module.path,
                        node.lineno,
                        node.col_offset,
                        f"discovery-loop call reaches {offenders[0]} "
                        "(allocating obs/service code); hoist the handle "
                        "out of the loop or go through the no-op "
                        "Observation indirection",
                    )
                )
        return findings

    def _is_hot(self, qname: str, project: ProjectModel) -> bool:
        fn = project.functions.get(qname)
        if fn is None:
            return False
        return fn.module.rel_path.startswith(_HOT_PREFIXES)
