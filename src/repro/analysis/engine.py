"""Lint engine: file walking, suppression comments, rule dispatch (system S24).

The engine parses each module once with :mod:`ast`, extracts
``# repro: allow[RULE]`` suppression comments with :mod:`tokenize`, runs
every in-scope rule through the single-pass visitor framework, filters
suppressed findings and returns the rest sorted by position.  It is
deliberately stdlib-only (``ast`` + ``tokenize``) so the gate adds no
dependency to the repo.

Suppression grammar: a comment ``# repro: allow[DISC002]`` (several ids
separated by commas are accepted) suppresses the named rules on its own
line; a comment alone on a line also covers the line below, so multi-line
statements can be annotated above their first line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Type

from repro.analysis.findings import PARSE_ERROR_ID, Finding

# Importing the catalog registers the default rules.
from repro.analysis import rules as _rules  # noqa: F401  (side-effect import)
from repro.analysis.visitor import (
    LintContext,
    Rule,
    rule_catalog,
    walk_module,
)

_ALLOW_PATTERN = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """``# repro: allow[...]`` comments by the line they are written on."""
    comments: dict[int, frozenset[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return comments
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _ALLOW_PATTERN.search(token.string)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if ids:
            line = token.start[0]
            comments[line] = comments.get(line, frozenset()) | ids
    return comments


def _effective_suppressions(
    source: str, comments: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Per-line suppression map.

    A suppression covers its own line; when the comment stands alone on
    its line it also propagates down through any further comment-only
    lines onto the first code line below (so a multi-line explanation
    above a statement suppresses the statement).
    """
    lines = source.splitlines()
    effective: dict[int, frozenset[str]] = {}

    def extend(line: int, ids: frozenset[str]) -> None:
        effective[line] = effective.get(line, frozenset()) | ids

    def is_comment_only(line: int) -> bool:
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        return text.lstrip().startswith("#")

    for line, ids in comments.items():
        extend(line, ids)
        if is_comment_only(line):
            below = line + 1
            while below <= len(lines) and is_comment_only(below):
                extend(below, ids)
                below += 1
            extend(below, ids)
    return effective


def _resolve_rules(rule_ids: Sequence[str] | None) -> list[Type[Rule]]:
    catalog = rule_catalog()
    if rule_ids is None:
        return list(catalog.values())
    selected: list[Type[Rule]] = []
    for rule_id in rule_ids:
        if rule_id not in catalog:
            known = ", ".join(catalog)
            raise ValueError(f"unknown rule id {rule_id!r}; known: {known}")
        selected.append(catalog[rule_id])
    return selected


def lint_source(
    source: str,
    path: str = "<memory>",
    rule_ids: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one module given as text; *path* drives rule scoping."""
    rule_classes = _resolve_rules(rule_ids)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        col = exc.offset if exc.offset is not None else 0
        return [Finding(PARSE_ERROR_ID, path, line, col, f"syntax error: {exc.msg}")]
    comments = parse_suppressions(source)
    ctx = LintContext(path, source, tree, comments)
    active = [
        rule_class()
        for rule_class in rule_classes
        if rule_class.applies_to(ctx.rel_path)
    ]
    walk_module(tree, active, ctx)
    suppressed = _effective_suppressions(source, comments)
    kept = [
        finding
        for finding in ctx.findings
        if finding.rule_id not in suppressed.get(finding.line, frozenset())
    ]
    return sorted(kept, key=Finding.sort_index)


def lint_file(path: str | Path, rule_ids: Sequence[str] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    target = Path(path)
    source = target.read_text(encoding="utf-8")
    return lint_source(source, path=str(target), rule_ids=rule_ids)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Iterable[str | Path], rule_ids: Sequence[str] | None = None
) -> tuple[list[Finding], int]:
    """Lint files and directories; returns (findings, files_checked)."""
    findings: list[Finding] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(file_path, rule_ids=rule_ids))
    return sorted(findings, key=Finding.sort_index), checked
