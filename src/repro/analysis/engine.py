"""Lint engine: file walking, suppression comments, rule dispatch (system S24).

The engine parses each module once with :mod:`ast`, extracts
``# repro: allow[RULE]`` suppression comments with :mod:`tokenize`, runs
every in-scope rule through the single-pass visitor framework, filters
suppressed findings and returns the rest sorted by position.  It is
deliberately stdlib-only (``ast`` + ``tokenize``) so the gate adds no
dependency to the repo.

Suppression grammar: a comment ``# repro: allow[DISC002]`` (several ids
separated by commas are accepted) suppresses the named rules on its own
line; a comment alone on a line also covers the line below, so multi-line
statements can be annotated above their first line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Type

from repro.analysis.findings import PARSE_ERROR_ID, Finding
from repro.analysis.suppress import (
    effective_suppressions as _effective_suppressions,
)
from repro.analysis.suppress import parse_suppressions

# Importing the catalogs registers the default rules — both the per-file
# DISC/LINT rules and the whole-program CONC/FLOW/HOT families, so that
# LINT001 recognises every id a suppression comment may legitimately name.
from repro.analysis import rules as _rules  # noqa: F401  (side-effect import)
from repro.analysis import conc as _conc  # noqa: F401  (side-effect import)
from repro.analysis import flow as _flow  # noqa: F401  (side-effect import)
from repro.analysis import hot as _hot  # noqa: F401  (side-effect import)
from repro.analysis import statemachine as _statemachine  # noqa: F401  (side-effect import)
from repro.analysis import wire as _wire  # noqa: F401  (side-effect import)
from repro.analysis.visitor import (
    LintContext,
    Rule,
    expand_rule_selection,
    rule_catalog,
    walk_module,
)

__all__ = [
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
]


def _resolve_rules(rule_ids: Sequence[str] | None) -> list[Type[Rule]]:
    catalog = rule_catalog()
    if rule_ids is None:
        return list(catalog.values())
    return [
        catalog[rule_id] for rule_id in expand_rule_selection(rule_ids, catalog)
    ]


def lint_source(
    source: str,
    path: str = "<memory>",
    rule_ids: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint one module given as text; *path* drives rule scoping."""
    rule_classes = _resolve_rules(rule_ids)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        col = exc.offset if exc.offset is not None else 0
        return [Finding(PARSE_ERROR_ID, path, line, col, f"syntax error: {exc.msg}")]
    comments = parse_suppressions(source)
    ctx = LintContext(path, source, tree, comments)
    active = [
        rule_class()
        for rule_class in rule_classes
        if rule_class.applies_to(ctx.rel_path)
    ]
    walk_module(tree, active, ctx)
    suppressed = _effective_suppressions(source, comments)
    kept = [
        finding
        for finding in ctx.findings
        if finding.rule_id not in suppressed.get(finding.line, frozenset())
    ]
    return sorted(kept, key=Finding.sort_index)


def lint_file(path: str | Path, rule_ids: Sequence[str] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    target = Path(path)
    source = target.read_text(encoding="utf-8")
    return lint_source(source, path=str(target), rule_ids=rule_ids)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Iterable[str | Path], rule_ids: Sequence[str] | None = None
) -> tuple[list[Finding], int]:
    """Lint files and directories; returns (findings, files_checked)."""
    findings: list[Finding] = []
    checked = 0
    for file_path in iter_python_files(paths):
        checked += 1
        findings.extend(lint_file(file_path, rule_ids=rule_ids))
    return sorted(findings, key=Finding.sort_index), checked
