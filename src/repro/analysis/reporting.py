"""Finding reporters: text, JSON and SARIF (system S24).

The SARIF renderer targets SARIF 2.1.0 so lint/check findings can be
uploaded to GitHub code scanning and annotate pull requests in place.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Sequence

from repro.analysis.findings import PARSE_ERROR_ID, Finding
from repro.analysis.visitor import project_rule_catalog, rule_catalog

#: Schema version of the JSON report; bump on shape changes.
JSON_REPORT_VERSION = 1

#: SARIF schema targeted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """Compiler-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.render() for finding in findings]
    noun = "file" if files_checked == 1 else "files"
    if findings:
        lines.append(f"{len(findings)} finding(s) in {files_checked} {noun}")
    else:
        lines.append(f"clean: {files_checked} {noun}, 0 findings")
    return "\n".join(lines)


def rule_counts(findings: Sequence[Finding]) -> dict[str, int]:
    """Number of findings per rule id, sorted by rule id."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """JSON document with the findings, per-rule counts and metadata."""
    payload = {
        "format": "repro.lint-report",
        "version": JSON_REPORT_VERSION,
        "files_checked": files_checked,
        "counts": rule_counts(findings),
        "findings": [asdict(finding) for finding in findings],
    }
    return json.dumps(payload, indent=2)


def _sarif_rules() -> list[dict[str, object]]:
    descriptors: list[dict[str, object]] = [
        {
            "id": PARSE_ERROR_ID,
            "shortDescription": {"text": "file could not be parsed"},
            "fullDescription": {
                "text": "The analysis engine failed to parse this file; "
                "nothing in it was checked."
            },
            "defaultConfiguration": {"level": "error"},
        }
    ]
    merged: dict[str, tuple[str, str]] = {}
    for rule_id, rule_class in rule_catalog().items():
        merged[rule_id] = (rule_class.title, rule_class.rationale)
    for rule_id, project_rule in project_rule_catalog().items():
        merged[rule_id] = (project_rule.title, project_rule.rationale)
    for rule_id, (title, rationale) in sorted(merged.items()):
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {"text": title},
                "fullDescription": {"text": rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def render_sarif(
    findings: Sequence[Finding],
    files_checked: int,
    tool_name: str = "repro-lint",
) -> str:
    """SARIF 2.1.0 log for GitHub code scanning and other SARIF sinks."""
    results: list[dict[str, object]] = []
    for finding in findings:
        uri = finding.path.replace(os.sep, "/")
        results.append(
            {
                "ruleId": finding.rule_id,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://github.com/repro/repro/blob/main/"
                            "docs/DEVELOPMENT.md"
                        ),
                        "rules": _sarif_rules(),
                    }
                },
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
