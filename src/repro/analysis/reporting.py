"""Finding reporters: terminal text and machine-readable JSON (system S24)."""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Sequence

from repro.analysis.findings import Finding

#: Schema version of the JSON report; bump on shape changes.
JSON_REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """Compiler-style ``path:line:col: RULE message`` lines plus a summary."""
    lines = [finding.render() for finding in findings]
    noun = "file" if files_checked == 1 else "files"
    if findings:
        lines.append(f"{len(findings)} finding(s) in {files_checked} {noun}")
    else:
        lines.append(f"clean: {files_checked} {noun}, 0 findings")
    return "\n".join(lines)


def rule_counts(findings: Sequence[Finding]) -> dict[str, int]:
    """Number of findings per rule id, sorted by rule id."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    return dict(sorted(counts.items()))


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """JSON document with the findings, per-rule counts and metadata."""
    payload = {
        "format": "repro.lint-report",
        "version": JSON_REPORT_VERSION,
        "files_checked": files_checked,
        "counts": rule_counts(findings),
        "findings": [asdict(finding) for finding in findings],
    }
    return json.dumps(payload, indent=2)
