"""Visitor framework and rule registry for the lint engine (system S24).

A :class:`Rule` is a stateful object instantiated once per linted module.
The engine walks the module's AST exactly once in pre-order, maintaining
the ancestor stack in a :class:`LintContext`, and hands every node to
every rule whose scope covers the module.  Rules report violations
through :meth:`LintContext.report`; suppression comments are applied by
the engine afterwards, so rules never need to know about them.

Registering a rule is one decorator::

    @register
    class MyRule(Rule):
        rule_id = "DISC042"
        ...

Scopes are path prefixes relative to the ``repro`` package root (for
example ``("core/", "mining/")`` or the exact file ``("core/disc.py",)``);
an empty scope tuple applies the rule to every module.
"""

from __future__ import annotations

import ast
import os
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, ClassVar, Iterator, Mapping, Sequence, Type

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.callgraph import CallGraph
    from repro.analysis.project import ProjectModel


def module_rel_path(path: str) -> str:
    """Path of a module relative to the ``repro`` package root.

    ``src/repro/core/disc.py`` maps to ``core/disc.py``; paths without a
    ``repro`` component are returned as given (normalised to ``/``).
    The fixture trees under ``tests/`` embed a ``repro`` component so
    that scoped rules can be exercised on fixture files.
    """
    parts = PurePosixPath(str(path).replace(os.sep, "/")).parts
    if "repro" in parts:
        anchor = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        rel = parts[anchor + 1 :]
        if rel:
            return "/".join(rel)
    return "/".join(parts)


class LintContext:
    """Per-module state shared by the engine and the rules."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        allow_comments: Mapping[int, frozenset[str]],
    ) -> None:
        self.path = path
        self.rel_path = module_rel_path(path)
        self.source = source
        self.tree = tree
        #: suppression comments by the line they are written on (raw view;
        #: the engine derives the effective per-line suppression from it)
        self.allow_comments = dict(allow_comments)
        self.findings: list[Finding] = []
        self._stack: list[ast.AST] = []

    # -- ancestry ----------------------------------------------------------

    @property
    def ancestors(self) -> tuple[ast.AST, ...]:
        """Ancestors of the node being visited, outermost first."""
        return tuple(self._stack)

    def inside(self, *node_types: type[ast.AST]) -> bool:
        """True when any ancestor is an instance of the given types."""
        return any(isinstance(node, node_types) for node in self._stack)

    def enclosing_function(self) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost enclosing function definition, if any."""
        for node in reversed(self._stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None

    # -- reporting ---------------------------------------------------------

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        """Record a violation of *rule* at *node*."""
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        self.report_at(rule, line, col, message)

    def report_at(self, rule: "Rule", line: int, col: int, message: str) -> None:
        """Record a violation at an explicit position."""
        self.findings.append(Finding(rule.rule_id, self.path, line, col, message))


class Rule:
    """Base class for lint rules; subclass and :func:`register`."""

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    #: path prefixes (relative to the package root) the rule applies to;
    #: empty means every module
    scopes: ClassVar[tuple[str, ...]] = ()

    @classmethod
    def applies_to(cls, rel_path: str) -> bool:
        """True when the rule's scope covers the module at *rel_path*."""
        if not cls.scopes:
            return True
        return any(rel_path.startswith(scope) for scope in cls.scopes)

    def start_module(self, ctx: LintContext) -> None:
        """Hook called once before the walk of a module."""

    def visit(self, node: ast.AST, ctx: LintContext) -> None:
        """Hook called for every AST node (including the module itself)."""

    def finish_module(self, ctx: LintContext) -> None:
        """Hook called once after the walk of a module."""


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    existing = _REGISTRY.get(rule_class.rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_class.rule_id!r}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def rule_catalog() -> dict[str, Type[Rule]]:
    """All registered per-file rules, keyed and sorted by rule id."""
    return dict(sorted(_REGISTRY.items()))


class ProjectRule:
    """Base class for whole-program rules run by ``repro check``.

    Unlike :class:`Rule`, a project rule sees every module at once: it is
    handed the parsed :class:`~repro.analysis.project.ProjectModel` and the
    resolved :class:`~repro.analysis.callgraph.CallGraph` and returns its
    findings directly.  Suppression comments are applied by the checker
    afterwards, exactly as the engine does for per-file rules.
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    #: path prefixes (relative to the package root) the rule reasons about;
    #: informational — project rules decide scope themselves
    scopes: ClassVar[tuple[str, ...]] = ()

    def check(self, project: "ProjectModel", graph: "CallGraph") -> list[Finding]:
        """Analyse the whole project; return the rule's findings."""
        raise NotImplementedError


_PROJECT_REGISTRY: dict[str, Type[ProjectRule]] = {}


def register_project(rule_class: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id!r}")
    existing = _PROJECT_REGISTRY.get(rule_class.rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_class.rule_id!r}")
    _PROJECT_REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def project_rule_catalog() -> dict[str, Type[ProjectRule]]:
    """All registered whole-program rules, keyed and sorted by rule id."""
    return dict(sorted(_PROJECT_REGISTRY.items()))


def known_rule_ids() -> frozenset[str]:
    """Every registered rule id — per-file and whole-program alike.

    LINT001 validates suppression comments against this set, so adding a
    ``# repro: allow[CONC001]`` to a module the per-file linter also scans
    must not itself be a lint violation.
    """
    return frozenset(_REGISTRY) | frozenset(_PROJECT_REGISTRY)


def rule_family(rule_id: str) -> str:
    """The family of a rule id: the id with its trailing digits stripped.

    ``WIRE001`` -> ``WIRE``, ``DISC004`` -> ``DISC``.  ``--rules`` accepts
    families as well as exact ids, so ``--rules WIRE,STATE`` selects every
    contract rule without naming each one.
    """
    return rule_id.rstrip("0123456789")


def expand_rule_selection(
    rule_ids: Sequence[str], catalog: Mapping[str, object]
) -> list[str]:
    """Resolve exact ids and family prefixes against *catalog*'s keys.

    Each entry must be a registered rule id or the family of at least one
    registered rule; anything else raises :class:`ValueError` (the CLI
    maps that to exit code 2).  Order follows the catalog, deduplicated.
    """
    selected: list[str] = []
    for entry in rule_ids:
        if entry in catalog:
            matches = [entry]
        else:
            matches = [
                rule_id for rule_id in catalog if rule_family(rule_id) == entry
            ]
        if not matches:
            known = ", ".join(catalog)
            raise ValueError(
                f"unknown rule id or family {entry!r}; known: {known}"
            )
        for rule_id in matches:
            if rule_id not in selected:
                selected.append(rule_id)
    return selected


def rule_summaries() -> list[tuple[str, str, str, str]]:
    """(rule id, family, engine, one-line title) across both registries.

    The single source for ``repro lint --list-rules`` and ``repro check
    --list-rules``: the docs table in DEVELOPMENT.md is spot-checked
    against this, so per-file and whole-program rules must both appear.
    """
    rows: list[tuple[str, str, str, str]] = []
    for rule_id, per_file in rule_catalog().items():
        rows.append((rule_id, rule_family(rule_id), "lint", per_file.title))
    for rule_id, project in project_rule_catalog().items():
        rows.append((rule_id, rule_family(rule_id), "check", project.title))
    return sorted(rows)


def render_rule_summaries() -> str:
    """The ``--list-rules`` table shared by the linter and the checker."""
    rows = rule_summaries()
    width_id = max(len(row[0]) for row in rows)
    width_family = max(len(row[1]) for row in rows)
    lines = [
        f"{rule_id:<{width_id}}  {family:<{width_family}}  {engine:<5}  {title}"
        for rule_id, family, engine, title in rows
    ]
    return "\n".join(lines)


def walk_module(tree: ast.Module, rules: list[Rule], ctx: LintContext) -> None:
    """Single pre-order walk dispatching every node to every rule."""
    for rule in rules:
        rule.start_module(ctx)

    def recurse(node: ast.AST) -> None:
        for rule in rules:
            rule.visit(node, ctx)
        ctx._stack.append(node)
        for child in ast.iter_child_nodes(node):
            recurse(child)
        ctx._stack.pop()

    recurse(tree)
    for rule in rules:
        rule.finish_module(ctx)


def iter_subtree(node: ast.AST, *, skip_functions: bool = False) -> Iterator[ast.AST]:
    """Pre-order iteration over a subtree, optionally skipping nested defs.

    With ``skip_functions=True`` the bodies of nested function definitions
    are not entered (the nested definitions themselves are still yielded),
    which lets per-function rules scan each function exactly once.
    """
    yield node
    for child in ast.iter_child_nodes(node):
        if skip_functions and isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            yield child
            continue
        yield from iter_subtree(child, skip_functions=skip_functions)
