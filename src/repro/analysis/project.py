"""Whole-program project model for ``repro check`` (system S24).

Where the per-file engine sees one module at a time, the checker first
parses *every* module under the given paths into a :class:`ProjectModel`:
per-module ASTs, dotted module names, import-alias tables, class and
function indexes, suppression comments and ``# guarded-by:`` declarations.
The model is purely syntactic — name resolution and type inference live
in :mod:`repro.analysis.callgraph`.

Module naming mirrors :func:`repro.analysis.visitor.module_rel_path`: a
path containing a ``repro`` component is anchored there, so the fixture
packages under ``tests/fixtures/check/<rule>/repro/...`` resolve to the
same dotted names (``repro.service.x``) as the real tree and scoped rules
behave identically on both.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator

from repro.analysis.findings import PARSE_ERROR_ID, Finding
from repro.analysis.suppress import effective_suppressions, parse_suppressions
from repro.analysis.visitor import module_rel_path

#: Declares the lock attribute guarding a shared mutable attribute, e.g.
#: ``self._jobs: dict[str, Job] = {}  # guarded-by: _lock``
GUARDED_BY_PATTERN = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")


def parse_guard_comments(source: str) -> dict[int, str]:
    """``# guarded-by: <attr>`` comments by the line they are written on."""
    guards: dict[int, str] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return guards
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = GUARDED_BY_PATTERN.search(token.string)
        if match is not None:
            guards[token.start[0]] = match.group(1)
    return guards


@dataclass(eq=False)
class FunctionInfo:
    """One function or method definition anywhere in the project."""

    qname: str
    name: str
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: "ClassInfo | None" = None
    parent: "FunctionInfo | None" = None
    #: nested ``def``s by simple name (their qnames carry ``.<locals>.``)
    nested: dict[str, "FunctionInfo"] = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.owner is not None


@dataclass(eq=False)
class ClassInfo:
    """One class definition anywhere in the project."""

    qname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass(eq=False)
class ModuleInfo:
    """One parsed module: AST plus the per-module symbol tables."""

    path: str
    rel_path: str
    name: str
    source: str
    tree: ast.Module
    is_package: bool
    #: effective per-line ``# repro: allow[...]`` suppressions
    suppressions: dict[int, frozenset[str]]
    #: ``# guarded-by: <attr>`` declarations by line
    guard_comments: dict[int, str]
    #: local name -> dotted target, from ``import``/``from ... import``
    imports: dict[str, str] = field(default_factory=dict)
    #: top-level classes by simple name
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: top-level functions by simple name
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


class ProjectModel:
    """Every analysed module, with global class/function indexes."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.modules_by_rel: dict[str, ModuleInfo] = {}
        self.modules_by_path: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.parse_errors: list[Finding] = []

    def add_module(self, module: ModuleInfo) -> None:
        self.modules[module.name] = module
        self.modules_by_rel[module.rel_path] = module
        self.modules_by_path[module.path] = module

    def suppressions_for(self, finding: Finding) -> frozenset[str]:
        """Suppression ids effective at a finding's location."""
        module = self.modules_by_path.get(finding.path)
        if module is None:
            return frozenset()
        return module.suppressions.get(finding.line, frozenset())


def _module_name(path: str, rel_path: str) -> tuple[str, bool]:
    """Dotted module name and package-ness for *path* / *rel_path*."""
    stem = rel_path[:-3] if rel_path.endswith(".py") else rel_path
    parts = [part for part in stem.split("/") if part]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    norm = PurePosixPath(str(path).replace(os.sep, "/")).parts
    if "repro" in norm:
        parts = ["repro", *parts]
    if not parts:
        parts = [PurePosixPath(rel_path).stem or "module"]
    return ".".join(parts), is_package


def _collect_imports(module: ModuleInfo) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if alias.asname is not None:
                    module.imports[alias.asname] = alias.name
                else:
                    module.imports.setdefault(top, top)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = module.name.split(".")
                if not module.is_package:
                    parts = parts[:-1]
                keep = len(parts) - (node.level - 1)
                parts = parts[: max(keep, 0)]
                if node.module:
                    parts = parts + node.module.split(".")
                base = ".".join(parts)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name


def _collect_definitions(project: ProjectModel, module: ModuleInfo) -> None:
    def visit_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        namespace: str,
        owner: ClassInfo | None,
        parent: FunctionInfo | None,
    ) -> FunctionInfo:
        info = FunctionInfo(
            qname=f"{namespace}.{node.name}",
            name=node.name,
            module=module,
            node=node,
            owner=owner,
            parent=parent,
        )
        project.functions[info.qname] = info
        for child in ast.iter_child_nodes(node):
            visit_body_node(child, f"{info.qname}.<locals>", None, info)
        return info

    def visit_class(node: ast.ClassDef, namespace: str) -> ClassInfo:
        info = ClassInfo(
            qname=f"{namespace}.{node.name}",
            name=node.name,
            module=module,
            node=node,
        )
        project.classes[info.qname] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = visit_function(child, info.qname, info, None)
                info.methods[method.name] = method
            elif isinstance(child, ast.ClassDef):
                visit_class(child, info.qname)
        return info

    def visit_body_node(
        node: ast.AST,
        namespace: str,
        owner: ClassInfo | None,
        parent: FunctionInfo | None,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = visit_function(node, namespace, owner, parent)
            if parent is not None:
                parent.nested[nested.name] = nested
        elif isinstance(node, ast.ClassDef):
            visit_class(node, namespace)
        else:
            for child in ast.iter_child_nodes(node):
                visit_body_node(child, namespace, owner, parent)

    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = visit_function(stmt, module.name, None, None)
            module.functions[info.name] = info
        elif isinstance(stmt, ast.ClassDef):
            cls = visit_class(stmt, module.name)
            module.classes[cls.name] = cls
        else:
            for child in ast.iter_child_nodes(stmt):
                visit_body_node(child, module.name, None, None)


def iter_project_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def load_project(paths: Iterable[str | Path]) -> ProjectModel:
    """Parse every module under *paths* into one :class:`ProjectModel`.

    Unparseable files become :data:`~repro.analysis.findings.PARSE_ERROR_ID`
    entries in ``parse_errors`` and are excluded from the model.
    """
    project = ProjectModel()
    for file_path in iter_project_files(paths):
        source = file_path.read_text(encoding="utf-8")
        path = str(file_path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            line = exc.lineno if exc.lineno is not None else 1
            col = exc.offset if exc.offset is not None else 0
            project.parse_errors.append(
                Finding(PARSE_ERROR_ID, path, line, col, f"syntax error: {exc.msg}")
            )
            continue
        rel_path = module_rel_path(path)
        name, is_package = _module_name(path, rel_path)
        module = ModuleInfo(
            path=path,
            rel_path=rel_path,
            name=name,
            source=source,
            tree=tree,
            is_package=is_package,
            suppressions=effective_suppressions(source, parse_suppressions(source)),
            guard_comments=parse_guard_comments(source),
        )
        _collect_imports(module)
        _collect_definitions(project, module)
        project.add_module(module)
    return project
