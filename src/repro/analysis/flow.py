"""FLOW rules: exception flow and cancellation liveness (system S24).

FLOW001 walks the call graph from every ``do_*`` HTTP handler in
``service/http.py`` and flags any reachable ``raise`` of a
:class:`ReproError` subclass whose class (or an ancestor) has no entry in
the module's ``_ERROR_STATUS`` table — an error the service would answer
with a bare 500 instead of its mapped status.  Builtin exceptions and
non-Repro errors are out of scope; a ``(ReproError, ...)`` catch-all row
maps everything downstream of the base class.

FLOW002 guards resumability: the ``supports_resume`` algorithms
(``core/discall.py``, ``core/parallel.py``) must reach
``CancelToken.checkpoint()`` from the body of every outermost loop,
either lexically or through the call graph — otherwise a cancel or
checkpoint request can stall behind an unbounded scan.  Inner loops are
judged as part of their outermost statement; comprehensions are exempt
(bounded by their iterable, no checkpoint side effects possible).
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, FunctionInfo, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.project import ModuleInfo, ProjectModel
from repro.analysis.visitor import ProjectRule, iter_subtree, register_project

#: module (rel path) holding the HTTP handlers and their status table
HTTP_MODULE = "service/http.py"
ERROR_TABLE = "_ERROR_STATUS"
REPRO_ERROR = "ReproError"

#: modules implementing ``supports_resume`` algorithms
RESUME_MODULES = ("core/discall.py", "core/parallel.py")
CANCEL_MODULE = "core/cancel.py"
CANCEL_TOKEN = "CancelToken"


def _simple(qname: str) -> str:
    return qname.rsplit(".", 1)[-1]


def _error_table(module: ModuleInfo, graph: CallGraph) -> set[str]:
    """Exception qnames mapped to a status in ``_ERROR_STATUS``."""
    mapped: set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == ERROR_TABLE
            for target in targets
        ):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        for row in value.elts:
            if not isinstance(row, (ast.Tuple, ast.List)) or not row.elts:
                continue
            dotted = dotted_name(row.elts[0])
            if dotted is not None:
                mapped.add(graph.resolver.resolve_dotted_in_module(module, dotted))
    return mapped


@register_project
class HandlerErrorMappingRule(ProjectRule):
    """FLOW001: every reachable ReproError has an HTTP status mapping."""

    rule_id = "FLOW001"
    title = "ReproError reachable from an HTTP handler has no status mapping"
    rationale = (
        "An unmapped ReproError escapes the handler's error translation "
        "and surfaces as an opaque 500; every error class reachable from "
        "a do_* handler must map (itself or via a base) in _ERROR_STATUS."
    )
    scopes = ("service/",)

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        module = project.modules_by_rel.get(HTTP_MODULE)
        if module is None:
            return []
        mapped = _error_table(module, graph)
        handlers = [
            method.qname
            for cls in module.classes.values()
            for method in cls.methods.values()
            if method.name.startswith("do_")
        ]
        if not handlers:
            return []
        findings: list[Finding] = []
        seen: set[tuple[str, int, int]] = set()
        for qname in sorted(graph.reachable(handlers)):
            fn = project.functions.get(qname)
            if fn is None:
                continue
            for node in iter_subtree(fn.node, skip_functions=True):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                cls_expr = exc.func if isinstance(exc, ast.Call) else exc
                dotted = dotted_name(cls_expr)
                if dotted is None:
                    continue
                resolved = graph.resolver.resolve_dotted_in_module(fn.module, dotted)
                chain = {resolved}
                exc_cls = project.classes.get(resolved)
                if exc_cls is not None:
                    chain |= graph.resolver.ancestor_qnames(exc_cls)
                if not any(_simple(entry) == REPRO_ERROR for entry in chain):
                    continue  # builtin or non-Repro exception
                if chain & mapped:
                    continue
                key = (fn.module.path, node.lineno, node.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        self.rule_id,
                        fn.module.path,
                        node.lineno,
                        node.col_offset,
                        f"{_simple(resolved)} raised in {fn.qname} is "
                        "reachable from an HTTP handler but has no "
                        f"{ERROR_TABLE} mapping",
                    )
                )
        return sorted(findings, key=Finding.sort_index)


def _outer_loops(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.For | ast.AsyncFor | ast.While]:
    """Outermost loop statements of one function body (nested defs skipped)."""
    loops: list[ast.For | ast.AsyncFor | ast.While] = []

    def visit(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                if not in_loop:
                    loops.append(child)
                visit(child, True)
            else:
                visit(child, in_loop)

    visit(fn_node, False)
    return loops


@register_project
class ResumableLoopCheckpointRule(ProjectRule):
    """FLOW002: resumable-algorithm loops reach a cancel checkpoint."""

    rule_id = "FLOW002"
    title = "loop in a supports_resume algorithm reaches no checkpoint"
    rationale = (
        "Cancellation and checkpointing are polled at "
        "CancelToken.checkpoint(); a loop that never reaches one can "
        "stall a cancel or lose arbitrarily much progress on a crash."
    )
    scopes = RESUME_MODULES

    def check(self, project: ProjectModel, graph: CallGraph) -> list[Finding]:
        token_cls = None
        cancel_module = project.modules_by_rel.get(CANCEL_MODULE)
        if cancel_module is not None:
            token_cls = cancel_module.classes.get(CANCEL_TOKEN)
        if token_cls is None:
            for cls in project.classes.values():
                if cls.name == CANCEL_TOKEN:
                    token_cls = cls
                    break
        checkpoints: set[str] = set()
        if token_cls is not None:
            for sub in graph.resolver.subclasses_of(token_cls.qname):
                method = graph.resolver.find_method(sub, "checkpoint")
                if method is not None:
                    checkpoints.add(method.qname)
        findings: list[Finding] = []
        for rel in RESUME_MODULES:
            module = project.modules_by_rel.get(rel)
            if module is None:
                continue
            for fn in project.functions.values():
                if fn.module is not module:
                    continue
                for loop in _outer_loops(fn.node):
                    if self._reaches_checkpoint(loop, fn, graph, checkpoints):
                        continue
                    findings.append(
                        Finding(
                            self.rule_id,
                            module.path,
                            loop.lineno,
                            loop.col_offset,
                            f"loop in {fn.qname} reaches no "
                            "CancelToken.checkpoint(); a cancel request "
                            "stalls until the loop finishes",
                        )
                    )
        return sorted(findings, key=Finding.sort_index)

    def _reaches_checkpoint(
        self,
        loop: ast.For | ast.AsyncFor | ast.While,
        fn: FunctionInfo,
        graph: CallGraph,
        checkpoints: set[str],
    ) -> bool:
        if not checkpoints:
            return False
        seeds: list[str] = []
        for node in iter_subtree(loop, skip_functions=True):
            if not isinstance(node, ast.Call):
                continue
            for site in graph.calls_from(fn.qname):
                if site.node is node and site.callee is not None:
                    seeds.append(site.callee)
                    break
        return bool(graph.reachable(seeds) & checkpoints)
