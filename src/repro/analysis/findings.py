"""Lint findings (system S24).

A :class:`Finding` is one rule violation at one source location.  The
engine returns findings sorted by position; the reporters in
:mod:`repro.analysis.reporting` render them for terminals and tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rule id used for files the engine cannot parse at all.
PARSE_ERROR_ID = "LINT000"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation: ``path:line:col: RULE message``."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The conventional compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def sort_index(self) -> tuple[str, int, int, str]:
        """Stable report order: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)
