"""Deterministic, seeded fault injection (system S28).

Every failure path of the fault-tolerance layer — checkpoint capture,
journal durability, worker supervision — must be testable on demand, or
it only runs for the first time in production.  This module is the one
sanctioned mechanism (lint rule DISC007 bans ad-hoc ``if TESTING:``
branches): code under test calls :func:`fault_point` at named sites, and
an armed :class:`FaultPlan` decides deterministically which hit of which
site raises :class:`~repro.exceptions.InjectedFaultError`.

Disarmed (the default, and the only production state) a fault point is a
single module-global read, so instrumented hot paths stay effectively
free.  Arming is explicit: the ``--faults`` CLI flag, the
``REPRO_FAULTS`` environment variable, or :func:`fault_plan` in tests.

Spec grammar (comma-separated rules)::

    disc.round:3         raise on the 3rd hit of site "disc.round"
    journal.fsync:1+     raise on the 1st and every later hit
    worker.crash:p0.25   raise each hit with probability 0.25, seeded

Probability rules draw from a per-site ``random.Random`` seeded with
``(plan seed, site name)``, so a given seed always fails the same hits —
soak runs are reproducible bug reports, not coin flips.

Named sites currently instrumented::

    disc.partition   before mining one first-level partition (discall +
                     parallel coordinator)
    disc.round       before one per-k DISC discovery round
    journal.fsync    before fsyncing an appended journal record
    worker.crash     at the start of each scheduler job attempt
    worker.register  in the coordinator's membership register handler
    worker.heartbeat in the coordinator's membership heartbeat handler
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import InjectedFaultError, InvalidParameterError
from repro.obs import events as obs_events

#: Environment variables consulted by :func:`plan_from_env`.
ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One arming rule: when hits of *site* should fail.

    Exactly one of the two modes is active: hit-count (``hit`` with
    optional ``repeat``) or seeded Bernoulli (``probability``).
    """

    site: str
    hit: int = 0
    repeat: bool = False
    probability: float | None = None

    def __post_init__(self) -> None:
        if not self.site:
            raise InvalidParameterError("fault rule needs a site name")
        if self.probability is None:
            if self.hit < 1:
                raise InvalidParameterError(
                    f"fault rule for {self.site!r}: hit must be >= 1, "
                    f"got {self.hit}"
                )
        elif not 0.0 < self.probability <= 1.0:
            raise InvalidParameterError(
                f"fault rule for {self.site!r}: probability must be in "
                f"(0, 1], got {self.probability}"
            )


def parse_rule(text: str) -> FaultRule:
    """Parse one ``site:trigger`` rule of the spec grammar."""
    site, sep, trigger = text.strip().partition(":")
    site = site.strip()
    trigger = trigger.strip()
    if not sep or not site or not trigger:
        raise InvalidParameterError(
            f"malformed fault rule {text!r}; expected 'site:N', 'site:N+' "
            "or 'site:pFRACTION'"
        )
    if trigger.startswith("p"):
        try:
            probability = float(trigger[1:])
        except ValueError:
            raise InvalidParameterError(
                f"malformed fault probability in {text!r}"
            ) from None
        return FaultRule(site, probability=probability)
    repeat = trigger.endswith("+")
    if repeat:
        trigger = trigger[:-1]
    try:
        hit = int(trigger)
    except ValueError:
        raise InvalidParameterError(
            f"malformed fault trigger in {text!r}; expected an integer hit "
            "number, 'N+' or 'pFRACTION'"
        ) from None
    return FaultRule(site, hit=hit, repeat=repeat)


class FaultPlan:
    """A deterministic schedule of injected failures, by site.

    Thread-safe: hit counters are kept under a lock so concurrent worker
    threads observe one global hit sequence per site.
    """

    def __init__(self, rules: Iterable[FaultRule] = (),
                 seed: int = 0) -> None:
        self._rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self._rules:
                raise InvalidParameterError(
                    f"duplicate fault rule for site {rule.site!r}"
                )
            self._rules[rule.site] = rule
        self.seed = seed
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the comma-separated spec grammar."""
        rules = [
            parse_rule(part)
            for part in spec.split(",")
            if part.strip()
        ]
        if not rules:
            raise InvalidParameterError(f"empty fault spec {spec!r}")
        return cls(rules, seed=seed)

    @property
    def sites(self) -> tuple[str, ...]:
        """The armed site names, sorted."""
        # repro: allow[DISC002] — scalar site-name strings, not sequences
        return tuple(sorted(self._rules))

    def hits(self) -> dict[str, int]:
        """Hit counts per site observed so far (armed sites only)."""
        with self._lock:
            return dict(self._hits)

    def fired(self) -> dict[str, int]:
        """How many times each site actually raised."""
        with self._lock:
            return dict(self._fired)

    def check(self, site: str) -> None:
        """Account one hit of *site*; raise when its rule triggers."""
        rule = self._rules.get(site)
        if rule is None:
            return
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            if rule.probability is not None:
                rng = self._rngs.get(site)
                if rng is None:
                    rng = random.Random(f"{self.seed}:{site}")
                    self._rngs[site] = rng
                fire = rng.random() < rule.probability
            elif rule.repeat:
                fire = count >= rule.hit
            else:
                fire = count == rule.hit
            if fire:
                self._fired[site] = self._fired.get(site, 0) + 1
        if fire:
            # narrated before the raise so the event log shows the fault
            # in sequence with the retry/finished records it caused;
            # carries the ambient trace id of the attempt it interrupted
            obs_events.emit("fault.injected", level="warn", site=site, hit=count)
            raise InjectedFaultError(
                f"injected fault at {site!r} (hit {count})"
            )


#: The armed plan; ``None`` means every fault point is inert.  A module
#: global (not a contextvar) so worker threads started before arming
#: still observe it — fault plans are process-wide by design.
_ACTIVE: FaultPlan | None = None


def arm(plan: FaultPlan | None) -> None:
    """Install *plan* process-wide (``None`` disarms)."""
    global _ACTIVE
    _ACTIVE = plan


def disarm() -> None:
    """Remove any armed plan; fault points become inert again."""
    arm(None)


def active_plan() -> FaultPlan | None:
    """The currently armed plan, if any."""
    return _ACTIVE


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm *plan* for a block, restoring the previous plan after."""
    previous = _ACTIVE
    arm(plan)
    try:
        yield plan
    finally:
        arm(previous)


def fault_point(site: str) -> None:
    """Declare a named failure site; raises only under an armed plan."""
    plan = _ACTIVE
    if plan is not None:
        plan.check(site)


def plan_from_env(environ: Mapping[str, str]) -> FaultPlan | None:
    """Build a plan from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``.

    Returns ``None`` when the spec variable is unset or empty — the
    caller decides whether and when to arm the result.
    """
    spec = environ.get(ENV_SPEC, "").strip()
    if not spec:
        return None
    seed_text = environ.get(ENV_SEED, "0").strip()
    try:
        seed = int(seed_text)
    except ValueError:
        raise InvalidParameterError(
            f"{ENV_SEED} must be an integer, got {seed_text!r}"
        ) from None
    return FaultPlan.from_spec(spec, seed=seed)
